//! Umbrella package for the Spire reproduction workspace.
//!
//! This package exists to host the repository-level `examples/` and `tests/`
//! directories; the implementation lives in the `crates/` members. It
//! re-exports the public crates for convenience so examples can write
//! `use spire_repro::spire;`.

pub use spire;
pub use spire_crypto;
pub use spire_prime;
pub use spire_scada;
pub use spire_sim;
pub use spire_spines;
