//! Determinism regression: two simulator runs of the same scenario and
//! seed must produce byte-identical JSON reports. Guards the Clock /
//! Backend refactor (which opened the door to wall-clock time sources)
//! against ever leaking nondeterminism into the sim substrate.

use spire::{Deployment, DeploymentConfig, Report, Scenario};
use spire_sim::Span;

fn run_once(seed: u64, scenario_idx: usize) -> String {
    let mut cfg = DeploymentConfig::wide_area(seed);
    cfg.workload.rtus = 4;
    cfg.workload.update_interval = Span::millis(400);
    // Tracing defaults to the SPIRE_TRACE env var; pin it off so the
    // byte-comparison cannot be perturbed by the environment.
    cfg.trace = false;
    let mut deployment = Deployment::build(cfg);
    let scenario = &Scenario::red_team_suite()[scenario_idx];
    scenario.apply(&mut deployment);
    deployment.run_for(Span::secs(8));
    let report = Report::from_deployment(&deployment);
    report.to_json()
}

#[test]
fn identical_seeds_identical_reports() {
    let a = run_once(42, 0);
    let b = run_once(42, 0);
    assert_eq!(a, b, "same seed produced different reports");
    assert!(a.contains("\"updates_confirmed\""));
}

#[test]
fn identical_seeds_identical_reports_under_attack() {
    // A scenario with fault injection exercises control actions, RNG
    // draws for loss/jitter, and recovery paths.
    let suite_len = Scenario::red_team_suite().len();
    let idx = 3.min(suite_len - 1);
    let a = run_once(7, idx);
    let b = run_once(7, idx);
    assert_eq!(a, b, "attack scenario diverged across identical runs");
}

#[test]
fn different_seeds_differ() {
    // Jitter draws make byte-identical reports across different seeds
    // astronomically unlikely; catches an accidentally ignored seed.
    let a = run_once(1, 0);
    let b = run_once(2, 0);
    assert_ne!(a, b);
}
