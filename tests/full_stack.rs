//! Repository-level integration tests exercising the public API across all
//! crates, mirroring what a downstream user of the library would do.

use spire_repro::spire::deployment::{Deployment, DeploymentConfig};
use spire_repro::spire::{required_replicas, SpireConfig};
use spire_repro::spire_scada::WorkloadConfig;
use spire_repro::spire_sim::Span;

#[test]
fn quickstart_flow_works_as_documented() {
    // This is the README quickstart, asserted.
    let mut cfg = DeploymentConfig::wide_area(7);
    cfg.workload = WorkloadConfig {
        rtus: 4,
        update_interval: Span::millis(500),
        ..Default::default()
    };
    let mut system = Deployment::build(cfg);
    system.run_for(Span::secs(20));
    let report = system.report();
    assert!(report.safety_ok);
    assert!(report.updates_confirmed > 0);
    assert!(report.sla_fraction > 0.95);
}

#[test]
fn configuration_analysis_matches_deployment_behaviour() {
    // The calculator says 6 replicas over 4 sites tolerate one site loss;
    // verify against a live deployment with a disconnected data center.
    let spire_cfg = SpireConfig::spread(1, 1, 2);
    assert_eq!(spire_cfg.total_replicas(), required_replicas(1, 1));
    assert!(spire_cfg.validate(true).is_ok());

    let mut cfg = DeploymentConfig::wide_area(8);
    cfg.workload = WorkloadConfig {
        rtus: 3,
        update_interval: Span::millis(500),
        ..Default::default()
    };
    let mut system = Deployment::build(cfg);
    // Disconnect DC1 (site index 2) for the whole run.
    system.schedule_site_disconnect(
        2,
        spire_repro::spire_sim::Time(1),
        spire_repro::spire_sim::Time(60_000_000),
    );
    system.run_for(Span::secs(30));
    let report = system.report();
    assert!(report.safety_ok);
    assert!(
        report.delivery_ratio() > 0.9,
        "delivery {}",
        report.delivery_ratio()
    );
}

#[test]
fn crypto_stack_interops_across_crates() {
    use spire_repro::spire_crypto::keys::{verify64, Signer};
    use spire_repro::spire_crypto::{KeyMaterial, KeyStore, NodeId};
    let material = KeyMaterial::new([1u8; 32]);
    let store = KeyStore::for_nodes(&material, 8);
    let signer = Signer::new(material.signing_key(NodeId(3)), false);
    let sig = signer.sign64(b"cross-crate");
    assert!(verify64(&store, NodeId(3), b"cross-crate", &sig, false));
}

#[test]
fn deterministic_replay_across_identical_builds() {
    let run = |seed: u64| {
        let mut cfg = DeploymentConfig::wide_area(seed);
        cfg.workload = WorkloadConfig {
            rtus: 3,
            update_interval: Span::millis(500),
            ..Default::default()
        };
        let mut system = Deployment::build(cfg);
        system.run_for(Span::secs(10));
        let report = system.report();
        (
            report.updates_confirmed,
            report.update_summary.map(|s| s.mean),
        )
    };
    assert_eq!(run(42), run(42));
}
