//! Real-clock runtime tests: a quick smoke run in tier-1, and a 30 s
//! high-load soak (run by the dedicated CI job via `--ignored`) asserting
//! safety invariants, no deadlocks, and a clean shutdown.

use spire::{Deployment, DeploymentConfig};
use spire_sim::Span;

fn rt_outcome(rtus: u32, interval_ms: u64, secs: u64, threads: usize) -> spire::RtOutcome {
    let mut cfg = DeploymentConfig::wide_area(12345);
    cfg.workload.rtus = rtus;
    cfg.workload.update_interval = Span::millis(interval_ms);
    cfg.trace = false;
    cfg.mock_sigs = true;
    Deployment::build(cfg)
        .into_rt(threads)
        .run_for(Span::secs(secs))
}

#[test]
fn rt_smoke_two_seconds() {
    let outcome = rt_outcome(4, 500, 2, 2);
    let r = &outcome.report;
    assert!(r.safety_ok, "safety violated on rt substrate");
    assert!(
        r.updates_confirmed > 0,
        "no updates confirmed: sent={} metrics may be miswired",
        r.updates_sent
    );
    assert!(
        r.delivery_ratio() >= 0.90,
        "delivery ratio {:.3} too low (confirmed {}/{})",
        r.delivery_ratio(),
        r.updates_confirmed,
        r.updates_sent
    );
    // Clean shutdown: every worker exited its loop normally.
    assert_eq!(
        outcome.run.metrics.counter("rt.worker_clean_exit"),
        outcome.run.threads as u64
    );
}

/// The 30 s soak. `--ignored` only: it holds the machine for real
/// wall-clock time.
///
/// Offered load scales with the host: the event-driven runtime (sharded
/// run queues, link batching, ordering pipelining) holds ~200 updates/s
/// on one core, so the soak offers ~100 updates/s per core, capped at
/// 400/s. What the soak pins is the runtime substrate itself — safety
/// under sustained load, no deadlock/livelock, clean shutdown, no
/// mailbox overflow, bounded pending work — with a delivery floor loose
/// enough to hold on a loaded single core.
#[test]
#[ignore = "30s wall-clock soak; run explicitly (CI rt-soak job)"]
fn rt_soak_thirty_seconds_high_load() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    // RTUs at 100 ms each = 10 updates/s per RTU.
    let rtus = (10 * threads as u32).min(40);
    let outcome = rt_outcome(rtus, 100, 30, threads);
    let r = &outcome.report;
    assert!(r.safety_ok, "safety violated under sustained load");
    assert!(
        r.delivery_ratio() >= 0.90,
        "delivery ratio {:.4} below 0.90 (confirmed {}/{})",
        r.delivery_ratio(),
        r.updates_confirmed,
        r.updates_sent
    );
    // No deadlock / livelock: the system kept confirming until the end
    // (no more than a couple of silent seconds tolerated for startup).
    assert!(
        r.silent_seconds() <= 2,
        "confirmations stalled: {} silent seconds",
        r.silent_seconds()
    );
    // Clean shutdown: all workers joined through the normal exit path.
    assert_eq!(
        outcome.run.metrics.counter("rt.worker_clean_exit"),
        outcome.run.threads as u64,
        "a worker exited abnormally"
    );
    // No leaked timers: what remains pending at exit is bounded by the
    // steady-state working set (per-actor periodic timers + in-flight
    // frames), not by run length.
    let pending = outcome.run.metrics.counter("rt.pending_at_exit");
    assert!(
        pending < 20_000,
        "timer/frame leak: {pending} pending at exit"
    );
    // Mailboxes kept up: tail-drops under this load mean a stall.
    let dropped = outcome.run.metrics.counter("rt.mailbox_full_drop");
    assert_eq!(dropped, 0, "mailbox overflow: {dropped} frames dropped");
}
