//! Offline stub of `proptest`: random sampling of strategies, many cases per
//! test, deterministic per test name — but no shrinking and no persistence.
//! Covers the strategy combinators this workspace's property tests use:
//! `any`, integer/float ranges, `Just`, simple `[class]{m,n}` string
//! patterns, tuples, `prop_map`, `prop_oneof!`, `collection::vec`, and the
//! `proptest!` / `prop_assert*` macros.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator used to sample strategies (xoshiro256**).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a string (test name), deterministically.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut s = [0u64; 4];
        for slot in &mut s {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s = [1, 2, 3, 4];
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, n).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in [0, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike real proptest there is no shrinking: the
/// sampled value is the reported counterexample.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (resamples, up to a retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: std::rc::Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    #[allow(clippy::type_complexity)]
    gen: std::rc::Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}
impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit()
    }
}
impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('a')
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy over the full range of `T`.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T` (proptest's `any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*}
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_from_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let headroom = <$t>::MAX.wrapping_sub(self.start) as u128;
                let off = if headroom >= u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(headroom as u64 + 1) as u128
                };
                self.start.wrapping_add(off as $t)
            }
        }
    )*}
}
impl_range_from_strategy!(u8, u16, u32, u64, usize, u128);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit()
    }
}

/// String pattern strategy: supports the `[chars]{m,n}` / `[chars]{n}` /
/// `[chars]*` shapes used in tests (a tiny slice of real proptest's regex
/// support). A bare literal generates itself.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let s = *self;
        let Some(class_end) = s.strip_prefix('[').and_then(|rest| rest.find(']')) else {
            return s.to_string();
        };
        let class: Vec<char> = s[1..=class_end].chars().collect();
        let tail = &s[class_end + 2..];
        let (lo, hi) = if let Some(counts) = tail.strip_prefix('{').and_then(|t| t.strip_suffix('}'))
        {
            match counts.split_once(',') {
                Some((a, b)) => (
                    a.parse::<usize>().unwrap_or(0),
                    b.parse::<usize>().unwrap_or(8),
                ),
                None => {
                    let n = counts.parse::<usize>().unwrap_or(8);
                    (n, n)
                }
            }
        } else if tail == "*" {
            (0, 16)
        } else if tail == "+" {
            (1, 16)
        } else {
            panic!("unsupported string pattern: {s}");
        };
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*}
}
impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for a collection strategy; built from a fixed
    /// size, `a..b`, or `a..=b` (as in real proptest's `Into<SizeRange>`).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty length range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `Vec` strategy with length in `len` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with size drawn from `len` (post-dedup
    /// sizes may come out smaller, as in real proptest).
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `BTreeSet` strategy with target size in `len`.
    pub fn btree_set<S: Strategy>(element: S, len: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner types (config + failure plumbing).
pub mod test_runner {
    /// Number of cases per property (only `cases` is honoured here).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// How many sampled cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` sampled cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Asserts within a property (panics; no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) }
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) }
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) }
}

/// Marker returned when a case is rejected via [`prop_assume!`].
#[doc(hidden)]
pub struct Rejected;

/// Skips the current sampled case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms: Vec<$crate::BoxedStrategy<_>> =
            vec![$($crate::Strategy::boxed($strat)),+];
        $crate::OneOf { arms }
    }};
}

/// See [`prop_oneof!`].
pub struct OneOf<V> {
    /// The equally weighted alternatives.
    pub arms: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)` is
/// expanded to a unit test running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])+ fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    // The closure gives prop_assume! a rejection path
                    // (assert failures still panic straight through).
                    let __outcome: ::std::result::Result<(), $crate::Rejected> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    let _ = __outcome;
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = TestRng::from_name("t");
        for _ in 0..200 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let xs = collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&xs.len()));
        }
    }

    #[test]
    fn string_pattern_respects_class_and_len() {
        let mut rng = TestRng::from_name("s");
        for _ in 0..100 {
            let s = "[ab]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_args(x in 0u32..10, (a, b) in (any::<bool>(), 1usize..3)) {
            prop_assert!(x < 10);
            prop_assert_ne!(b, 0);
            let _ = a;
        }
    }
}
