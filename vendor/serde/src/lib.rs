//! Offline stub of `serde`: the trait names plus no-op derive macros.
//! Nothing in this workspace serializes at runtime — types only carry the
//! derives — so empty traits and empty derive expansions suffice.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Namespace parity with the real crate.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Namespace parity with the real crate.
pub mod ser {
    pub use super::Serialize;
}
