//! Offline stub of the `rand` crate (0.8 API subset): a deterministic
//! xoshiro256** generator behind the `Rng`/`SeedableRng` traits. Exposes
//! exactly what this workspace calls: `StdRng`, `seed_from_u64`,
//! `gen`, `gen_bool`, `gen_range`, `fill`.
//!
//! Sequences differ from the real `rand` crate, but every consumer in-tree
//! only relies on determinism-per-seed and uniformity, not exact streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A random number generator seedable from fixed data.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from another RNG.
    fn from_rng<R: RngCore>(rng: &mut R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Ok(Self::from_seed(seed))
    }
}

/// Error type (never produced by this stub).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}
impl std::error::Error for Error {}

/// Sampling support for `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types `Rng::gen` can produce.
pub trait Standard {
    /// Samples a uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )*}
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
    i16 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64, usize => next_u64,
    isize => next_u64);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}
impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample(rng) as i128
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Rejection-free-enough uniform integer in [0, n) via 128-bit multiply.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: any value is uniform.
                    return <$t as Standard>::sample(rng);
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*}
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}
impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

/// User-facing convenience methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self) < p
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub use rngs::StdRng as _StdRngForDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_statistics() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_covers_slice() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        r.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
