//! Offline stub of `criterion`: a wall-clock micro-benchmark harness with a
//! compatible macro/API surface (`criterion_group!`, `criterion_main!`,
//! `bench_function`, `Bencher::iter`, groups, throughput). It calibrates an
//! iteration count per benchmark, reports mean time per iteration, and is
//! quiet under `cargo test` (where bench binaries run with `--test`).

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (same contract as
/// criterion's `black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (reported alongside timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for parameterized benchmarks.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{parameter}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Passed to the closure given to `bench_function`; runs the measurement.
pub struct Bencher<'a> {
    measured: &'a mut Option<Measurement>,
    quiet: bool,
}

/// One benchmark's measurement.
struct Measurement {
    iters: u64,
    total: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, auto-calibrating the iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow iterations until the batch takes ~10 ms (or a cap),
        // then measure one final batch. Under `cargo test` keep it minimal.
        let mut iters: u64 = 1;
        let target = if self.quiet {
            Duration::from_micros(100)
        } else {
            Duration::from_millis(10)
        };
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= target || iters >= 1 << 24 {
                *self.measured = Some(Measurement {
                    iters,
                    total: took,
                });
                return;
            }
            iters = (iters * 4).min(1 << 24);
        }
    }

    /// Like `iter`, with a per-batch setup closure (batch size 1).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut iters: u64 = 0;
        let mut total = Duration::ZERO;
        let budget = if self.quiet {
            Duration::from_micros(200)
        } else {
            Duration::from_millis(20)
        };
        while total < budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        *self.measured = Some(Measurement { iters, total });
    }
}

/// Batch sizing hint (ignored by this stub).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    quiet: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API parity; unused).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets measurement time (accepted for API parity; unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates throughput for subsequent benchmarks.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&format!("{}/{id}", self.name), self.quiet, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    quiet: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Under `cargo test`, bench binaries with harness = false are invoked
        // with `--test`: stay fast and quiet so test runs aren't slowed down.
        let quiet = std::env::args().any(|a| a == "--test");
        Criterion { quiet }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(name, self.quiet, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            quiet: self.quiet,
            _criterion: self,
        }
    }

    /// Configuration hook (API parity; returns default).
    pub fn configure_from_args(self) -> Criterion {
        self
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(name: &str, quiet: bool, mut f: F) {
    let mut measured = None;
    let mut b = Bencher {
        measured: &mut measured,
        quiet,
    };
    f(&mut b);
    if quiet {
        return;
    }
    match measured {
        Some(m) if m.iters > 0 => {
            let per = m.total.as_nanos() as f64 / m.iters as f64;
            let (value, unit) = if per < 1_000.0 {
                (per, "ns")
            } else if per < 1_000_000.0 {
                (per / 1_000.0, "µs")
            } else {
                (per / 1_000_000.0, "ms")
            };
            println!("{name:<40} {value:>10.2} {unit}/iter ({} iters)", m.iters);
        }
        _ => println!("{name:<40} (no measurement)"),
    }
}

/// Declares a benchmark group runner (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main` (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
