//! Offline stub of the `bytes` crate: a cheaply clonable, contiguous,
//! immutable byte container. Covers the API surface this workspace uses.

use std::sync::Arc;

/// A cheaply clonable contiguous slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    /// A view into a shared allocation: slicing bumps the refcount and
    /// narrows the window instead of copying.
    Shared {
        data: Arc<[u8]>,
        start: usize,
        len: usize,
    },
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Bytes {
        Bytes {
            data: Repr::Static(&[]),
        }
    }

    /// Creates `Bytes` from a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Repr::Static(bytes),
        }
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_shared(Arc::from(data))
    }

    fn from_shared(data: Arc<[u8]>) -> Bytes {
        let len = data.len();
        Bytes {
            data: Repr::Shared {
                data,
                start: 0,
                len,
            },
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a new `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-slice as a new `Bytes` sharing the same allocation
    /// (a refcount bump and window narrowing, never a copy).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice out of bounds");
        match &self.data {
            Repr::Static(s) => Bytes {
                data: Repr::Static(&s[start..end]),
            },
            Repr::Shared {
                data,
                start: base,
                ..
            } => Bytes {
                data: Repr::Shared {
                    data: data.clone(),
                    start: base + start,
                    len: end - start,
                },
            },
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.data {
            Repr::Static(s) => s,
            Repr::Shared { data, start, len } => &data[*start..*start + *len],
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_shared(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes::from_shared(Arc::from(v))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "...({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.clone(), b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let s = Bytes::from_static(b"hi");
        assert!(!s.is_empty());
        assert_eq!(s.slice(1..), Bytes::from_static(b"i"));
    }

    #[test]
    fn slice_shares_the_allocation() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert_eq!(mid.as_ptr(), unsafe { b.as_ptr().add(2) });
        // Slices of slices keep narrowing the same window.
        let inner = mid.slice(1..2);
        assert_eq!(&inner[..], &[3]);
        assert_eq!(inner.as_ptr(), unsafe { b.as_ptr().add(3) });
    }
}
