//! Offline stub of `crossbeam`. The workspace declares the dependency but
//! does not currently use it; std::thread::scope covers scoped spawning.

pub mod thread {
    /// Scoped threads via the standard library.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}
