//! Offline stub of `serde_derive`: the derive macros expand to nothing.
//! Types in this workspace carry the derives for API parity only; no code
//! path serializes through serde at runtime.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
