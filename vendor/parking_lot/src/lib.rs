//! Offline stub of `parking_lot`: std-backed, panic-on-poison wrappers with
//! the lock-returns-guard-directly API shape.

/// Mutex whose `lock` returns the guard directly (std-backed).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Locks, panicking if poisoned.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().expect("poisoned mutex")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("poisoned mutex")
    }
}

/// RwLock whose `read`/`write` return guards directly (std-backed).
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new RwLock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a read guard, panicking if poisoned.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().expect("poisoned rwlock")
    }

    /// Acquires a write guard, panicking if poisoned.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().expect("poisoned rwlock")
    }
}
