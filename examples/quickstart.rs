//! Quickstart: build the paper's standard wide-area Spire deployment
//! (6 SCADA-master replicas over 2 control centers + 2 data centers,
//! 10 emulated RTUs), run it for a minute of simulated time, and print the
//! latency report.
//!
//! Run with: `cargo run --release --example quickstart`

use spire::deployment::{Deployment, DeploymentConfig};
use spire_sim::Span;

fn main() {
    let cfg = DeploymentConfig::wide_area(42);
    println!(
        "building Spire: f={} k={} -> {} replicas over {} sites, {} RTUs",
        cfg.spire.f,
        cfg.spire.k,
        cfg.spire.total_replicas(),
        cfg.spire.sites.len(),
        cfg.workload.rtus,
    );
    for site in &cfg.spire.sites {
        println!(
            "  site {:4} ({:?}): {} replicas",
            site.name, site.kind, site.replicas
        );
    }

    let mut system = Deployment::build(cfg);
    println!("running 60 s of simulated time...");
    system.run_for(Span::secs(60));

    let report = system.report();
    println!("\n== results ==");
    println!("{}", report.one_line());
    if let Some(summary) = &report.update_summary {
        println!(
            "update latency: mean {:.1} ms, p50 {:.1} ms, p99 {:.1} ms, p99.9 {:.1} ms, max {:.1} ms",
            summary.mean, summary.p50, summary.p99, summary.p999, summary.max
        );
    }
    println!(
        "supervisory commands: {} issued, {} actuated at field devices",
        report.commands_issued, report.commands_actuated
    );
    println!(
        "safety: {}",
        if report.safety_ok {
            "all correct replicas executed identical sequences"
        } else {
            "VIOLATION DETECTED"
        }
    );
}
