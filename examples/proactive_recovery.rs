//! Proactive recovery in action: every replica is periodically restarted
//! from a clean state and rejoins via proof-carrying state transfer, while
//! the system keeps operating (that is what the `+2k` replicas are for).
//!
//! Run with: `cargo run --release --example proactive_recovery`

use spire::deployment::{Deployment, DeploymentConfig};
use spire_scada::WorkloadConfig;
use spire_sim::{Span, Time};

fn main() {
    let mut cfg = DeploymentConfig::wide_area(23);
    cfg.workload = WorkloadConfig {
        rtus: 6,
        update_interval: Span::millis(500),
        ..Default::default()
    };
    let mut system = Deployment::build(cfg);

    // One recovery every 10 s: the whole cluster is rejuvenated each minute.
    system.schedule_proactive_recovery(Time(10_000_000), Span::secs(10), Time(110_000_000));
    system.run_for(Span::secs(120));

    let report = system.report();
    println!("{}", report.one_line());
    println!(
        "recoveries: {} started, {} completed state transfer",
        report.recoveries.0, report.recoveries.1
    );
    println!(
        "delivery ratio across the whole run: {:.3}",
        report.delivery_ratio()
    );
    println!("silent seconds: {}", report.silent_seconds());

    // Show the latency timeline around recoveries (1-second buckets).
    println!("\nupdates confirmed per second:");
    for (sec, count) in report.throughput_timeline.iter().take(121) {
        if sec % 10 == 0 {
            println!("  t={sec:>3}s  {count} updates");
        }
    }
}
