//! Prime's signature defense: a compromised leader that delays proposals
//! just below the crash timeout. The PBFT-like baseline never replaces it
//! (latency stays degraded forever); Prime's turnaround-time monitoring
//! suspects and replaces it within seconds.
//!
//! Run with: `cargo run --release --example performance_attack`

use spire::deployment::{Deployment, DeploymentConfig};
use spire_prime::{ByzBehavior, ProtocolMode};
use spire_scada::WorkloadConfig;
use spire_sim::stats::percentile;
use spire_sim::Span;

fn run(mode: ProtocolMode, label: &str) {
    let mut cfg = DeploymentConfig::wide_area(31);
    cfg.mode = mode;
    cfg.workload = WorkloadConfig {
        rtus: 5,
        update_interval: Span::millis(500),
        ..Default::default()
    };
    // Replica 0 (leader of view 0) delays every proposal by 800 ms.
    cfg.byz
        .insert(0, ByzBehavior::LeaderDelay(Span::millis(800)));
    let mut system = Deployment::build(cfg);
    system.run_for(Span::secs(60));
    let report = system.report();
    let lats = &report.update_latencies_ms;
    println!(
        "{label:10}  median={:.0} ms  p90={:.0} ms  view changes={}  confirmed={}",
        percentile(lats, 50.0),
        percentile(lats, 90.0),
        report.view_changes,
        report.updates_confirmed,
    );
}

fn main() {
    println!("malicious leader delaying proposals by 800 ms:\n");
    run(ProtocolMode::Prime, "Prime");
    run(ProtocolMode::PbftLike, "PBFT-like");
    println!("\nPrime detects the slow leader via turnaround-time monitoring and");
    println!("rotates it out; the PBFT-like protocol tolerates it indefinitely.");
}
