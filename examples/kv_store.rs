//! Prime as a general BFT library: a replicated key-value store with
//! compare-and-swap, tolerating one Byzantine replica — no SCADA involved.
//!
//! Run with: `cargo run --release --example kv_store`

use bytes::Bytes;
use spire_repro::spire_crypto::keys::Signer;
use spire_repro::spire_crypto::{KeyMaterial, KeyStore, NodeId};
use spire_repro::spire_prime::{
    ByzBehavior, ClientId, ClientOp, Inspection, KvApp, KvOp, KvReply, PrimeConfig, PrimeMsg,
    Replica, ReplicaId,
};
use spire_repro::spire_sim::{Context, LinkConfig, Process, ProcessId, Span, World};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A scripted KV client: PUT, overwrite via CAS, failed CAS, GET; checks
/// every reply against the expected value once f+1 replicas agree.
struct KvClient {
    cfg: PrimeConfig,
    signer: Signer,
    replicas: Vec<ProcessId>,
    script: Vec<(KvOp, KvReply)>,
    next: usize,
    votes: BTreeMap<u64, BTreeMap<u32, Vec<u8>>>,
    done: BTreeMap<u64, bool>,
}

impl KvClient {
    fn submit_next(&mut self, ctx: &mut Context<'_>) {
        if self.next >= self.script.len() {
            return;
        }
        let (op, _) = &self.script[self.next];
        let cseq = (self.next + 1) as u64;
        let payload = Bytes::from(op.encode());
        let client_op = ClientOp::signed(ClientId(0), cseq, payload, &self.signer);
        let msg = PrimeMsg::Op(client_op).encode();
        for pid in self.replicas.clone() {
            ctx.send(pid, msg.clone());
        }
        self.next += 1;
    }
}

impl Process for KvClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.submit_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, bytes: &Bytes) {
        let Ok(PrimeMsg::Reply {
            replica,
            cseq,
            result,
            ..
        }) = PrimeMsg::decode(bytes)
        else {
            return;
        };
        if self.done.get(&cseq).copied().unwrap_or(false) {
            return;
        }
        let votes = self.votes.entry(cseq).or_default();
        votes.insert(replica.0, result.to_vec());
        let needed = (self.cfg.f + 1) as usize;
        let mut tally: BTreeMap<&[u8], usize> = BTreeMap::new();
        for v in votes.values() {
            *tally.entry(v.as_slice()).or_insert(0) += 1;
        }
        let Some(agreed) = tally
            .into_iter()
            .find(|(_, n)| *n >= needed)
            .map(|(v, _)| v.to_vec())
        else {
            return;
        };
        self.done.insert(cseq, true);
        let (op, expected) = &self.script[(cseq - 1) as usize];
        let reply = KvReply::decode(&agreed).expect("reply decodes");
        assert_eq!(&reply, expected, "unexpected reply for {op:?}");
        ctx.count("kv.verified", 1);
        // Pipeline: next op only after the previous confirmed (strict
        // sequential consistency for the demo).
        self.submit_next(ctx);
    }
}

fn main() {
    let cfg = PrimeConfig::new(1, 0); // f=1, n=4, classic BFT sizing
    let mut world = World::new(2025);
    let material = KeyMaterial::new([4u8; 32]);
    let keystore = Arc::new(KeyStore::for_nodes(&material, 3000));
    let inspection = Inspection::new();

    let first = world.process_count() as u32;
    let replica_pids: Vec<ProcessId> = (0..cfg.n).map(|i| ProcessId(first + i)).collect();
    let client_pid = ProcessId(first + cfg.n);
    for i in 0..cfg.n {
        let signer = Signer::new(
            material.signing_key(NodeId(cfg.replica_key_base + i)),
            false,
        );
        let net = spire_repro::spire_prime::DirectNet {
            replicas: replica_pids.clone(),
            clients: [(0u32, client_pid)].into_iter().collect(),
        };
        // Replica 3 is compromised and executes corrupted ops; f+1 matching
        // replies from the honest replicas mask it completely.
        let behavior = if i == 3 {
            ByzBehavior::DivergentExec
        } else {
            ByzBehavior::Honest
        };
        let replica = Replica::new(
            cfg.clone(),
            ReplicaId(i),
            behavior,
            Arc::clone(&keystore),
            signer,
            Box::new(net),
            Box::new(KvApp::new()),
            false,
        )
        .with_inspection(inspection.clone());
        world.add_process(&format!("kv-replica-{i}"), Box::new(replica));
    }

    let put = |k: &str, v: &str| KvOp::Put {
        key: k.into(),
        value: v.into(),
    };
    let script = vec![
        (put("grid/frequency", "50.02"), KvReply::Ok),
        (
            KvOp::Get {
                key: "grid/frequency".into(),
            },
            KvReply::Value(Some("50.02".into())),
        ),
        (
            KvOp::Cas {
                key: "grid/frequency".into(),
                expected: Some("50.02".into()),
                new: "49.98".into(),
            },
            KvReply::Ok,
        ),
        (
            KvOp::Cas {
                key: "grid/frequency".into(),
                expected: Some("50.02".into()),
                new: "0".into(),
            },
            KvReply::CasFailed(Some("49.98".into())),
        ),
        (put("grid/mode", "islanded"), KvReply::Ok),
        (
            KvOp::Delete {
                key: "grid/mode".into(),
            },
            KvReply::Ok,
        ),
        (
            KvOp::Get {
                key: "grid/mode".into(),
            },
            KvReply::Value(None),
        ),
    ];
    let script_len = script.len() as u64;
    let signer = Signer::new(material.signing_key(NodeId(cfg.client_key_base)), false);
    let client = KvClient {
        cfg: cfg.clone(),
        signer,
        replicas: replica_pids.clone(),
        script,
        next: 0,
        votes: BTreeMap::new(),
        done: BTreeMap::new(),
    };
    let got = world.add_process("kv-client", Box::new(client));
    assert_eq!(got, client_pid);
    let link = LinkConfig::lan();
    for i in 0..replica_pids.len() {
        for j in (i + 1)..replica_pids.len() {
            world.add_link(replica_pids[i], replica_pids[j], link);
        }
        world.add_link(client_pid, replica_pids[i], link);
    }

    world.run_for(Span::secs(20));
    let verified = world.metrics().counter("kv.verified");
    println!("replicated KV store (n=4, replica 3 Byzantine):");
    println!("  {verified}/{script_len} scripted ops confirmed with the expected replies");
    let records = inspection.records();
    println!(
        "  honest replicas agree: {}",
        records[&0].app_digest == records[&1].app_digest
            && records[&1].app_digest == records[&2].app_digest
    );
    println!(
        "  compromised replica diverged internally: {}",
        records[&3].app_digest != records[&0].app_digest
    );
    inspection.check_safety(&[0, 1, 2]).expect("safety");
    assert_eq!(verified, script_len);
    println!("  ordering safety check over honest replicas: OK");
}
