//! The paper's headline scenario: a network attack on the primary control
//! center — first a DoS, then a full disconnection — while Spire keeps
//! delivering SCADA updates within the 100 ms requirement through the
//! remaining sites. A traditional single-control-center SCADA system is run
//! under the same outage for contrast.
//!
//! Run with: `cargo run --release --example network_attack`

use spire::deployment::{Deployment, DeploymentConfig};
use spire::BaselineDeployment;
use spire_scada::WorkloadConfig;
use spire_sim::{Span, Time};

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

fn main() {
    let workload = WorkloadConfig {
        rtus: 10,
        update_interval: Span::secs(1),
        ..Default::default()
    };

    // ---- Spire under attack ----
    let mut cfg = DeploymentConfig::wide_area(11);
    cfg.workload = workload;
    let mut spire = Deployment::build(cfg);
    println!("Spire: DoS on CC1 at t=20s, full disconnection 40s-60s, repair at 60s");
    spire.schedule_site_dos(0, secs(20), secs(40), 0.7);
    spire.schedule_site_disconnect(0, secs(40), secs(60));
    spire.run_for(Span::secs(80));
    let report = spire.report();
    println!("  {}", report.one_line());
    println!(
        "  silent seconds (no confirmed update): {}",
        report.silent_seconds()
    );

    // ---- Baseline under the same outage ----
    let mut baseline = BaselineDeployment::build(11, workload, true);
    baseline.schedule_cc_outage(secs(40), secs(60));
    baseline.run_for(Span::secs(80));
    let m = baseline.world.metrics();
    let confirmed = m.counter("scada.updates_confirmed");
    let sent = m.counter("scada.updates_sent");
    let outage_confirms = m
        .series("scada.update_latency_ms")
        .iter()
        .filter(|(t, _)| t.0 > 41_000_000 && t.0 < 59_000_000)
        .count();
    println!("\nTraditional SCADA (single control center), same outage:");
    println!("  updates {confirmed}/{sent} confirmed overall");
    println!("  confirmed during the outage window: {outage_confirms} (service dead)");
}
