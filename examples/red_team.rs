//! Runs the scripted red-team scenario suite (the reproduction's stand-in
//! for the paper's red-team exercise) and prints a pass/fail matrix:
//! for each attack, did safety hold, did the service stay live, and what
//! fraction of updates met the 100 ms SLA.
//!
//! Run with: `cargo run --release --example red_team`

use spire::attack::Scenario;
use spire::deployment::{Deployment, DeploymentConfig};
use spire_scada::WorkloadConfig;
use spire_sim::Span;

fn main() {
    println!(
        "{:<48} {:>7} {:>9} {:>8} {:>6}",
        "scenario", "safety", "delivery", "SLA", "VCs"
    );
    for (i, scenario) in Scenario::red_team_suite().iter().enumerate() {
        let mut cfg = DeploymentConfig::wide_area(100 + i as u64);
        cfg.workload = WorkloadConfig {
            rtus: 6,
            update_interval: Span::millis(500),
            ..Default::default()
        };
        let mut system = Deployment::build(cfg);
        scenario.apply(&mut system);
        system.run_for(scenario.duration + Span::secs(5));
        let report = system.report();
        println!(
            "{:<48} {:>7} {:>8.1}% {:>7.1}% {:>6}",
            scenario.name,
            if report.safety_ok { "OK" } else { "BROKEN" },
            report.delivery_ratio() * 100.0,
            report.sla_fraction * 100.0,
            report.view_changes,
        );
    }
}
