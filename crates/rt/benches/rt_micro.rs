//! Criterion micro-benchmarks of the runtime hot paths: run-queue
//! push/pop, frame-batch container seal/unseal, buffer-pool
//! acquire/release, hashed timer-wheel insert/fire, and the legacy
//! sync-channel mailbox for comparison.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spire_rt::{BufferPool, Pool, RunQueue, TimerWheel};
use spire_sim::Time;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

fn bench_mailbox(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt_mailbox");
    group.throughput(Throughput::Elements(1));
    group.bench_function("send_recv_same_thread", |b| {
        let (tx, rx) = sync_channel::<u64>(4096);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tx.try_send(std::hint::black_box(i)).unwrap();
            std::hint::black_box(rx.try_recv().unwrap())
        });
    });
    group.bench_function("send_recv_cross_thread", |b| {
        // A drained echo pair: messages cross a real thread boundary.
        let (tx, rx) = sync_channel::<u64>(4096);
        let (back_tx, back_rx) = sync_channel::<u64>(4096);
        let echo = std::thread::spawn(move || {
            while let Ok(v) = rx.recv() {
                if v == u64::MAX {
                    break;
                }
                back_tx.send(v).unwrap();
            }
        });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tx.send(std::hint::black_box(i)).unwrap();
            std::hint::black_box(back_rx.recv().unwrap())
        });
        tx.send(u64::MAX).unwrap();
        echo.join().unwrap();
    });
    group.finish();
}

fn bench_wheel(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt_timer_wheel");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert_fire_near", |b| {
        let mut wheel: TimerWheel<u64> = TimerWheel::new(200, 1024);
        let mut out = Vec::new();
        let mut now = 0u64;
        b.iter(|| {
            now += 50;
            wheel.insert(Time(now + 500), std::hint::black_box(now));
            wheel.advance(Time(now), &mut out);
            std::hint::black_box(out.drain(..).count())
        });
    });
    group.bench_function("insert_fire_batch_64", |b| {
        let mut wheel: TimerWheel<u64> = TimerWheel::new(200, 1024);
        let mut out = Vec::new();
        let mut now = 0u64;
        b.iter(|| {
            for k in 0..64u64 {
                wheel.insert(Time(now + 100 + k * 37 % 5_000), k);
            }
            now += 10_000;
            wheel.advance(Time(now), &mut out);
            std::hint::black_box(out.drain(..).count())
        });
    });
    group.finish();
}

fn bench_run_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt_run_queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("push_pop_same_thread", |b| {
        let q: RunQueue<u64> = RunQueue::bounded(65_536);
        let mut out = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            q.push(std::hint::black_box(i)).unwrap();
            q.pop_all(&mut out);
            std::hint::black_box(out.drain(..).count())
        });
    });
    group.bench_function("push_pop_batch_64", |b| {
        // One wakeup drains a whole burst: the batched-handoff shape.
        let q: RunQueue<u64> = RunQueue::bounded(65_536);
        let mut out = Vec::new();
        b.iter(|| {
            for k in 0..64u64 {
                q.push(k).unwrap();
            }
            q.pop_all(&mut out);
            std::hint::black_box(out.drain(..).count())
        });
    });
    group.bench_function("push_pop_cross_thread", |b| {
        let q: Arc<RunQueue<u64>> = Arc::new(RunQueue::bounded(65_536));
        let back: Arc<RunQueue<u64>> = Arc::new(RunQueue::bounded(65_536));
        let (qe, be) = (Arc::clone(&q), Arc::clone(&back));
        let echo = std::thread::spawn(move || {
            let mut buf = Vec::new();
            loop {
                qe.pop_wait(&mut buf, None);
                for v in buf.drain(..) {
                    if v == u64::MAX {
                        return;
                    }
                    be.push(v).unwrap();
                }
            }
        });
        let mut out = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            q.push(std::hint::black_box(i)).unwrap();
            while out.is_empty() {
                back.pop_wait(&mut out, None);
            }
            std::hint::black_box(out.drain(..).count())
        });
        q.push(u64::MAX).unwrap();
        echo.join().unwrap();
    });
    group.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt_buffer_pool");
    group.throughput(Throughput::Elements(1));
    group.bench_function("acquire_release_warm", |b| {
        let mut pool: BufferPool = Pool::new(256, 64 * 1024);
        // Warm: the steady-state path never touches the allocator.
        pool.release(Vec::with_capacity(1500));
        b.iter(|| {
            let mut buf = pool.acquire();
            buf.extend_from_slice(std::hint::black_box(&[7u8; 1500]));
            pool.release(buf);
        });
    });
    group.bench_function("alloc_per_frame_baseline", |b| {
        // What the old wire path paid: a fresh Vec per frame.
        b.iter(|| {
            let mut buf: Vec<u8> = Vec::new();
            buf.extend_from_slice(std::hint::black_box(&[7u8; 1500]));
            std::hint::black_box(buf)
        });
    });
    group.finish();
}

fn bench_frame_batch(c: &mut Criterion) {
    use bytes::Bytes;
    use spire_crypto::KeyMaterial;
    use spire_prime::msg::{self, decode_sealed, seal_frame};
    use spire_prime::ReplicaId;

    let material = KeyMaterial::new([9u8; 32]);
    let key = material.link_key(spire_crypto::NodeId(1000), spire_crypto::NodeId(1001));
    let frame = Bytes::from(vec![3u8; 200]);

    let mut group = c.benchmark_group("rt_frame_batch");
    group.bench_function("seal_unseal_16_singles", |b| {
        // The unbatched wire path: one HMAC seal + verify per frame.
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..16 {
                let sealed = seal_frame(ReplicaId(0), &key, &frame);
                let parsed = decode_sealed(&sealed).unwrap().unwrap();
                assert!(parsed.verify(&key));
                total += parsed.inner.len();
            }
            std::hint::black_box(total)
        });
    });
    group.bench_function("seal_unseal_batch_16", |b| {
        // The batched path: one container, one seal, one verify.
        let frames: Vec<Bytes> = (0..16).map(|_| frame.clone()).collect();
        b.iter(|| {
            let container = msg::encode_multi(std::hint::black_box(&frames));
            let sealed = seal_frame(ReplicaId(0), &key, &container);
            let parsed = decode_sealed(&sealed).unwrap().unwrap();
            assert!(parsed.verify(&key));
            let inner = Bytes::copy_from_slice(parsed.inner);
            let subs = msg::decode_multi(&inner).unwrap().unwrap();
            std::hint::black_box(subs.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mailbox,
    bench_wheel,
    bench_run_queue,
    bench_buffer_pool,
    bench_frame_batch
);
criterion_main!(benches);
