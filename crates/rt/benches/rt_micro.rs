//! Criterion micro-benchmarks of the runtime hot paths: bounded mailbox
//! send/recv and hashed timer-wheel insert/fire.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spire_rt::TimerWheel;
use spire_sim::Time;
use std::sync::mpsc::sync_channel;

fn bench_mailbox(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt_mailbox");
    group.throughput(Throughput::Elements(1));
    group.bench_function("send_recv_same_thread", |b| {
        let (tx, rx) = sync_channel::<u64>(4096);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tx.try_send(std::hint::black_box(i)).unwrap();
            std::hint::black_box(rx.try_recv().unwrap())
        });
    });
    group.bench_function("send_recv_cross_thread", |b| {
        // A drained echo pair: messages cross a real thread boundary.
        let (tx, rx) = sync_channel::<u64>(4096);
        let (back_tx, back_rx) = sync_channel::<u64>(4096);
        let echo = std::thread::spawn(move || {
            while let Ok(v) = rx.recv() {
                if v == u64::MAX {
                    break;
                }
                back_tx.send(v).unwrap();
            }
        });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tx.send(std::hint::black_box(i)).unwrap();
            std::hint::black_box(back_rx.recv().unwrap())
        });
        tx.send(u64::MAX).unwrap();
        echo.join().unwrap();
    });
    group.finish();
}

fn bench_wheel(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt_timer_wheel");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert_fire_near", |b| {
        let mut wheel: TimerWheel<u64> = TimerWheel::new(200, 1024);
        let mut out = Vec::new();
        let mut now = 0u64;
        b.iter(|| {
            now += 50;
            wheel.insert(Time(now + 500), std::hint::black_box(now));
            wheel.advance(Time(now), &mut out);
            std::hint::black_box(out.drain(..).count())
        });
    });
    group.bench_function("insert_fire_batch_64", |b| {
        let mut wheel: TimerWheel<u64> = TimerWheel::new(200, 1024);
        let mut out = Vec::new();
        let mut now = 0u64;
        b.iter(|| {
            for k in 0..64u64 {
                wheel.insert(Time(now + 100 + k * 37 % 5_000), k);
            }
            now += 10_000;
            wheel.advance(Time(now), &mut out);
            std::hint::black_box(out.drain(..).count())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mailbox, bench_wheel);
criterion_main!(benches);
