//! Runtime control-plane tests: the rt half of cross-substrate fault
//! injection. Crash/respawn of live actors, runtime link-state mutation
//! (partitions, duplication), and mailbox backpressure accounting — the
//! operations `spire-core` replays from a recorded control plan so attack
//! scenarios run unchanged on the real-clock substrate.

use std::sync::Arc;

use bytes::Bytes;
use spire_rt::{RtConfig, RtHooks, Runtime};
use spire_sim::{Context, ControlOp, LinkConfig, Process, ProcessId, Span, Time, World};

/// Sends a frame to `peer` every 5 ms, forever.
struct Ping {
    peer: ProcessId,
}

impl Process for Ping {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(Span::millis(5), 1);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: ProcessId, _bytes: &Bytes) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        ctx.send(self.peer, Bytes::from_static(b"ping"));
        ctx.count("toy.ping_sent", 1);
        ctx.set_timer(Span::millis(5), 1);
    }
}

/// Counts received frames and keeps a 50 ms periodic timer armed, so a
/// crash always leaves one in-flight timer from the old incarnation.
struct Echo;

impl Process for Echo {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.count("toy.echo_started", 1);
        ctx.set_timer(Span::millis(50), 2);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, _bytes: &Bytes) {
        ctx.count("toy.received", 1);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        ctx.set_timer(Span::millis(50), 2);
    }
}

fn two_actor_fabric(seed: u64) -> (spire_sim::Fabric, ProcessId, ProcessId) {
    let mut world = World::new(seed);
    let echo = ProcessId(1); // known: add order assigns 0, 1
    let ping = world.add_process("ping", Box::new(Ping { peer: echo }));
    let echo = world.add_process("echo", Box::new(Echo));
    world.add_link(ping, echo, LinkConfig::lan());
    (world.into_fabric(), ping, echo)
}

/// Crash + respawn of a live actor: the old incarnation's timers die
/// with it, frames to the down slot are counted (not misrouted), and the
/// respawned state machine runs `on_start` fresh.
#[test]
fn crash_and_restart_respawns_actor() {
    let (fabric, _ping, echo) = two_actor_fabric(7);
    let cfg = RtConfig {
        threads: 2,
        ..Default::default()
    };
    let rt = Runtime::from_fabric_with(fabric, cfg, RtHooks::default());
    let plan = vec![
        (Time(200_000), ControlOp::Crash(echo)),
        (
            Time(500_000),
            ControlOp::Restart(echo, Arc::new(|| Box::new(Echo) as Box<dyn Process>)),
        ),
    ];
    let run = rt.run_with(Span::millis(1_200), plan, |_, _| {});
    let m = &run.metrics;
    assert_eq!(m.counter("rt.crashed"), 1, "crash not applied");
    assert_eq!(m.counter("rt.restarted"), 1, "restart not applied");
    // on_start ran once at boot and once at respawn.
    assert_eq!(m.counter("toy.echo_started"), 2);
    // Pings kept flowing into the down slot for ~300 ms and were
    // accounted as drops-to-down, not misroutes.
    assert!(
        m.counter("rt.dropped_to_down_process") > 0,
        "no frames counted against the down actor"
    );
    assert_eq!(m.counter("rt.misrouted_drop"), 0);
    // The pre-crash incarnation's pending 50 ms timer was invalidated by
    // the generation bump, not delivered to the new incarnation.
    assert!(
        m.counter("rt.stale_timer_drop") >= 1,
        "old incarnation's timer leaked into the new one"
    );
    // The respawned actor receives again.
    assert!(m.counter("toy.received") > 0);
}

/// Runtime link mutation: a down window drops frames at the sender, and
/// a config swap (here dup = 1.0) takes effect mid-run.
#[test]
fn link_down_window_and_config_swap() {
    let (fabric, ping, echo) = two_actor_fabric(8);
    let cfg = RtConfig {
        threads: 2,
        ..Default::default()
    };
    let rt = Runtime::from_fabric_with(fabric, cfg, RtHooks::default());
    let dup_cfg = LinkConfig {
        dup: 1.0,
        ..LinkConfig::lan()
    };
    let plan = vec![
        (Time(200_000), ControlOp::SetLinkUp(ping, echo, false)),
        (Time(500_000), ControlOp::SetLinkUp(ping, echo, true)),
        (Time(500_000), ControlOp::SetLinkConfig(ping, echo, dup_cfg)),
    ];
    let run = rt.run_with(Span::millis(1_000), plan, |_, _| {});
    let m = &run.metrics;
    assert!(
        m.counter("rt.link_down_drop") > 0,
        "no frames dropped during the down window"
    );
    assert!(
        m.counter("rt.dup") > 0,
        "dup = 1.0 config swap produced no duplicates"
    );
    assert!(m.counter("toy.received") > 0, "link never came back up");
}

/// Floods `peer` with a burst each timer tick.
struct Burst {
    peer: ProcessId,
}

impl Process for Burst {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(Span::millis(5), 1);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: ProcessId, _bytes: &Bytes) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        for _ in 0..64 {
            ctx.send(self.peer, Bytes::from_static(b"burst"));
        }
        ctx.set_timer(Span::millis(20), 1);
    }
}

/// Handles each frame slowly, so the owning worker cannot drain its
/// mailbox as fast as the burster fills it.
struct Slow;

impl Process for Slow {
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, _bytes: &Bytes) {
        ctx.count("toy.received", 1);
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

/// Mailbox overflow is absorbed by bounded retry/backoff, and whatever
/// the retry budget cannot save is accounted per message class.
#[test]
fn tiny_mailbox_backpressure_is_counted() {
    let mut world = World::new(9);
    let slow = ProcessId(1);
    let burst = world.add_process("burst", Box::new(Burst { peer: slow }));
    let slow = world.add_process("slow", Box::new(Slow));
    world.add_link(burst, slow, LinkConfig::lan());
    let cfg = RtConfig {
        threads: 2,          // burst on worker 0, slow on worker 1: cross-worker sends
        mailbox_capacity: 4, // overflow quickly
        ..Default::default()
    };
    let run = Runtime::from_fabric_with(world.into_fabric(), cfg, RtHooks::default())
        .run_for(Span::millis(500));
    let m = &run.metrics;
    assert!(
        m.counter("rt.mailbox_retry") > 0,
        "64-frame bursts into a 4-slot mailbox never triggered a retry"
    );
    // Every frame the retry budget could not save is classified; with the
    // default hooks everything lands under rt.drop.frame, so per-class
    // accounting must reconcile exactly with the total.
    assert_eq!(
        m.counter("rt.mailbox_full_drop"),
        m.counter("rt.drop.frame"),
        "per-class drop accounting disagrees with the total"
    );
    // Backpressure slowed the flood but did not wedge the receiver.
    assert!(m.counter("toy.received") > 0);
}
