//! Real-clock multi-threaded hosting substrate for the Spire
//! reproduction.
//!
//! The simulator (`spire-sim`) measures latency *shapes* under a virtual
//! clock on one core; this crate runs the very same actor state machines
//! — Prime replicas, Spines daemons, SCADA masters, proxies and workload
//! devices — on OS threads under monotonic wall-clock time, so throughput
//! is bounded by the hardware, not by one event loop. Actor code is
//! substrate-agnostic: it only sees `spire_sim::Context`, whose services
//! are provided here by a per-worker [`Backend`](spire_sim::world::Backend)
//! built from sharded run queues and a hashed timer wheel.
//!
//! The runtime is event-driven: actors are run-queue entries scheduled in
//! bounded bursts ([`runtime`]), cross-worker traffic coalesces into
//! batch envelopes on exact-accounting [`queue::RunQueue`]s, buffers
//! recycle through per-worker [`pool::Pool`]s, and idle workers park on
//! a condvar until exactly the next [`wheel::TimerWheel`] deadline.
//!
//! Build a deployment exactly as for the simulator, dismantle the
//! assembled world with `World::into_fabric`, and hand the fabric to
//! [`Runtime::from_fabric`].

pub mod pool;
pub mod queue;
pub mod runtime;
pub mod wheel;

pub use pool::{BufferPool, Pool};
pub use queue::RunQueue;
pub use runtime::{RtConfig, RtGauges, RtHooks, RtRun, Runtime};
pub use wheel::TimerWheel;
