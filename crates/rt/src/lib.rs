//! Real-clock multi-threaded hosting substrate for the Spire
//! reproduction.
//!
//! The simulator (`spire-sim`) measures latency *shapes* under a virtual
//! clock on one core; this crate runs the very same actor state machines
//! — Prime replicas, Spines daemons, SCADA masters, proxies and workload
//! devices — on OS threads under monotonic wall-clock time, so throughput
//! is bounded by the hardware, not by one event loop. Actor code is
//! substrate-agnostic: it only sees `spire_sim::Context`, whose services
//! are provided here by a per-worker [`Backend`](spire_sim::world::Backend)
//! built from bounded mailboxes and a hashed timer wheel.
//!
//! Build a deployment exactly as for the simulator, dismantle the
//! assembled world with `World::into_fabric`, and hand the fabric to
//! [`Runtime::from_fabric`].

pub mod runtime;
pub mod wheel;

pub use runtime::{RtConfig, RtGauges, RtHooks, RtRun, Runtime};
pub use wheel::TimerWheel;
