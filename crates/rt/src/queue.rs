//! The event-driven runtime's cross-worker run queue.
//!
//! A [`RunQueue`] replaces the bounded `sync_channel` mailbox of the
//! thread-per-actor design. The differences that matter:
//!
//! - **Batched wakeups.** Senders push whole envelope batches under one
//!   lock and issue at most one condvar notify per push — and only when
//!   the owning worker is actually parked. A worker draining a burst of
//!   frames costs its peers zero syscalls.
//! - **Exact depth accounting.** The queue itself is the single source of
//!   truth for its occupancy. `depth == sends - recvs - drops` holds at
//!   every instant (in weight units, i.e. frames): an accepted push adds
//!   its weight to `sends`, a drain adds to `recvs`, and a rejected push
//!   adds to `drops` *as well as* `sends`, so the ledger never drifts —
//!   the per-worker `rt.w{N}.mailbox_depth` gauge reads it directly
//!   instead of reconciling racing sender/receiver atomics.
//! - **Deadline parking.** [`RunQueue::pop_wait`] parks the owner until an
//!   exact timer deadline or the next push, whichever comes first; there
//!   is no periodic poll.
//!
//! Weights exist because one queue entry may carry many frames (a
//! coalesced cross-worker batch): capacity and the depth gauge are
//! measured in frames, not envelopes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// A bounded multi-producer single-consumer run queue with exact
/// weight-based occupancy accounting and parked-consumer wakeups.
#[derive(Debug)]
pub struct RunQueue<T> {
    inner: Mutex<VecDeque<(T, u64)>>,
    ready: Condvar,
    /// Capacity in weight units (frames).
    capacity: u64,
    /// Weight currently queued. Mirrors the mutex-guarded state so gauge
    /// reads never take the lock; only mutated while holding it.
    depth: AtomicU64,
    /// Total weight offered (accepted + rejected pushes).
    sends: AtomicU64,
    /// Total weight drained by the consumer.
    recvs: AtomicU64,
    /// Total weight rejected because the queue was full.
    drops: AtomicU64,
    /// True while the consumer sleeps in [`RunQueue::pop_wait`]; producers
    /// notify only when set, so steady-state pushes are wake-free.
    parked: AtomicBool,
}

impl<T> RunQueue<T> {
    /// Creates a queue holding at most `capacity` weight units.
    pub fn bounded(capacity: usize) -> RunQueue<T> {
        RunQueue {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1) as u64,
            depth: AtomicU64::new(0),
            sends: AtomicU64::new(0),
            recvs: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            parked: AtomicBool::new(false),
        }
    }

    /// Pushes one unit-weight entry. Returns the entry on overflow.
    pub fn push(&self, item: T) -> Result<(), T> {
        self.push_weighted(item, 1)
    }

    /// Pushes an entry carrying `weight` frames, all-or-nothing: a batch
    /// that does not fit is rejected whole (the caller re-files its frames
    /// through the retry path) rather than split. Rejection is recorded in
    /// both `sends` and `drops`, keeping the depth ledger exact.
    pub fn push_weighted(&self, item: T, weight: u64) -> Result<(), T> {
        {
            let mut q = self.inner.lock().expect("run queue poisoned");
            self.sends.fetch_add(weight, Ordering::Relaxed);
            if self.depth.load(Ordering::Relaxed) + weight > self.capacity {
                self.drops.fetch_add(weight, Ordering::Relaxed);
                return Err(item);
            }
            q.push_back((item, weight));
            self.depth.fetch_add(weight, Ordering::Relaxed);
        }
        self.wake();
        Ok(())
    }

    /// Pushes an entry ignoring capacity — control traffic (crash,
    /// restart, shutdown wake) must never be lost or retried.
    pub fn push_urgent(&self, item: T, weight: u64) {
        {
            let mut q = self.inner.lock().expect("run queue poisoned");
            self.sends.fetch_add(weight, Ordering::Relaxed);
            q.push_back((item, weight));
            self.depth.fetch_add(weight, Ordering::Relaxed);
        }
        self.wake();
    }

    fn wake(&self) {
        if self.parked.swap(false, Ordering::AcqRel) {
            self.ready.notify_one();
        }
    }

    /// Drains every queued entry into `out` under one lock acquisition.
    /// Returns the total weight drained.
    pub fn pop_all(&self, out: &mut Vec<T>) -> u64 {
        let mut q = self.inner.lock().expect("run queue poisoned");
        let mut drained = 0;
        for (item, weight) in q.drain(..) {
            drained += weight;
            out.push(item);
        }
        if drained > 0 {
            self.depth.fetch_sub(drained, Ordering::Relaxed);
            self.recvs.fetch_add(drained, Ordering::Relaxed);
        }
        drained
    }

    /// Parks the consumer until an entry arrives or `deadline` passes,
    /// then drains everything queued. With no deadline, sleeps until the
    /// next push. Returns the weight drained (0 on timeout).
    pub fn pop_wait(&self, out: &mut Vec<T>, deadline: Option<Instant>) -> u64 {
        let mut q = self.inner.lock().expect("run queue poisoned");
        // The parked flag is set under the queue lock, so any producer
        // that pushed before we checked emptiness is observed here, and
        // any later producer observes the flag: no missed wakeups.
        while q.is_empty() {
            self.parked.store(true, Ordering::Release);
            match deadline {
                Some(when) => {
                    let now = Instant::now();
                    if now >= when {
                        self.parked.store(false, Ordering::Release);
                        return 0;
                    }
                    let (guard, timeout) = self
                        .ready
                        .wait_timeout(q, when - now)
                        .expect("run queue poisoned");
                    q = guard;
                    if timeout.timed_out() && q.is_empty() {
                        self.parked.store(false, Ordering::Release);
                        return 0;
                    }
                }
                None => {
                    q = self.ready.wait(q).expect("run queue poisoned");
                }
            }
        }
        self.parked.store(false, Ordering::Release);
        let mut drained = 0;
        for (item, weight) in q.drain(..) {
            drained += weight;
            out.push(item);
        }
        self.depth.fetch_sub(drained, Ordering::Relaxed);
        self.recvs.fetch_add(drained, Ordering::Relaxed);
        drained
    }

    /// Weight currently queued (exact, lock-free).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Total weight offered by producers (accepted and rejected).
    pub fn sends(&self) -> u64 {
        self.sends.load(Ordering::Relaxed)
    }

    /// Total weight drained by the consumer.
    pub fn recvs(&self) -> u64 {
        self.recvs.load(Ordering::Relaxed)
    }

    /// Total weight rejected on overflow.
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn depth_equals_sends_minus_recvs_minus_drops() {
        // The exact-gauge invariant the approximate sync_channel counters
        // could not hold: every push (accepted or rejected, weighted or
        // not) and every drain keeps depth == sends - recvs - drops.
        let q: RunQueue<u32> = RunQueue::bounded(8);
        let check = |q: &RunQueue<u32>| {
            assert_eq!(q.depth(), q.sends() - q.recvs() - q.drops());
        };
        for i in 0..6 {
            q.push(i).unwrap();
            check(&q);
        }
        // A 4-frame batch into 2 remaining slots: rejected whole.
        assert!(q.push_weighted(99, 4).is_err());
        check(&q);
        assert_eq!(q.drops(), 4);
        assert_eq!(q.depth(), 6);
        // Overflow the unit path too.
        q.push(6).unwrap();
        q.push(7).unwrap();
        assert!(q.push(8).is_err());
        check(&q);
        assert_eq!(q.drops(), 5);
        // Urgent entries bypass capacity but stay on the ledger.
        q.push_urgent(100, 1);
        check(&q);
        assert_eq!(q.depth(), 9);
        let mut out = Vec::new();
        assert_eq!(q.pop_all(&mut out), 9);
        assert_eq!(out.len(), 9);
        check(&q);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.sends(), 14);
        assert_eq!(q.recvs(), 9);
        assert_eq!(q.drops(), 5);
    }

    #[test]
    fn weighted_batches_count_frames_not_envelopes() {
        let q: RunQueue<&'static str> = RunQueue::bounded(100);
        q.push_weighted("batch-a", 40).unwrap();
        q.push_weighted("batch-b", 60).unwrap();
        assert_eq!(q.depth(), 100);
        assert!(q.push("one-more").is_err());
        let mut out = Vec::new();
        assert_eq!(q.pop_all(&mut out), 100);
        assert_eq!(out, vec!["batch-a", "batch-b"]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn pop_wait_times_out_and_wakes_on_push() {
        let q: Arc<RunQueue<u32>> = Arc::new(RunQueue::bounded(16));
        let mut out = Vec::new();
        // Timeout path: nothing arrives before the deadline.
        let start = Instant::now();
        let got = q.pop_wait(&mut out, Some(start + Duration::from_millis(10)));
        assert_eq!(got, 0);
        assert!(start.elapsed() >= Duration::from_millis(10));
        // Wakeup path: a push from another thread ends the park early.
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.push(7).unwrap();
            })
        };
        let got = q.pop_wait(&mut out, Some(Instant::now() + Duration::from_secs(10)));
        assert_eq!(got, 1);
        assert_eq!(out, vec![7]);
        producer.join().unwrap();
    }

    #[test]
    fn steady_state_pushes_skip_notify_when_not_parked() {
        let q: RunQueue<u32> = RunQueue::bounded(16);
        // Not parked: pushes must not flip the flag.
        q.push(1).unwrap();
        assert!(!q.parked.load(Ordering::Acquire));
        // Simulate a parked consumer: the next push clears the flag.
        q.parked.store(true, Ordering::Release);
        q.push(2).unwrap();
        assert!(!q.parked.load(Ordering::Acquire));
    }
}
