//! Per-worker buffer pools: the wire hot path reuses buffers instead of
//! allocating per frame.
//!
//! Each runtime worker owns pools of reusable vectors. Paths that need a
//! scratch buffer — frame-batch assembly for cross-worker handoff,
//! wire-layer corruption copies — acquire a recycled vector, fill it, and
//! either hand it off (batch containers travel to the destination worker,
//! which releases them into *its* pool, so containers circulate between
//! workers under symmetric traffic) or give it straight back. Released
//! buffers keep their capacity (bounded by the pool's per-buffer cap) so
//! steady-state traffic settles into a fixed working set with zero
//! allocator traffic.

/// A bounded freelist of reusable `Vec<T>` buffers.
#[derive(Debug)]
pub struct Pool<T> {
    free: Vec<Vec<T>>,
    /// Buffers retained at most (excess releases fall to the allocator).
    max_buffers: usize,
    /// Element capacity above which a released buffer is shrunk before
    /// pooling, so one jumbo frame cannot pin memory forever.
    max_buffer_capacity: usize,
    acquires: u64,
    reuses: u64,
}

/// The byte-buffer pool used by the wire path.
pub type BufferPool = Pool<u8>;

impl<T> Pool<T> {
    /// A pool retaining up to `max_buffers` buffers of up to
    /// `max_buffer_capacity` elements each.
    pub fn new(max_buffers: usize, max_buffer_capacity: usize) -> Pool<T> {
        Pool {
            free: Vec::with_capacity(max_buffers.min(64)),
            max_buffers,
            max_buffer_capacity,
            acquires: 0,
            reuses: 0,
        }
    }

    /// Takes a cleared buffer from the pool, or allocates a fresh one.
    pub fn acquire(&mut self) -> Vec<T> {
        self.acquires += 1;
        match self.free.pop() {
            Some(buf) => {
                self.reuses += 1;
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool for reuse. The contents are cleared;
    /// capacity is kept (bounded) so the next acquire writes into warm,
    /// already-sized memory.
    pub fn release(&mut self, mut buf: Vec<T>) {
        if self.free.len() >= self.max_buffers {
            return;
        }
        buf.clear();
        if buf.capacity() > self.max_buffer_capacity {
            buf.shrink_to(self.max_buffer_capacity);
        }
        self.free.push(buf);
    }

    /// Buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Fraction of acquires served from the pool (0 before any acquire).
    pub fn reuse_ratio(&self) -> f64 {
        if self.acquires == 0 {
            0.0
        } else {
            self.reuses as f64 / self.acquires as f64
        }
    }
}

impl<T> Default for Pool<T> {
    /// Matches the runtime's per-worker defaults: up to 256 pooled
    /// buffers, 64 Ki elements retained capacity each.
    fn default() -> Pool<T> {
        Pool::new(256, 64 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_recycles() {
        let mut pool: BufferPool = Pool::new(4, 1024);
        let mut a = pool.acquire();
        a.extend_from_slice(b"hello");
        let ptr = a.as_ptr();
        pool.release(a);
        let b = pool.acquire();
        // Same allocation, cleared.
        assert_eq!(b.as_ptr(), ptr);
        assert!(b.is_empty());
        assert!(b.capacity() >= 5);
        assert!(pool.reuse_ratio() > 0.0);
    }

    #[test]
    fn pool_and_buffer_sizes_are_bounded() {
        let mut pool: BufferPool = Pool::new(2, 16);
        for _ in 0..5 {
            pool.release(Vec::with_capacity(1024));
        }
        // Retention is capped at 2 no matter how many are released.
        assert_eq!(pool.pooled(), 2);
        let kept = pool.acquire();
        assert!(
            kept.capacity() <= 16,
            "oversized buffer was pooled unshrunk"
        );
    }
}
