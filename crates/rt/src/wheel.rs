//! A hashed timer wheel: O(1) insert, amortized O(1) fire.
//!
//! Deadlines hash into `slot_count` buckets of `granularity_us` each;
//! entries whose deadline falls in a later wheel revolution simply stay in
//! their bucket until their time comes around. Each runtime worker owns one
//! wheel and uses it both for its actors' protocol timers and as the link
//! delay line for in-flight frames.
//!
//! The wheel is the event-driven runtime's parking clock: a worker with
//! nothing runnable sleeps until exactly [`TimerWheel::next_due`] (or an
//! incoming-work wakeup) instead of polling. That makes `next_due` a
//! hot-loop call, so each bucket caches its own earliest deadline —
//! recomputing the global minimum scans `slot_count` cached values, never
//! the entries themselves.

use spire_sim::Time;

/// A deadline-ordered container with hashed-wheel internals.
#[derive(Debug)]
pub struct TimerWheel<T> {
    slots: Vec<Vec<(Time, T)>>,
    /// Earliest deadline per bucket (`Time::MAX` = empty); maintained on
    /// insert and on every bucket visit during advance.
    slot_min: Vec<Time>,
    granularity_us: u64,
    /// The last tick `advance` fully processed.
    last_tick: u64,
    len: usize,
    /// Cached earliest deadline across all buckets (`None` = unknown;
    /// recomputed from `slot_min` on demand).
    min_due: Option<Time>,
}

const NO_DEADLINE: Time = Time(u64::MAX);

impl<T> TimerWheel<T> {
    /// Creates a wheel of `slot_count` buckets of `granularity_us` each.
    pub fn new(granularity_us: u64, slot_count: usize) -> TimerWheel<T> {
        assert!(granularity_us > 0 && slot_count > 1);
        TimerWheel {
            slots: (0..slot_count).map(|_| Vec::new()).collect(),
            slot_min: vec![NO_DEADLINE; slot_count],
            granularity_us,
            last_tick: 0,
            len: 0,
            min_due: None,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_of(&self, at: Time) -> u64 {
        at.0 / self.granularity_us
    }

    /// Inserts an entry due at `at`. Past-due deadlines are fine: they land
    /// in the current bucket and fire on the next [`TimerWheel::advance`].
    pub fn insert(&mut self, at: Time, item: T) {
        // Never file into a bucket the cursor has already passed this
        // revolution — it would wait a full turn of the wheel.
        let tick = self.tick_of(at).max(self.last_tick);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push((at, item));
        self.slot_min[slot] = self.slot_min[slot].min(at);
        self.len += 1;
        self.min_due = match self.min_due {
            Some(m) => Some(m.min(at)),
            None => Some(at),
        };
    }

    /// The earliest pending deadline, if any.
    pub fn next_due(&mut self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        if self.min_due.is_none() {
            // One pass over the per-bucket minima — O(slot_count), not
            // O(entries).
            let mut min = NO_DEADLINE;
            for &m in &self.slot_min {
                min = min.min(m);
            }
            self.min_due = (min != NO_DEADLINE).then_some(min);
        }
        self.min_due
    }

    /// Moves every entry due at or before `now` into `out` (unordered;
    /// sort by deadline if fire order matters).
    pub fn advance(&mut self, now: Time, out: &mut Vec<(Time, T)>) {
        let now_tick = self.tick_of(now);
        if self.len > 0 {
            let slot_count = self.slots.len() as u64;
            // Scan from the cursor's bucket through `now`'s bucket, but
            // each bucket at most once per call.
            let span = (now_tick - self.last_tick + 1).min(slot_count);
            let fired_before = out.len();
            for step in 0..span {
                let slot = ((self.last_tick + step) % slot_count) as usize;
                if self.slot_min[slot] > now {
                    continue; // nothing due in this bucket
                }
                let bucket = &mut self.slots[slot];
                let mut remaining_min = NO_DEADLINE;
                let mut i = 0;
                while i < bucket.len() {
                    if bucket[i].0 <= now {
                        out.push(bucket.swap_remove(i));
                    } else {
                        remaining_min = remaining_min.min(bucket[i].0);
                        i += 1;
                    }
                }
                self.slot_min[slot] = remaining_min;
            }
            let fired = out.len() - fired_before;
            self.len -= fired;
            if fired > 0 {
                self.min_due = None; // recomputed on demand
            }
        }
        self.last_tick = now_tick;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_buckets() {
        let mut w: TimerWheel<u32> = TimerWheel::new(100, 16);
        w.insert(Time(250), 1);
        w.insert(Time(50), 2);
        w.insert(Time(5_000), 3); // several revolutions out
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_due(), Some(Time(50)));
        let mut out = Vec::new();
        w.advance(Time(100), &mut out);
        assert_eq!(out, vec![(Time(50), 2)]);
        out.clear();
        w.advance(Time(300), &mut out);
        assert_eq!(out, vec![(Time(250), 1)]);
        out.clear();
        w.advance(Time(4_999), &mut out);
        assert!(out.is_empty());
        w.advance(Time(5_000), &mut out);
        assert_eq!(out, vec![(Time(5_000), 3)]);
        assert!(w.is_empty());
        assert_eq!(w.next_due(), None);
    }

    #[test]
    fn past_due_inserts_fire_immediately() {
        let mut w: TimerWheel<u32> = TimerWheel::new(100, 8);
        let mut out = Vec::new();
        w.advance(Time(10_000), &mut out);
        w.insert(Time(500), 7); // long past the cursor
        assert_eq!(w.next_due(), Some(Time(500)));
        w.advance(Time(10_000), &mut out);
        assert_eq!(out, vec![(Time(500), 7)]);
    }

    #[test]
    fn large_jump_visits_every_bucket_once() {
        let mut w: TimerWheel<u32> = TimerWheel::new(100, 8);
        for i in 0..32 {
            w.insert(Time(i * 97), i as u32);
        }
        let mut out = Vec::new();
        // A jump much larger than one revolution must still drain all.
        w.advance(Time(1_000_000), &mut out);
        assert_eq!(out.len(), 32);
        assert!(w.is_empty());
    }

    #[test]
    fn future_rounds_survive_same_bucket() {
        let mut w: TimerWheel<u32> = TimerWheel::new(100, 4);
        // Same bucket (tick 1 and tick 5 with 4 slots), different rounds.
        w.insert(Time(150), 1);
        w.insert(Time(550), 2);
        let mut out = Vec::new();
        w.advance(Time(200), &mut out);
        assert_eq!(out, vec![(Time(150), 1)]);
        assert_eq!(w.len(), 1);
        out.clear();
        w.advance(Time(600), &mut out);
        assert_eq!(out, vec![(Time(550), 2)]);
    }

    #[test]
    fn slot_min_cache_survives_partial_drains() {
        // Two entries share a bucket across rounds; draining the near one
        // must leave the cached bucket minimum pointing at the far one.
        let mut w: TimerWheel<u32> = TimerWheel::new(100, 4);
        w.insert(Time(120), 1);
        w.insert(Time(520), 2); // same bucket, next revolution
        w.insert(Time(230), 3);
        assert_eq!(w.next_due(), Some(Time(120)));
        let mut out = Vec::new();
        w.advance(Time(150), &mut out);
        assert_eq!(out, vec![(Time(120), 1)]);
        assert_eq!(w.next_due(), Some(Time(230)));
        out.clear();
        w.advance(Time(300), &mut out);
        assert_eq!(out, vec![(Time(230), 3)]);
        assert_eq!(w.next_due(), Some(Time(520)));
        out.clear();
        w.advance(Time(600), &mut out);
        assert_eq!(out, vec![(Time(520), 2)]);
        assert_eq!(w.next_due(), None);
        assert!(w.is_empty());
    }
}
