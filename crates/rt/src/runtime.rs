//! The multi-threaded real-clock hosting substrate.
//!
//! A [`Runtime`] takes the actors and link model of an assembled
//! [`Fabric`] (built exactly as for the simulator) and runs them on OS
//! threads under monotonic wall-clock time. The runtime is event-driven:
//! actors are run-queue entries, not threads.
//!
//! - **Sharded run queues.** Actors are partitioned round-robin across
//!   workers; each worker owns one [`RunQueue`] for work from other
//!   workers and a hashed [`TimerWheel`] that serves both as its actors'
//!   timer service and as the link delay line (the same per-link
//!   latency/jitter/loss/corruption/duplication model the simulator
//!   uses). Due work is routed to per-actor pending queues and a ready
//!   ring; a scheduled actor drains a bounded burst
//!   ([`RtConfig::burst`]) of frames and timers before yielding, so the
//!   hot actor's state stays cache-warm without starving its shard.
//! - **Frame batching.** Cross-worker sends coalesce: frames staged for
//!   the same destination worker during one scheduling pass travel as a
//!   single batch envelope — one queue push, at most one wakeup, for the
//!   whole batch. Batch containers are drawn from a per-worker
//!   [`Pool`] and released into the destination's pool, so the steady
//!   state recycles buffers instead of allocating per frame.
//! - **Wakeup discipline.** An idle worker parks on its run queue's
//!   condvar until exactly the wheel's next deadline (or the next
//!   incoming batch, whichever is first); nothing polls. Senders notify
//!   only a parked worker, so steady-state handoff is syscall-free.
//!
//! The control plane runs here too: [`Runtime::run_with`] takes a plan of
//! timestamped [`ControlOp`]s — the same vocabulary `World::apply_control`
//! executes under virtual time — and applies each at its wall-clock
//! offset. Crash/restart ops are shipped to the owning worker over its
//! run queue (generation counters invalidate the dead incarnation's
//! timers); link up/down and reconfiguration mutate the shared link
//! table, visible to every worker's next send.
//!
//! Differences from the simulator, by design:
//! - No bandwidth queueing on links (latency, jitter, loss, corruption
//!   and duplication only).
//! - Cross-worker run queues are bounded; a full queue triggers bounded
//!   retry with exponential backoff through the sender's timer wheel
//!   (`rt.mailbox_retry`), and only after the retry budget is exhausted
//!   is the frame dropped — counted both globally
//!   (`rt.mailbox_full_drop`) and per message class (`rt.drop.<class>`
//!   via [`RtHooks::classify`]), like a congested NIC queue.
//! - Runs are not reproducible: thread interleaving and the OS clock are
//!   real. Per-worker RNGs are still seeded from the fabric seed so loss
//!   and jitter draws do not depend on a global entropy source.

use crate::pool::Pool;
use crate::queue::RunQueue;
use crate::wheel::TimerWheel;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spire_sim::clock::Clock;
use spire_sim::world::{
    Backend, Context, ControlOp, Fabric, LinkConfig, Process, ProcessId, SpawnFn, TimerId,
};
use spire_sim::{Metrics, Span, SpanPhase, Time, TraceKind};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Tuning knobs for the runtime.
#[derive(Clone, Copy, Debug)]
pub struct RtConfig {
    /// Worker threads to spawn (capped at the actor count).
    pub threads: usize,
    /// Bounded capacity of each worker's cross-worker run queue, in
    /// frames (batch envelopes count their frames, not one slot).
    pub mailbox_capacity: usize,
    /// Timer-wheel bucket width in microseconds.
    pub wheel_granularity_us: u64,
    /// Timer-wheel bucket count.
    pub wheel_slots: usize,
    /// Frames + timers one actor may drain per scheduling before the
    /// ready ring moves on to the next actor.
    pub burst: usize,
}

impl Default for RtConfig {
    fn default() -> RtConfig {
        RtConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            mailbox_capacity: 65_536,
            wheel_granularity_us: 200,
            wheel_slots: 1_024,
            burst: 64,
        }
    }
}

impl RtConfig {
    /// A config with an explicit worker count.
    pub fn with_threads(threads: usize) -> RtConfig {
        RtConfig {
            threads,
            ..RtConfig::default()
        }
    }
}

/// A frame-bytes → message-class labeling function (see [`RtHooks`]).
pub type ClassifyFn = Arc<dyn Fn(&[u8]) -> &'static str + Send + Sync>;

/// Callbacks the hosting layer can hand the runtime. Kept outside
/// [`RtConfig`] so that stays `Copy`.
#[derive(Clone)]
pub struct RtHooks {
    /// Maps a frame's bytes to a short message-class label for the
    /// per-class drop counters (`rt.drop.<class>`). The default lumps
    /// everything under `"frame"`; `spire-core` installs a Prime-aware
    /// classifier so view-change and checkpoint losses are visible.
    pub classify: ClassifyFn,
}

impl Default for RtHooks {
    fn default() -> RtHooks {
        RtHooks {
            classify: Arc::new(|_| "frame"),
        }
    }
}

impl std::fmt::Debug for RtHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtHooks").finish_non_exhaustive()
    }
}

/// Mutable per-link state shared by all workers behind one `RwLock`:
/// sends take a read lock; control-plane ops take the write lock.
struct RtLink {
    cfg: LinkConfig,
    up: bool,
}

type LinkTable = Arc<RwLock<HashMap<(u32, u32), RtLink>>>;

/// How often each worker publishes its telemetry: a clone of its private
/// metrics into the shared slot plus gauge samples (mailbox depth, wheel
/// occupancy, busy fraction) into its own series. Idle parks are capped
/// at this interval so the published view is never staler than one
/// period even on a quiet shard.
const PUBLISH_INTERVAL: Span = Span(250_000);

/// One worker's shared telemetry slot, refreshed at [`PUBLISH_INTERVAL`].
/// This is what [`Runtime::live_metrics`] and [`Runtime::gauges`] read
/// while the run is still in flight. Mailbox depth is *not* mirrored
/// here: the run queue's own exact ledger is read directly.
pub(crate) struct WorkerShared {
    /// Latest published clone of the worker's private metrics.
    metrics: Mutex<Metrics>,
    /// Timer-wheel entries pending at last publish.
    wheel_len: AtomicU64,
    /// Cumulative microseconds spent dispatching work.
    busy_us: AtomicU64,
    /// Cumulative microseconds spent parked waiting for work.
    idle_us: AtomicU64,
}

impl WorkerShared {
    fn new() -> WorkerShared {
        WorkerShared {
            metrics: Mutex::new(Metrics::new()),
            wheel_len: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
            idle_us: AtomicU64::new(0),
        }
    }
}

/// A point-in-time view of the runtime's own health gauges, aggregated
/// across workers — the blind spots end-of-run metrics cannot show.
#[derive(Clone, Copy, Debug, Default)]
pub struct RtGauges {
    /// Frames queued in cross-worker run queues right now (exact: read
    /// from each queue's depth ledger, where
    /// `depth == sends - recvs - drops` holds by construction).
    pub mailbox_depth: u64,
    /// Timer-wheel entries pending across all workers (timers + delayed
    /// frames + parked retries) as of each worker's last publish.
    pub wheel_len: u64,
    /// Cumulative busy microseconds across workers.
    pub busy_us: u64,
    /// Cumulative idle microseconds across workers.
    pub idle_us: u64,
}

impl RtGauges {
    /// Fraction of worker time spent dispatching (0 when nothing has
    /// been published yet).
    pub fn busy_frac(&self) -> f64 {
        let total = self.busy_us + self.idle_us;
        if total == 0 {
            0.0
        } else {
            self.busy_us as f64 / total as f64
        }
    }
}

/// Control-plane actions shipped to the worker that owns the target
/// actor (only that worker may touch the actor's `Box<dyn Process>`).
enum CtlMsg {
    Crash(u32),
    Restart(u32, SpawnFn),
}

/// A frame in flight between workers: already delayed-and-filtered by
/// the sender's link model, held in the receiving worker's wheel until
/// `deliver_at`.
struct Frame {
    from: ProcessId,
    to: ProcessId,
    deliver_at: Time,
    bytes: Bytes,
}

/// What flows through the cross-worker run queues.
enum Envelope {
    /// A single frame (retries and duplicates travel alone).
    Frame(Frame),
    /// Frames coalesced for this worker during one sender scheduling
    /// pass: one push, one wakeup, many frames. The container is
    /// released into the receiving worker's pool after draining.
    Batch(Vec<Frame>),
    /// A control-plane action for an actor this worker owns.
    Control(CtlMsg),
    /// Shutdown nudge so parked workers re-check the stop flag.
    Wake,
}

/// How many times a frame that found the destination queue full is
/// re-offered before being dropped, and the initial backoff (doubled per
/// attempt: 1 ms, 2 ms, 4 ms).
const MAX_FORWARD_ATTEMPTS: u32 = 3;
const FORWARD_BACKOFF: Span = Span(1_000);

/// An entry in a worker's wheel: a delayed frame, a protocol timer, or a
/// frame awaiting a queue-retry slot.
enum Due {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        bytes: Bytes,
    },
    Timer {
        to: ProcessId,
        id: u64,
        tag: u64,
        generation: u64,
    },
    /// A cross-worker frame that hit a full run queue: retry the send.
    Forward {
        from: ProcessId,
        to: ProcessId,
        deliver_at: Time,
        bytes: Bytes,
        attempts: u32,
    },
}

/// The per-worker [`Backend`]: monotonic clock, seeded RNG, private
/// metrics, the timer/delay wheel, and routes to the other workers.
struct WorkerBackend {
    worker: usize,
    clock: Clock,
    rng: StdRng,
    metrics: Metrics,
    wheel: TimerWheel<Due>,
    cancelled: HashSet<u64>,
    next_timer: u64,
    links: LinkTable,
    /// Restart generation per locally-owned actor; timers carry the
    /// generation they were set under and stale ones are discarded.
    generations: HashMap<u32, u64>,
    /// Locally-owned actors currently crashed (deliveries are dropped
    /// and counted rather than misrouted).
    down: HashSet<u32>,
    /// `ProcessId -> worker index` for every actor.
    assignment: Arc<Vec<usize>>,
    queues: Vec<Arc<RunQueue<Envelope>>>,
    /// Outgoing frames staged per destination worker during the current
    /// scheduling pass; flushed as one batch envelope per destination.
    staged: Vec<Vec<Frame>>,
    /// Destination workers with staged frames, in first-touch order.
    staged_order: Vec<usize>,
    /// Recycled batch containers (refilled by incoming batches).
    containers: Pool<Frame>,
    hooks: RtHooks,
    /// Telemetry slots for every worker (index = worker id).
    shared: Arc<Vec<WorkerShared>>,
}

impl WorkerBackend {
    /// Stages a frame for a remote worker; it travels in the next flush's
    /// batch envelope.
    fn stage(&mut self, w: usize, from: ProcessId, to: ProcessId, deliver_at: Time, bytes: Bytes) {
        if self.staged[w].is_empty() {
            self.staged_order.push(w);
            if self.staged[w].capacity() == 0 {
                self.staged[w] = self.containers.acquire();
            }
        }
        self.staged[w].push(Frame {
            from,
            to,
            deliver_at,
            bytes,
        });
    }

    /// Ships every staged batch: one queue push (and at most one wakeup)
    /// per destination worker. A batch that does not fit the destination
    /// queue falls back to per-frame bounded retry through our wheel.
    fn flush_staged(&mut self) {
        if self.staged_order.is_empty() {
            return;
        }
        let order = std::mem::take(&mut self.staged_order);
        for w in &order {
            let frames = std::mem::take(&mut self.staged[*w]);
            let n = frames.len() as u64;
            debug_assert!(n > 0);
            self.metrics.count("rt.envelopes", 1);
            if n > 1 {
                self.metrics.count("rt.coalesced_frames", n - 1);
            }
            match self.queues[*w].push_weighted(Envelope::Batch(frames), n) {
                Ok(()) => {}
                Err(Envelope::Batch(mut frames)) => {
                    // Park each frame for retry; the container returns to
                    // our pool.
                    self.metrics.count("rt.mailbox_retry", n);
                    let retry_at = self.clock.now() + FORWARD_BACKOFF;
                    for f in frames.drain(..) {
                        self.wheel.insert(
                            retry_at,
                            Due::Forward {
                                from: f.from,
                                to: f.to,
                                deliver_at: f.deliver_at,
                                bytes: f.bytes,
                                attempts: 1,
                            },
                        );
                    }
                    self.containers.release(frames);
                }
                Err(_) => unreachable!("pushed a Batch"),
            }
        }
        self.staged_order = order;
        self.staged_order.clear();
    }

    /// Retries a parked frame; drops (with per-class accounting) once the
    /// attempt budget is spent.
    fn retry_forward(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        deliver_at: Time,
        bytes: Bytes,
        attempts: u32,
    ) {
        let Some(&w) = self.assignment.get(to.0 as usize) else {
            self.metrics.count("rt.no_link_drop", 1);
            return;
        };
        match self.queues[w].push(Envelope::Frame(Frame {
            from,
            to,
            deliver_at,
            bytes,
        })) {
            Ok(()) => {}
            Err(Envelope::Frame(f)) => {
                if attempts < MAX_FORWARD_ATTEMPTS {
                    self.metrics.count("rt.mailbox_retry", 1);
                    let backoff = Span::micros(FORWARD_BACKOFF.0 << attempts);
                    let retry_at = self.clock.now() + backoff;
                    self.wheel.insert(
                        retry_at,
                        Due::Forward {
                            from: f.from,
                            to: f.to,
                            deliver_at: f.deliver_at,
                            bytes: f.bytes,
                            attempts: attempts + 1,
                        },
                    );
                } else {
                    self.metrics.count("rt.mailbox_full_drop", 1);
                    let class = (self.hooks.classify)(&f.bytes);
                    self.metrics.count(&format!("rt.drop.{class}"), 1);
                }
            }
            Err(_) => unreachable!("pushed a Frame"),
        }
    }
}

impl Backend for WorkerBackend {
    fn now(&self) -> Time {
        self.clock.now()
    }

    fn send_from(&mut self, from: ProcessId, to: ProcessId, bytes: Bytes) {
        let Some((cfg, up)) = self
            .links
            .read()
            .expect("link table poisoned")
            .get(&(from.0, to.0))
            .map(|l| (l.cfg, l.up))
        else {
            self.metrics.count("rt.no_link_drop", 1);
            return;
        };
        if !up {
            self.metrics.count("rt.link_down_drop", 1);
            return;
        }
        if cfg.loss > 0.0 && self.rng.gen_bool(cfg.loss.min(1.0)) {
            self.metrics.count("rt.loss_drop", 1);
            return;
        }
        // Wire-layer corruption: one flipped bit, exactly as the
        // simulator injects it. Decoders must treat this as noise.
        let bytes =
            if cfg.corrupt > 0.0 && !bytes.is_empty() && self.rng.gen_bool(cfg.corrupt.min(1.0)) {
                let mut corrupted = bytes.to_vec();
                let idx = self.rng.gen_range(0..corrupted.len());
                corrupted[idx] ^= 0x01;
                self.metrics.count("rt.corrupted", 1);
                Bytes::from(corrupted)
            } else {
                bytes
            };
        let jitter = if cfg.jitter.0 > 0 {
            Span::micros(self.rng.gen_range(0..=cfg.jitter.0))
        } else {
            Span::ZERO
        };
        let now = self.clock.now();
        let deliver_at = now + cfg.latency + jitter;
        self.metrics.count("rt.sent", 1);
        let dest = self.assignment.get(to.0 as usize).copied();
        // Wire-layer duplication: the copy draws its own jitter, so the
        // pair can arrive reordered.
        if cfg.dup > 0.0 && self.rng.gen_bool(cfg.dup.min(1.0)) {
            let jitter2 = if cfg.jitter.0 > 0 {
                Span::micros(self.rng.gen_range(0..=cfg.jitter.0))
            } else {
                Span::ZERO
            };
            let dup_at = now + cfg.latency + jitter2;
            self.metrics.count("rt.dup", 1);
            if dest == Some(self.worker) {
                self.wheel.insert(
                    dup_at,
                    Due::Deliver {
                        from,
                        to,
                        bytes: bytes.clone(),
                    },
                );
            } else if let Some(w) = dest {
                self.stage(w, from, to, dup_at, bytes.clone());
            }
        }
        if dest == Some(self.worker) {
            self.wheel
                .insert(deliver_at, Due::Deliver { from, to, bytes });
        } else if let Some(w) = dest {
            self.stage(w, from, to, deliver_at, bytes);
        } else {
            self.metrics.count("rt.no_link_drop", 1);
        }
    }

    fn set_timer(&mut self, me: ProcessId, delay: Span, tag: u64) -> TimerId {
        // Worker-tagged ids stay unique across the runtime even though
        // each worker mints its own.
        let id = ((self.worker as u64) << 48) | self.next_timer;
        self.next_timer += 1;
        let at = self.clock.now() + delay;
        let generation = self.generations.get(&me.0).copied().unwrap_or(0);
        self.wheel.insert(
            at,
            Due::Timer {
                to: me,
                id,
                tag,
                generation,
            },
        );
        TimerId::from_raw(id)
    }

    fn cancel_timer(&mut self, _me: ProcessId, timer: TimerId) {
        self.cancelled.insert(timer.raw());
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn count(&mut self, name: &str, delta: u64) {
        self.metrics.count(name, delta);
    }

    fn record(&mut self, name: &str, value: f64) {
        let now = self.clock.now();
        self.metrics.record(name, now, value);
    }

    fn observe(&mut self, name: &str, value: u64) {
        self.metrics.observe(name, value);
    }

    // Structured tracing is a simulator feature; the runtime keeps the
    // default no-op `tracing_enabled`/`trace`/`span_mark`.
    fn trace(&mut self, _kind: TraceKind) {}

    fn span_mark(&mut self, _pid: u32, _key: u64, _phase: SpanPhase) {}
}

/// One actor's slot on its worker's scheduler: due-but-unprocessed work
/// in deadline order, plus its ready-ring membership flag.
#[derive(Default)]
struct ActorSlot {
    pending: VecDeque<Due>,
    in_ready: bool,
}

struct Worker {
    backend: WorkerBackend,
    actors: HashMap<u32, Box<dyn Process>>,
    /// Per-actor pending queues (the run-queue entries of the design).
    slots: HashMap<u32, ActorSlot>,
    /// Actors with pending work, scheduled round-robin.
    ready: VecDeque<u32>,
    /// Frames + timers an actor may drain per scheduling.
    burst: usize,
    rx: Arc<RunQueue<Envelope>>,
    stop: Arc<AtomicBool>,
    /// Precomputed per-worker gauge series names (`rt.wN.*`), so the
    /// publish path never formats strings.
    gauge_mailbox: String,
    gauge_wheel: String,
    gauge_busy: String,
}

impl Worker {
    /// Files an incoming envelope: frames into the wheel (they carry
    /// their delivery deadline), control applied immediately.
    fn enqueue(&mut self, env: Envelope) {
        match env {
            Envelope::Frame(f) => {
                self.backend.wheel.insert(
                    f.deliver_at,
                    Due::Deliver {
                        from: f.from,
                        to: f.to,
                        bytes: f.bytes,
                    },
                );
            }
            Envelope::Batch(mut frames) => {
                for f in frames.drain(..) {
                    self.backend.wheel.insert(
                        f.deliver_at,
                        Due::Deliver {
                            from: f.from,
                            to: f.to,
                            bytes: f.bytes,
                        },
                    );
                }
                // The sender's container becomes one of ours.
                self.backend.containers.release(frames);
            }
            Envelope::Control(ctl) => self.apply_control(ctl),
            Envelope::Wake => {}
        }
    }

    /// Publishes this worker's telemetry: gauge samples into its own
    /// series, busy/idle counters, and a metrics clone into the shared
    /// slot for [`Runtime::live_metrics`].
    fn publish(&mut self, now: Time, busy_us: &mut u64, idle_us: &mut u64) {
        let wheel_len = self.backend.wheel.len() as u64;
        // Exact occupancy from the run queue's own ledger — no racing
        // sender/receiver reconciliation.
        let depth = self.rx.depth();
        {
            let me = &self.backend.shared[self.backend.worker];
            me.wheel_len.store(wheel_len, Ordering::Relaxed);
            me.busy_us.fetch_add(*busy_us, Ordering::Relaxed);
            me.idle_us.fetch_add(*idle_us, Ordering::Relaxed);
        }
        let window = *busy_us + *idle_us;
        let busy_frac = if window == 0 {
            0.0
        } else {
            *busy_us as f64 / window as f64
        };
        self.backend.metrics.count("rt.busy_us", *busy_us);
        self.backend.metrics.count("rt.idle_us", *idle_us);
        *busy_us = 0;
        *idle_us = 0;
        self.backend
            .metrics
            .record(&self.gauge_mailbox, now, depth as f64);
        self.backend
            .metrics
            .record(&self.gauge_wheel, now, wheel_len as f64);
        self.backend
            .metrics
            .record(&self.gauge_busy, now, busy_frac);
        *self.backend.shared[self.backend.worker]
            .metrics
            .lock()
            .expect("telemetry slot poisoned") = self.backend.metrics.clone();
    }

    /// Applies a crash or restart to a locally-owned actor. Mirrors the
    /// simulator's semantics: a crash bumps the generation (invalidating
    /// the incarnation's timers) and drops subsequent deliveries; a
    /// restart installs a fresh state machine and runs its `on_start`.
    fn apply_control(&mut self, ctl: CtlMsg) {
        match ctl {
            CtlMsg::Crash(pid) => {
                if self.actors.remove(&pid).is_some() {
                    *self.backend.generations.entry(pid).or_insert(0) += 1;
                    self.backend.down.insert(pid);
                    self.backend.metrics.count("rt.crashed", 1);
                }
            }
            CtlMsg::Restart(pid, spawn) => {
                let mut proc = spawn();
                *self.backend.generations.entry(pid).or_insert(0) += 1;
                self.backend.down.remove(&pid);
                self.backend.metrics.count("rt.restarted", 1);
                let mut ctx = Context::new(&mut self.backend, ProcessId(pid));
                proc.on_start(&mut ctx);
                self.actors.insert(pid, proc);
            }
        }
    }

    /// Routes one due entry: actor work joins its actor's pending queue
    /// (and puts the actor on the ready ring); forwarding retries run
    /// immediately — they are runtime work, not actor work.
    fn route(&mut self, entry: Due) {
        match entry {
            Due::Forward {
                from,
                to,
                deliver_at,
                bytes,
                attempts,
            } => {
                self.backend
                    .retry_forward(from, to, deliver_at, bytes, attempts);
            }
            entry @ (Due::Deliver { .. } | Due::Timer { .. }) => {
                let pid = match &entry {
                    Due::Deliver { to, .. } | Due::Timer { to, .. } => to.0,
                    Due::Forward { .. } => unreachable!(),
                };
                let slot = self.slots.entry(pid).or_default();
                slot.pending.push_back(entry);
                if !slot.in_ready {
                    slot.in_ready = true;
                    self.ready.push_back(pid);
                }
            }
        }
    }

    /// Runs one actor's work against its state machine.
    fn dispatch(&mut self, entry: Due) {
        match entry {
            Due::Deliver { from, to, bytes } => {
                let Some(proc) = self.actors.get_mut(&to.0) else {
                    if self.backend.down.contains(&to.0) {
                        self.backend.metrics.count("rt.dropped_to_down_process", 1);
                    } else {
                        self.backend.metrics.count("rt.misrouted_drop", 1);
                    }
                    return;
                };
                self.backend.metrics.count("rt.delivered", 1);
                let mut ctx = Context::new(&mut self.backend, to);
                proc.on_message(&mut ctx, from, &bytes);
            }
            Due::Timer {
                to,
                id,
                tag,
                generation,
            } => {
                if self.backend.cancelled.remove(&id) {
                    return;
                }
                if self.backend.generations.get(&to.0).copied().unwrap_or(0) != generation {
                    self.backend.metrics.count("rt.stale_timer_drop", 1);
                    return;
                }
                let Some(proc) = self.actors.get_mut(&to.0) else {
                    return;
                };
                let mut ctx = Context::new(&mut self.backend, to);
                proc.on_timer(&mut ctx, tag);
            }
            Due::Forward { .. } => unreachable!("forwards never enter actor slots"),
        }
    }

    /// Schedules the ready ring once: every currently-ready actor drains
    /// up to `burst` entries; actors with leftovers rejoin the tail.
    fn run_ready(&mut self, scratch: &mut Vec<Due>) {
        let rounds = self.ready.len();
        for _ in 0..rounds {
            let Some(pid) = self.ready.pop_front() else {
                break;
            };
            let Some(slot) = self.slots.get_mut(&pid) else {
                continue;
            };
            let take = slot.pending.len().min(self.burst);
            scratch.extend(slot.pending.drain(..take));
            if slot.pending.is_empty() {
                slot.in_ready = false;
            } else {
                self.ready.push_back(pid);
            }
            for entry in scratch.drain(..) {
                self.dispatch(entry);
            }
        }
    }

    fn run(mut self) -> Metrics {
        // Start every local actor before touching the run queue, mirroring
        // the simulator's time-zero Start events.
        let mut pids: Vec<u32> = self.actors.keys().copied().collect();
        pids.sort_unstable();
        for pid in pids {
            let mut proc = self.actors.remove(&pid).expect("actor present");
            let mut ctx = Context::new(&mut self.backend, ProcessId(pid));
            proc.on_start(&mut ctx);
            self.actors.insert(pid, proc);
        }
        self.backend.flush_staged();
        let mut inbox: Vec<Envelope> = Vec::new();
        let mut due: Vec<(Time, Due)> = Vec::new();
        let mut scratch: Vec<Due> = Vec::new();
        let mut busy_us = 0u64;
        let mut idle_us = 0u64;
        let mut last_publish = Time(0);
        loop {
            let loop_start = self.backend.clock.now();
            // 1. Drain the run queue (one lock) and file arrivals.
            self.rx.pop_all(&mut inbox);
            for env in inbox.drain(..) {
                self.enqueue(env);
            }
            // 2. Fire everything due, routed through per-actor queues and
            // the bounded-burst ready ring (deadline order per actor).
            let now = self.backend.clock.now();
            self.backend.wheel.advance(now, &mut due);
            if !due.is_empty() {
                due.sort_by_key(|(at, _)| *at);
                for (_, entry) in due.drain(..) {
                    self.route(entry);
                }
            }
            self.run_ready(&mut scratch);
            // 3. Ship staged cross-worker batches: one push + at most one
            // wakeup per destination.
            self.backend.flush_staged();
            let worked_until = self.backend.clock.now();
            busy_us += worked_until.since(loop_start).0;
            if worked_until.since(last_publish).0 >= PUBLISH_INTERVAL.0 {
                self.publish(worked_until, &mut busy_us, &mut idle_us);
                last_publish = worked_until;
            }
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            // 4. Still-runnable actors (burst leftovers): loop again
            // without parking.
            if !self.ready.is_empty() {
                continue;
            }
            // 5. Park until exactly the next deadline (or the next
            // publish slot, bounding telemetry staleness), woken early by
            // incoming work. No polling.
            let next_publish = last_publish + PUBLISH_INTERVAL;
            let wake_at = match self.backend.wheel.next_due() {
                Some(t) => t.min(next_publish),
                None => next_publish,
            };
            let wait = wake_at.0.saturating_sub(self.backend.clock.now().0);
            let deadline = Instant::now() + Duration::from_micros(wait);
            self.rx.pop_wait(&mut inbox, Some(deadline));
            for env in inbox.drain(..) {
                self.enqueue(env);
            }
            idle_us += self.backend.clock.now().since(worked_until).0;
        }
        self.backend.metrics.count("rt.busy_us", busy_us);
        self.backend.metrics.count("rt.idle_us", idle_us);
        self.backend
            .metrics
            .count("rt.pending_at_exit", self.backend.wheel.len() as u64);
        self.backend.metrics.count("rt.worker_clean_exit", 1);
        self.backend.metrics
    }
}

/// The finished run: merged metrics and wall-clock accounting.
#[derive(Debug)]
pub struct RtRun {
    /// Metrics merged across all workers (series re-sorted by time).
    pub metrics: Metrics,
    /// Wall-clock time from runtime start to the last worker joining.
    pub elapsed: Span,
    /// Worker threads that ran.
    pub threads: usize,
}

/// A running real-clock substrate hosting one deployment's actors.
pub struct Runtime {
    handles: Vec<std::thread::JoinHandle<Metrics>>,
    queues: Vec<Arc<RunQueue<Envelope>>>,
    stop: Arc<AtomicBool>,
    epoch: Instant,
    threads: usize,
    links: LinkTable,
    assignment: Arc<Vec<usize>>,
    shared: Arc<Vec<WorkerShared>>,
}

impl Runtime {
    /// Spawns workers hosting the fabric's actors. The actors start
    /// running (and their `on_start` timers begin counting) immediately.
    pub fn from_fabric(fabric: Fabric, cfg: RtConfig) -> Runtime {
        Runtime::from_fabric_with(fabric, cfg, RtHooks::default())
    }

    /// Like [`Runtime::from_fabric`], with hosting-layer hooks (message
    /// classification for per-class drop counters).
    pub fn from_fabric_with(fabric: Fabric, cfg: RtConfig, hooks: RtHooks) -> Runtime {
        let n = fabric.actors.len().max(1);
        let threads = cfg.threads.clamp(1, n);
        let assignment: Arc<Vec<usize>> =
            Arc::new((0..fabric.actors.len()).map(|i| i % threads).collect());
        let links: LinkTable = Arc::new(RwLock::new(
            fabric
                .links
                .into_iter()
                .map(|(key, cfg)| (key, RtLink { cfg, up: true }))
                .collect(),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let queues: Vec<Arc<RunQueue<Envelope>>> = (0..threads)
            .map(|_| Arc::new(RunQueue::bounded(cfg.mailbox_capacity.max(1))))
            .collect();
        let mut crews: Vec<HashMap<u32, Box<dyn Process>>> =
            (0..threads).map(|_| HashMap::new()).collect();
        for (pid, (_name, proc)) in fabric.actors.into_iter().enumerate() {
            crews[pid % threads].insert(pid as u32, proc);
        }
        let shared: Arc<Vec<WorkerShared>> =
            Arc::new((0..threads).map(|_| WorkerShared::new()).collect());
        let mut handles = Vec::with_capacity(threads);
        for (w, actors) in crews.into_iter().enumerate() {
            let worker = Worker {
                backend: WorkerBackend {
                    worker: w,
                    clock: Clock::Monotonic { start: epoch },
                    rng: StdRng::seed_from_u64(
                        fabric.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ),
                    metrics: Metrics::new(),
                    wheel: TimerWheel::new(cfg.wheel_granularity_us, cfg.wheel_slots),
                    cancelled: HashSet::new(),
                    next_timer: 0,
                    links: Arc::clone(&links),
                    generations: HashMap::new(),
                    down: HashSet::new(),
                    assignment: Arc::clone(&assignment),
                    queues: queues.clone(),
                    staged: (0..threads).map(|_| Vec::new()).collect(),
                    staged_order: Vec::new(),
                    containers: Pool::default(),
                    hooks: hooks.clone(),
                    shared: Arc::clone(&shared),
                },
                actors,
                slots: HashMap::new(),
                ready: VecDeque::new(),
                burst: cfg.burst.max(1),
                rx: Arc::clone(&queues[w]),
                stop: Arc::clone(&stop),
                gauge_mailbox: format!("rt.w{w}.mailbox_depth"),
                gauge_wheel: format!("rt.w{w}.wheel"),
                gauge_busy: format!("rt.w{w}.busy_frac"),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rt-worker-{w}"))
                    .spawn(move || worker.run())
                    .expect("spawn rt worker"),
            );
        }
        Runtime {
            handles,
            queues,
            stop,
            epoch,
            threads,
            links,
            assignment,
            shared,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Merges every worker's last-published metrics clone into one store
    /// (series re-sorted). At most [`PUBLISH_INTERVAL`] stale — the
    /// in-flight view the health monitor snapshots while the run is
    /// still going.
    pub fn live_metrics(&self) -> Metrics {
        let mut merged = Metrics::new();
        for slot in self.shared.iter() {
            merged.merge(&slot.metrics.lock().expect("telemetry slot poisoned"));
        }
        merged.sort_series();
        merged
    }

    /// Aggregated runtime gauges: run-queue depth is exact and current
    /// (each queue's own ledger); wheel occupancy and busy/idle are as of
    /// each worker's last publish.
    pub fn gauges(&self) -> RtGauges {
        let mut g = RtGauges::default();
        for q in self.queues.iter() {
            g.mailbox_depth += q.depth();
        }
        for slot in self.shared.iter() {
            g.wheel_len += slot.wheel_len.load(Ordering::Relaxed);
            g.busy_us += slot.busy_us.load(Ordering::Relaxed);
            g.idle_us += slot.idle_us.load(Ordering::Relaxed);
        }
        g
    }

    /// Applies one control-plane op now. Actor ops are shipped to the
    /// owning worker's run queue as urgent entries (control traffic must
    /// not be lost, so it bypasses the frame capacity bound); link ops
    /// mutate the shared link table in place, both directions, mirroring
    /// the simulator's `set_link_up`/`set_link_config`.
    fn apply_control(&self, op: ControlOp, metrics: &mut Metrics) {
        match op {
            ControlOp::Crash(pid) => {
                if let Some(&w) = self.assignment.get(pid.0 as usize) {
                    self.queues[w].push_urgent(Envelope::Control(CtlMsg::Crash(pid.0)), 1);
                }
            }
            ControlOp::Restart(pid, spawn) => {
                if let Some(&w) = self.assignment.get(pid.0 as usize) {
                    self.queues[w].push_urgent(Envelope::Control(CtlMsg::Restart(pid.0, spawn)), 1);
                }
            }
            ControlOp::SetLinkUp(a, b, up) => {
                let mut table = self.links.write().expect("link table poisoned");
                for key in [(a.0, b.0), (b.0, a.0)] {
                    if let Some(link) = table.get_mut(&key) {
                        link.up = up;
                    }
                }
            }
            ControlOp::SetLinkConfig(a, b, cfg) => {
                let mut table = self.links.write().expect("link table poisoned");
                for key in [(a.0, b.0), (b.0, a.0)] {
                    if let Some(link) = table.get_mut(&key) {
                        link.cfg = cfg;
                    }
                }
            }
            ControlOp::Count(name, delta) => metrics.count(&name, delta),
        }
    }

    /// Lets the system run for `span` of wall-clock time while executing
    /// a control plan — timestamped [`ControlOp`]s applied at their
    /// offsets from runtime start — and calling `tick` roughly every
    /// 100 ms with the current time and the runtime itself (the hosting
    /// layer's online invariant checks and health snapshots run there,
    /// reading [`Runtime::live_metrics`] / [`Runtime::gauges`]). Then
    /// shuts down as [`Runtime::run_for`] does.
    pub fn run_with(
        self,
        span: Span,
        mut plan: Vec<(Time, ControlOp)>,
        mut tick: impl FnMut(Time, &Runtime),
    ) -> RtRun {
        plan.sort_by_key(|entry| entry.0);
        let mut next = 0;
        let mut ctl_metrics = Metrics::new();
        let step = Duration::from_millis(100);
        loop {
            let now = Time(self.epoch.elapsed().as_micros() as u64);
            while next < plan.len() && plan[next].0 <= now {
                let (_, op) = plan[next].clone();
                self.apply_control(op, &mut ctl_metrics);
                next += 1;
            }
            tick(now, &self);
            if now.0 >= span.0 {
                break;
            }
            // Sleep to the next interesting instant: plan op, deadline,
            // or the 100 ms tick — whichever comes first.
            let mut until = Duration::from_micros(span.0 - now.0).min(step);
            if next < plan.len() {
                let wait = Duration::from_micros(plan[next].0 .0.saturating_sub(now.0));
                until = until.min(wait.max(Duration::from_millis(1)));
            }
            std::thread::sleep(until);
        }
        let mut run = self.shutdown();
        run.metrics.merge(&ctl_metrics);
        run
    }

    /// Lets the system run for `span` of wall-clock time, then shuts it
    /// down: stop flag, wake nudges, join all workers, merge metrics.
    pub fn run_for(self, span: Span) -> RtRun {
        self.run_with(span, Vec::new(), |_, _| {})
    }

    /// Stops and joins all workers, merging their metrics.
    pub fn shutdown(self) -> RtRun {
        self.stop.store(true, Ordering::Release);
        for q in &self.queues {
            q.push_urgent(Envelope::Wake, 1);
        }
        let mut metrics = Metrics::new();
        for handle in self.handles {
            let worker_metrics = handle.join().expect("rt worker panicked");
            metrics.merge(&worker_metrics);
        }
        metrics.sort_series();
        RtRun {
            metrics,
            elapsed: Span::micros(self.epoch.elapsed().as_micros() as u64),
            threads: self.threads,
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.threads)
            .field("elapsed", &self.epoch.elapsed())
            .finish()
    }
}
