//! The multi-threaded real-clock hosting substrate.
//!
//! A [`Runtime`] takes the actors and link model of an assembled
//! [`Fabric`] (built exactly as for the simulator) and runs them on OS
//! threads under monotonic wall-clock time. Actors are partitioned
//! round-robin across workers; each worker owns a bounded mailbox for
//! frames from other workers and a hashed [`TimerWheel`] that serves both
//! as its actors' timer service and as the link delay line, applying the
//! same per-link latency/jitter/loss model the simulator uses.
//!
//! Differences from the simulator, by design:
//! - No bandwidth queueing or byte corruption on links (latency, jitter
//!   and loss only), and no crash/restart or control-plane injection —
//!   attack scenarios remain the simulator's job.
//! - Cross-worker mailboxes are bounded and tail-drop when full (counted
//!   in `rt.mailbox_full_drop`), like a congested NIC queue.
//! - Runs are not reproducible: thread interleaving and the OS clock are
//!   real. Per-worker RNGs are still seeded from the fabric seed so loss
//!   and jitter draws do not depend on a global entropy source.

use crate::wheel::TimerWheel;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spire_sim::clock::Clock;
use spire_sim::world::{Backend, Context, Fabric, LinkConfig, Process, ProcessId, TimerId};
use spire_sim::{Metrics, Span, SpanPhase, Time, TraceKind};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for the runtime.
#[derive(Clone, Copy, Debug)]
pub struct RtConfig {
    /// Worker threads to spawn (capped at the actor count).
    pub threads: usize,
    /// Bounded capacity of each worker's cross-worker mailbox.
    pub mailbox_capacity: usize,
    /// Timer-wheel bucket width in microseconds.
    pub wheel_granularity_us: u64,
    /// Timer-wheel bucket count.
    pub wheel_slots: usize,
}

impl Default for RtConfig {
    fn default() -> RtConfig {
        RtConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            mailbox_capacity: 65_536,
            wheel_granularity_us: 200,
            wheel_slots: 1_024,
        }
    }
}

impl RtConfig {
    /// A config with an explicit worker count.
    pub fn with_threads(threads: usize) -> RtConfig {
        RtConfig {
            threads,
            ..RtConfig::default()
        }
    }
}

/// What flows through the cross-worker mailboxes.
enum Envelope {
    /// A frame already delayed-and-filtered by the sender's link model;
    /// the receiving worker holds it in its wheel until `deliver_at`.
    Frame {
        from: ProcessId,
        to: ProcessId,
        deliver_at: Time,
        bytes: Bytes,
    },
    /// Shutdown nudge so sleeping workers re-check the stop flag.
    Wake,
}

/// An entry in a worker's wheel: a delayed frame or a protocol timer.
enum Due {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        bytes: Bytes,
    },
    Timer {
        to: ProcessId,
        id: u64,
        tag: u64,
    },
}

/// The per-worker [`Backend`]: monotonic clock, seeded RNG, private
/// metrics, the timer/delay wheel, and routes to the other workers.
struct WorkerBackend {
    worker: usize,
    clock: Clock,
    rng: StdRng,
    metrics: Metrics,
    wheel: TimerWheel<Due>,
    cancelled: HashSet<u64>,
    next_timer: u64,
    links: Arc<HashMap<(u32, u32), LinkConfig>>,
    /// `ProcessId -> worker index` for every actor.
    assignment: Arc<Vec<usize>>,
    senders: Vec<SyncSender<Envelope>>,
}

impl Backend for WorkerBackend {
    fn now(&self) -> Time {
        self.clock.now()
    }

    fn send_from(&mut self, from: ProcessId, to: ProcessId, bytes: Bytes) {
        let Some(cfg) = self.links.get(&(from.0, to.0)).copied() else {
            self.metrics.count("rt.no_link_drop", 1);
            return;
        };
        if cfg.loss > 0.0 && self.rng.gen_bool(cfg.loss.min(1.0)) {
            self.metrics.count("rt.loss_drop", 1);
            return;
        }
        let jitter = if cfg.jitter.0 > 0 {
            Span::micros(self.rng.gen_range(0..=cfg.jitter.0))
        } else {
            Span::ZERO
        };
        let deliver_at = self.clock.now() + cfg.latency + jitter;
        self.metrics.count("rt.sent", 1);
        let dest = self.assignment.get(to.0 as usize).copied();
        if dest == Some(self.worker) {
            self.wheel
                .insert(deliver_at, Due::Deliver { from, to, bytes });
        } else if let Some(w) = dest {
            match self.senders[w].try_send(Envelope::Frame {
                from,
                to,
                deliver_at,
                bytes,
            }) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    self.metrics.count("rt.mailbox_full_drop", 1);
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.metrics.count("rt.disconnected_drop", 1);
                }
            }
        } else {
            self.metrics.count("rt.no_link_drop", 1);
        }
    }

    fn set_timer(&mut self, me: ProcessId, delay: Span, tag: u64) -> TimerId {
        // Worker-tagged ids stay unique across the runtime even though
        // each worker mints its own.
        let id = ((self.worker as u64) << 48) | self.next_timer;
        self.next_timer += 1;
        let at = self.clock.now() + delay;
        self.wheel.insert(at, Due::Timer { to: me, id, tag });
        TimerId::from_raw(id)
    }

    fn cancel_timer(&mut self, _me: ProcessId, timer: TimerId) {
        self.cancelled.insert(timer.raw());
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn count(&mut self, name: &str, delta: u64) {
        self.metrics.count(name, delta);
    }

    fn record(&mut self, name: &str, value: f64) {
        let now = self.clock.now();
        self.metrics.record(name, now, value);
    }

    fn observe(&mut self, name: &str, value: u64) {
        self.metrics.observe(name, value);
    }

    // Structured tracing is a simulator feature; the runtime keeps the
    // default no-op `tracing_enabled`/`trace`/`span_mark`.
    fn trace(&mut self, _kind: TraceKind) {}

    fn span_mark(&mut self, _pid: u32, _key: u64, _phase: SpanPhase) {}
}

/// How long a worker sleeps when it has nothing due (it still wakes early
/// for any mailbox arrival); bounds shutdown latency.
const MAX_IDLE: Duration = Duration::from_millis(2);

struct Worker {
    backend: WorkerBackend,
    actors: HashMap<u32, Box<dyn Process>>,
    rx: Receiver<Envelope>,
    stop: Arc<AtomicBool>,
}

impl Worker {
    fn enqueue(&mut self, env: Envelope) {
        if let Envelope::Frame {
            from,
            to,
            deliver_at,
            bytes,
        } = env
        {
            self.backend
                .wheel
                .insert(deliver_at, Due::Deliver { from, to, bytes });
        }
    }

    fn dispatch(&mut self, entry: Due) {
        match entry {
            Due::Deliver { from, to, bytes } => {
                let Some(proc) = self.actors.get_mut(&to.0) else {
                    self.backend.metrics.count("rt.misrouted_drop", 1);
                    return;
                };
                self.backend.metrics.count("rt.delivered", 1);
                let mut ctx = Context::new(&mut self.backend, to);
                proc.on_message(&mut ctx, from, &bytes);
            }
            Due::Timer { to, id, tag } => {
                if self.backend.cancelled.remove(&id) {
                    return;
                }
                let Some(proc) = self.actors.get_mut(&to.0) else {
                    return;
                };
                let mut ctx = Context::new(&mut self.backend, to);
                proc.on_timer(&mut ctx, tag);
            }
        }
    }

    fn run(mut self) -> Metrics {
        // Start every local actor before touching the mailbox, mirroring
        // the simulator's time-zero Start events.
        let mut pids: Vec<u32> = self.actors.keys().copied().collect();
        pids.sort_unstable();
        for pid in pids {
            let mut proc = self.actors.remove(&pid).expect("actor present");
            let mut ctx = Context::new(&mut self.backend, ProcessId(pid));
            proc.on_start(&mut ctx);
            self.actors.insert(pid, proc);
        }
        let mut due: Vec<(Time, Due)> = Vec::new();
        loop {
            loop {
                match self.rx.try_recv() {
                    Ok(env) => self.enqueue(env),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => break,
                }
            }
            let now = self.backend.clock.now();
            self.backend.wheel.advance(now, &mut due);
            if !due.is_empty() {
                due.sort_by_key(|(at, _)| *at);
                for (_, entry) in due.drain(..) {
                    self.dispatch(entry);
                }
            }
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let timeout = match self.backend.wheel.next_due() {
                Some(t) => {
                    let wait = t.0.saturating_sub(self.backend.clock.now().0);
                    Duration::from_micros(wait).min(MAX_IDLE)
                }
                None => MAX_IDLE,
            };
            match self.rx.recv_timeout(timeout) {
                Ok(env) => self.enqueue(env),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        self.backend
            .metrics
            .count("rt.pending_at_exit", self.backend.wheel.len() as u64);
        self.backend.metrics.count("rt.worker_clean_exit", 1);
        self.backend.metrics
    }
}

/// The finished run: merged metrics and wall-clock accounting.
#[derive(Debug)]
pub struct RtRun {
    /// Metrics merged across all workers (series re-sorted by time).
    pub metrics: Metrics,
    /// Wall-clock time from runtime start to the last worker joining.
    pub elapsed: Span,
    /// Worker threads that ran.
    pub threads: usize,
}

/// A running real-clock substrate hosting one deployment's actors.
pub struct Runtime {
    handles: Vec<std::thread::JoinHandle<Metrics>>,
    senders: Vec<SyncSender<Envelope>>,
    stop: Arc<AtomicBool>,
    epoch: Instant,
    threads: usize,
}

impl Runtime {
    /// Spawns workers hosting the fabric's actors. The actors start
    /// running (and their `on_start` timers begin counting) immediately.
    pub fn from_fabric(fabric: Fabric, cfg: RtConfig) -> Runtime {
        let n = fabric.actors.len().max(1);
        let threads = cfg.threads.clamp(1, n);
        let assignment: Arc<Vec<usize>> =
            Arc::new((0..fabric.actors.len()).map(|i| i % threads).collect());
        let links: Arc<HashMap<(u32, u32), LinkConfig>> =
            Arc::new(fabric.links.into_iter().collect());
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let mut senders = Vec::with_capacity(threads);
        let mut receivers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = sync_channel::<Envelope>(cfg.mailbox_capacity.max(1));
            senders.push(tx);
            receivers.push(rx);
        }
        let mut crews: Vec<HashMap<u32, Box<dyn Process>>> =
            (0..threads).map(|_| HashMap::new()).collect();
        for (pid, (_name, proc)) in fabric.actors.into_iter().enumerate() {
            crews[pid % threads].insert(pid as u32, proc);
        }
        let mut handles = Vec::with_capacity(threads);
        for (w, (actors, rx)) in crews.into_iter().zip(receivers).enumerate() {
            let worker = Worker {
                backend: WorkerBackend {
                    worker: w,
                    clock: Clock::Monotonic { start: epoch },
                    rng: StdRng::seed_from_u64(
                        fabric.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ),
                    metrics: Metrics::new(),
                    wheel: TimerWheel::new(cfg.wheel_granularity_us, cfg.wheel_slots),
                    cancelled: HashSet::new(),
                    next_timer: 0,
                    links: Arc::clone(&links),
                    assignment: Arc::clone(&assignment),
                    senders: senders.clone(),
                },
                actors,
                rx,
                stop: Arc::clone(&stop),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rt-worker-{w}"))
                    .spawn(move || worker.run())
                    .expect("spawn rt worker"),
            );
        }
        Runtime {
            handles,
            senders,
            stop,
            epoch,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Lets the system run for `span` of wall-clock time, then shuts it
    /// down: stop flag, wake nudges, join all workers, merge metrics.
    pub fn run_for(self, span: Span) -> RtRun {
        std::thread::sleep(Duration::from_micros(span.0));
        self.shutdown()
    }

    /// Stops and joins all workers, merging their metrics.
    pub fn shutdown(self) -> RtRun {
        self.stop.store(true, Ordering::Release);
        for tx in &self.senders {
            let _ = tx.try_send(Envelope::Wake);
        }
        drop(self.senders);
        let mut metrics = Metrics::new();
        for handle in self.handles {
            let worker_metrics = handle.join().expect("rt worker panicked");
            metrics.merge(&worker_metrics);
        }
        metrics.sort_series();
        RtRun {
            metrics,
            elapsed: Span::micros(self.epoch.elapsed().as_micros() as u64),
            threads: self.threads,
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.threads)
            .field("elapsed", &self.epoch.elapsed())
            .finish()
    }
}
