//! The attack vocabulary shared by tests, examples and the red-team
//! experiment (Table T3): each scenario is a named set of scheduled
//! attacks applied to a deployment.

use crate::deployment::Deployment;
use spire_prime::ByzBehavior;
use spire_sim::{Span, Time};

/// A single attack action with its schedule.
#[derive(Clone, Debug)]
pub enum Attack {
    /// Replica `id` starts misbehaving at `at`.
    Compromise {
        /// Target replica.
        id: u32,
        /// Behaviour after compromise.
        behavior: ByzBehavior,
        /// When the intrusion succeeds.
        at: Time,
    },
    /// Replica `id` crashes at `at` (process down until recovered).
    KillReplica {
        /// Target replica.
        id: u32,
        /// When.
        at: Time,
    },
    /// Denial of service against all WAN links of a site.
    DosSite {
        /// Site index.
        site: usize,
        /// Start.
        from: Time,
        /// End.
        until: Time,
        /// Induced loss probability on the attacked links.
        loss: f64,
    },
    /// Complete disconnection of a site.
    DisconnectSite {
        /// Site index.
        site: usize,
        /// Start.
        from: Time,
        /// End.
        until: Time,
    },
    /// Proactive recovery of a replica (defensive action, same machinery).
    Recover {
        /// Target replica.
        id: u32,
        /// When.
        at: Time,
    },
    /// Wire faults on a site's WAN links: bit-flips, duplicates and
    /// jitter-induced reordering (noise, not a protocol-level fault).
    WireFaults {
        /// Site index.
        site: usize,
        /// Start.
        from: Time,
        /// End.
        until: Time,
        /// Per-frame bit-flip probability.
        corrupt: f64,
        /// Per-frame duplication probability.
        dup: f64,
        /// Extra per-frame jitter (reorders the duplicated pairs too).
        jitter: Span,
    },
}

impl Attack {
    /// Applies (schedules) this attack on a deployment.
    pub fn apply(&self, deployment: &mut Deployment) {
        match self {
            Attack::Compromise { id, behavior, at } => {
                deployment.schedule_compromise(*id, *behavior, *at);
            }
            Attack::KillReplica { id, at } => deployment.schedule_kill(*id, *at),
            Attack::DosSite {
                site,
                from,
                until,
                loss,
            } => deployment.schedule_site_dos(*site, *from, *until, *loss),
            Attack::DisconnectSite { site, from, until } => {
                deployment.schedule_site_disconnect(*site, *from, *until)
            }
            Attack::Recover { id, at } => deployment.schedule_recovery(*id, *at),
            Attack::WireFaults {
                site,
                from,
                until,
                corrupt,
                dup,
                jitter,
            } => {
                deployment.schedule_site_wire_faults(*site, *from, *until, *corrupt, *dup, *jitter)
            }
        }
    }
}

/// A named attack scenario (one row of the red-team table).
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name.
    pub name: String,
    /// Attacks applied.
    pub attacks: Vec<Attack>,
    /// Intended run length.
    pub duration: Span,
}

impl Scenario {
    /// The red-team suite reproduced from the paper's threat model: up to
    /// `f` intrusions with several behaviours, network attacks on a control
    /// center, a site loss, proactive recovery, and combinations.
    pub fn red_team_suite() -> Vec<Scenario> {
        let s = |secs: u64| Time(secs * 1_000_000);
        vec![
            Scenario {
                name: "no attack".into(),
                attacks: vec![],
                duration: Span::secs(60),
            },
            Scenario {
                name: "compromised replica (divergent execution)".into(),
                attacks: vec![Attack::Compromise {
                    id: 2,
                    behavior: ByzBehavior::DivergentExec,
                    at: s(5),
                }],
                duration: Span::secs(60),
            },
            Scenario {
                name: "compromised leader (delay attack)".into(),
                attacks: vec![Attack::Compromise {
                    id: 0,
                    behavior: ByzBehavior::LeaderDelay(Span::millis(800)),
                    at: s(5),
                }],
                duration: Span::secs(60),
            },
            Scenario {
                name: "compromised leader (equivocation)".into(),
                attacks: vec![Attack::Compromise {
                    id: 0,
                    behavior: ByzBehavior::Equivocate,
                    at: s(5),
                }],
                duration: Span::secs(60),
            },
            Scenario {
                name: "replica crash".into(),
                attacks: vec![Attack::KillReplica { id: 3, at: s(10) }],
                duration: Span::secs(60),
            },
            Scenario {
                name: "DoS on primary control center".into(),
                attacks: vec![Attack::DosSite {
                    site: 0,
                    from: s(15),
                    until: s(45),
                    loss: 0.6,
                }],
                duration: Span::secs(60),
            },
            Scenario {
                name: "primary control center disconnected".into(),
                attacks: vec![Attack::DisconnectSite {
                    site: 0,
                    from: s(15),
                    until: s(45),
                }],
                duration: Span::secs(60),
            },
            Scenario {
                name: "intrusion + site disconnection (combined)".into(),
                attacks: vec![
                    Attack::Compromise {
                        id: 4,
                        behavior: ByzBehavior::AckWithhold,
                        at: s(5),
                    },
                    Attack::DisconnectSite {
                        site: 1,
                        from: s(20),
                        until: s(40),
                    },
                ],
                duration: Span::secs(60),
            },
            Scenario {
                name: "intrusion during proactive recovery".into(),
                attacks: vec![
                    Attack::Recover { id: 5, at: s(10) },
                    Attack::Compromise {
                        id: 1,
                        behavior: ByzBehavior::Mute,
                        at: s(10),
                    },
                ],
                duration: Span::secs(60),
            },
        ]
    }

    /// Applies all attacks to the deployment and installs the online
    /// invariant checker (1 s cadence) for the scenario's duration — every
    /// scenario run is safety-checked *while* it executes.
    pub fn apply(&self, deployment: &mut Deployment) {
        for attack in &self.attacks {
            attack.apply(deployment);
        }
        deployment.install_invariant_checker(Span::secs(1), Time(self.duration.0));
    }

    /// A copy with every schedule and the duration scaled by
    /// `num / den` — used to run the suite on the real-clock substrate
    /// where a simulated minute costs a wall-clock minute.
    pub fn scaled(&self, num: u64, den: u64) -> Scenario {
        let st = |t: Time| Time(t.0 * num / den);
        let attacks = self
            .attacks
            .iter()
            .map(|a| match a.clone() {
                Attack::Compromise { id, behavior, at } => Attack::Compromise {
                    id,
                    behavior,
                    at: st(at),
                },
                Attack::KillReplica { id, at } => Attack::KillReplica { id, at: st(at) },
                Attack::Recover { id, at } => Attack::Recover { id, at: st(at) },
                Attack::DosSite {
                    site,
                    from,
                    until,
                    loss,
                } => Attack::DosSite {
                    site,
                    from: st(from),
                    until: st(until),
                    loss,
                },
                Attack::DisconnectSite { site, from, until } => Attack::DisconnectSite {
                    site,
                    from: st(from),
                    until: st(until),
                },
                Attack::WireFaults {
                    site,
                    from,
                    until,
                    corrupt,
                    dup,
                    jitter,
                } => Attack::WireFaults {
                    site,
                    from: st(from),
                    until: st(until),
                    corrupt,
                    dup,
                    jitter,
                },
            })
            .collect();
        Scenario {
            name: self.name.clone(),
            attacks,
            duration: Span(self.duration.0 * num / den),
        }
    }
}
