//! Deployment configuration analysis: how many replicas are needed, and how
//! they are placed across control centers and data centers, to tolerate
//! `f` intrusions, `k` simultaneous proactive recoveries, and (optionally)
//! the disconnection of an entire site — the paper's resource-requirement
//! analysis (Table T1 in EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

/// The kind of a site hosting replicas.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SiteKind {
    /// A control center: connected to both the internal (replica) and the
    /// external (field) network.
    ControlCenter,
    /// A data center: replicas participate in ordering but no field
    /// equipment connects here directly.
    DataCenter,
}

/// A site in the deployment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Site {
    /// Display name (e.g. "CC1").
    pub name: String,
    /// Kind.
    pub kind: SiteKind,
    /// Number of replicas hosted.
    pub replicas: u32,
}

/// Replication parameters plus the site layout.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpireConfig {
    /// Tolerated intrusions.
    pub f: u32,
    /// Tolerated simultaneous recoveries.
    pub k: u32,
    /// Sites hosting replicas, in order (replica ids are assigned site by
    /// site).
    pub sites: Vec<Site>,
}

/// Why a configuration is invalid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// Fewer than `3f + 2k + 1` replicas in total.
    TooFewReplicas,
    /// Losing the largest site leaves fewer than `2f + k + 1` replicas, so
    /// a site disconnection stalls the system (only reported when site
    /// tolerance is requested).
    NotSiteTolerant,
    /// No control center site present.
    NoControlCenter,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::TooFewReplicas => write!(f, "fewer than 3f+2k+1 replicas"),
            ConfigError::NotSiteTolerant => {
                write!(f, "losing the largest site breaks the ordering quorum")
            }
            ConfigError::NoControlCenter => write!(f, "no control center site"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Replicas required to tolerate `f` intrusions and `k` simultaneous
/// recoveries (Prime with proactive recovery): `3f + 2k + 1`.
pub fn required_replicas(f: u32, k: u32) -> u32 {
    3 * f + 2 * k + 1
}

/// The ordering quorum: `2f + k + 1`.
pub fn ordering_quorum(f: u32, k: u32) -> u32 {
    2 * f + k + 1
}

impl SpireConfig {
    /// Total replicas.
    pub fn total_replicas(&self) -> u32 {
        self.sites.iter().map(|s| s.replicas).sum()
    }

    /// Validates the basic resilience inequality and control-center
    /// presence; with `site_tolerant`, additionally requires that losing
    /// any single site leaves an ordering quorum.
    pub fn validate(&self, site_tolerant: bool) -> Result<(), ConfigError> {
        if self.total_replicas() < required_replicas(self.f, self.k) {
            return Err(ConfigError::TooFewReplicas);
        }
        if !self
            .sites
            .iter()
            .any(|s| s.kind == SiteKind::ControlCenter && s.replicas > 0)
        {
            return Err(ConfigError::NoControlCenter);
        }
        if site_tolerant {
            let largest = self.sites.iter().map(|s| s.replicas).max().unwrap_or(0);
            if self.total_replicas() - largest < ordering_quorum(self.f, self.k) {
                return Err(ConfigError::NotSiteTolerant);
            }
        }
        Ok(())
    }

    /// The paper's benchmark configuration: `3f + 2k + 1` replicas over two
    /// control centers and `data_centers` data centers, spreading replicas
    /// as evenly as possible with control centers favored.
    pub fn spread(f: u32, k: u32, data_centers: u32) -> SpireConfig {
        let n = required_replicas(f, k);
        let sites_total = 2 + data_centers;
        let base = n / sites_total;
        let extra = n % sites_total;
        let mut sites = Vec::new();
        for i in 0..sites_total {
            let replicas = base + if i < extra { 1 } else { 0 };
            let (name, kind) = if i < 2 {
                (format!("CC{}", i + 1), SiteKind::ControlCenter)
            } else {
                (format!("DC{}", i - 1), SiteKind::DataCenter)
            };
            sites.push(Site {
                name,
                kind,
                replicas,
            });
        }
        SpireConfig { f, k, sites }
    }

    /// A single-site configuration (LAN benchmark, not site-tolerant).
    pub fn single_site(f: u32, k: u32) -> SpireConfig {
        SpireConfig {
            f,
            k,
            sites: vec![Site {
                name: "CC1".to_string(),
                kind: SiteKind::ControlCenter,
                replicas: required_replicas(f, k),
            }],
        }
    }

    /// The smallest number of total replicas that tolerates one site
    /// disconnection when spread over `sites_total` sites: the constraint
    /// is `n - ceil(n / sites) >= 2f + k + 1`.
    pub fn min_replicas_site_tolerant(f: u32, k: u32, sites_total: u32) -> Option<u32> {
        if sites_total < 2 {
            return None;
        }
        let need = required_replicas(f, k);
        for n in need..=(need + 4 * sites_total + 8) {
            let largest = n.div_ceil(sites_total);
            if n - largest >= ordering_quorum(f, k) {
                return Some(n);
            }
        }
        None
    }

    /// Replica ids hosted at site `index` (ids assigned site by site).
    pub fn replicas_of_site(&self, index: usize) -> std::ops::Range<u32> {
        let start: u32 = self.sites[..index].iter().map(|s| s.replicas).sum();
        start..(start + self.sites[index].replicas)
    }

    /// The site index hosting replica `id`.
    pub fn site_of_replica(&self, id: u32) -> usize {
        let mut acc = 0;
        for (i, site) in self.sites.iter().enumerate() {
            acc += site.replicas;
            if id < acc {
                return i;
            }
        }
        self.sites.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_matches_paper_formula() {
        assert_eq!(required_replicas(1, 0), 4); // classic BFT
        assert_eq!(required_replicas(1, 1), 6); // the paper's main config
        assert_eq!(required_replicas(2, 1), 9);
        assert_eq!(required_replicas(3, 2), 14);
    }

    #[test]
    fn paper_configuration_6_over_4_sites_is_site_tolerant() {
        // 6 replicas as 2+2+1+1 over 2 CCs + 2 DCs: tolerates f=1, k=1 and
        // any single site disconnection (6 - 2 = 4 = 2f+k+1).
        let cfg = SpireConfig::spread(1, 1, 2);
        assert_eq!(cfg.total_replicas(), 6);
        assert_eq!(
            cfg.sites.iter().map(|s| s.replicas).collect::<Vec<_>>(),
            vec![2, 2, 1, 1]
        );
        assert!(cfg.validate(true).is_ok());
    }

    #[test]
    fn two_sites_cannot_be_site_tolerant_at_minimum_size() {
        let cfg = SpireConfig::spread(1, 1, 0); // 3 + 3 over two CCs
        assert!(cfg.validate(false).is_ok());
        assert_eq!(cfg.validate(true), Err(ConfigError::NotSiteTolerant));
    }

    #[test]
    fn single_site_valid_but_not_site_tolerant() {
        let cfg = SpireConfig::single_site(1, 1);
        assert!(cfg.validate(false).is_ok());
        assert!(cfg.validate(true).is_err());
    }

    #[test]
    fn too_few_replicas_rejected() {
        let mut cfg = SpireConfig::single_site(1, 1);
        cfg.sites[0].replicas = 5;
        assert_eq!(cfg.validate(false), Err(ConfigError::TooFewReplicas));
    }

    #[test]
    fn no_control_center_rejected() {
        let mut cfg = SpireConfig::spread(1, 0, 2);
        for s in &mut cfg.sites {
            s.kind = SiteKind::DataCenter;
        }
        assert_eq!(cfg.validate(false), Err(ConfigError::NoControlCenter));
    }

    #[test]
    fn min_replicas_site_tolerant_table() {
        // f=1, k=1 over 4 sites: 6 suffices (2+2+1+1).
        assert_eq!(SpireConfig::min_replicas_site_tolerant(1, 1, 4), Some(6));
        // Over 2 sites: need n - ceil(n/2) >= 4 -> n >= 8.
        assert_eq!(SpireConfig::min_replicas_site_tolerant(1, 1, 2), Some(8));
        // One site can never tolerate its own loss.
        assert_eq!(SpireConfig::min_replicas_site_tolerant(1, 1, 1), None);
    }

    #[test]
    fn replica_site_assignment() {
        let cfg = SpireConfig::spread(1, 1, 2); // 2+2+1+1
        assert_eq!(cfg.replicas_of_site(0), 0..2);
        assert_eq!(cfg.replicas_of_site(1), 2..4);
        assert_eq!(cfg.replicas_of_site(2), 4..5);
        assert_eq!(cfg.replicas_of_site(3), 5..6);
        assert_eq!(cfg.site_of_replica(0), 0);
        assert_eq!(cfg.site_of_replica(3), 1);
        assert_eq!(cfg.site_of_replica(5), 3);
    }
}
