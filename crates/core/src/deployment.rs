//! Builds a complete Spire system inside the simulator: two Spines
//! overlays (internal replica network, external field network), Prime
//! replicas running the SCADA master, RTU proxies + emulated devices at
//! substations, and HMIs — the full architecture of the paper.
//!
//! ```text
//!        internal overlay (per-site daemons, full WAN mesh)
//!   CC1 ══ CC2 ══ DC1 ══ DC2          replicas attach to their site daemon
//!
//!        external overlay
//!   SUB1 ─ CC1/CC2 (dual-homed) ─ DC1/DC2     proxies + HMIs attach here
//! ```

use crate::config::{SiteKind, SpireConfig};
use crate::health::{prometheus_text, HealthConfig, HealthMonitor};
use crate::invariant::InvariantChecker;
use crate::report::Report;
use spire_crypto::keys::Signer;
use spire_crypto::{KeyMaterial, KeyStore, NodeId};
use spire_prime::client::ClientRouting;
use spire_prime::{
    ByzBehavior, ClientId, Inspection, PrimeConfig, ProtocolMode, Replica, ReplicaId, SpinesNet,
};
use spire_scada::{Hmi, Rtu, RtuProxy, ScadaDirectory, ScadaMaster, WorkloadConfig};
use spire_sim::{ControlOp, LinkConfig, Metrics, ProcessId, Span, SpawnFn, Time, TraceKind, World};
use spire_spines::{
    DaemonBehavior, DaemonConfig, Dissemination, OverlayAddr, OverlayId, OverlayNetwork,
    SpinesPort, Topology,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Crypto id bases for the different roles.
pub mod key_base {
    /// Internal overlay daemons.
    pub const INTERNAL_DAEMON: u32 = 0;
    /// External overlay daemons.
    pub const EXTERNAL_DAEMON: u32 = 100;
    /// Prime replicas.
    pub const REPLICA: u32 = 1000;
    /// Prime clients (proxies, HMIs).
    pub const CLIENT: u32 = 2000;
}

const REPLICA_PORT_BASE: u16 = 100;
const PROXY_PORT: u16 = 40;
const HMI_PORT_BASE: u16 = 200;

/// Wide-area latency model (one-way, milliseconds) loosely following the
/// paper's emulated US East Coast deployment.
#[derive(Clone, Copy, Debug)]
pub struct WanModel {
    /// Control center <-> control center.
    pub cc_cc_ms: u64,
    /// Control center <-> data center.
    pub cc_dc_ms: u64,
    /// Data center <-> data center.
    pub dc_dc_ms: u64,
    /// Substation <-> control center.
    pub sub_cc_ms: u64,
}

impl Default for WanModel {
    fn default() -> Self {
        WanModel {
            cc_cc_ms: 4,
            cc_dc_ms: 10,
            dc_dc_ms: 15,
            sub_cc_ms: 3,
        }
    }
}

impl WanModel {
    fn site_latency(&self, a: SiteKind, b: SiteKind) -> u64 {
        match (a, b) {
            (SiteKind::ControlCenter, SiteKind::ControlCenter) => self.cc_cc_ms,
            (SiteKind::DataCenter, SiteKind::DataCenter) => self.dc_dc_ms,
            _ => self.cc_dc_ms,
        }
    }
}

/// Full deployment parameters.
#[derive(Clone, Debug)]
pub struct DeploymentConfig {
    /// Replication and site layout.
    pub spire: SpireConfig,
    /// Workload (RTUs, rates, HMIs).
    pub workload: WorkloadConfig,
    /// WAN latencies.
    pub wan: WanModel,
    /// Prime protocol mode (Prime vs PBFT-like baseline).
    pub mode: ProtocolMode,
    /// Use mock signatures (fast macro-experiments; see `spire-crypto`).
    pub mock_sigs: bool,
    /// Amortize replica vote signatures with Merkle batch signing (one
    /// root signature per flush window instead of one per
    /// PO-Ack/Prepare/Commit/Reply).
    pub batch_signing: bool,
    /// How long a replica may hold queued votes before signing their
    /// Merkle root (longer windows amortize better, at up to this much
    /// extra latency per protocol hop).
    pub batch_interval: Span,
    /// Per-replica Byzantine behaviours (compromises present from start).
    pub byz: BTreeMap<u32, ByzBehavior>,
    /// Substations connect to both control centers (the paper's design).
    /// Disable for the single-homing ablation: a disconnected primary CC
    /// then cuts all field traffic.
    pub dual_homed_substations: bool,
    /// Enable the structured tracing subsystem (flight recorder + causal
    /// spans). Defaults to the `SPIRE_TRACE` environment variable so any
    /// scenario binary can be traced without a code change.
    pub trace: bool,
    /// Per-link HMAC session authentication between replicas: frames are
    /// sealed with a pairwise key, letting receivers skip the per-hop
    /// signature verification the MAC already covers.
    pub session_macs: bool,
    /// Ordering pipelining: a wide proposal window, eager (event-driven)
    /// pre-prepares, cumulative multi-votes, and per-link frame batching.
    /// Off reverts to strictly timer-paced, one-message-per-frame
    /// operation (the pre-PR8 wire behaviour) for A/B comparisons.
    pub pipelining: bool,
    /// Override for every WAN link's bandwidth (both overlays). `None`
    /// keeps [`LinkConfig::wan`]'s default; the shard-scaling experiments
    /// constrain this so a single group's aggregate traffic saturates
    /// while a partitioned deployment's per-group share does not.
    pub wan_bandwidth_bps: Option<u64>,
    /// Override for every WAN link's router buffer depth in
    /// milliseconds of queueing delay. `None` keeps the 200 ms default.
    /// Capped-bandwidth studies deepen this so a saturated group
    /// degrades into queueing latency instead of tail-dropping the
    /// ordering frames it needs to make progress at all.
    pub wan_max_queue_ms: Option<u64>,
    /// Modeled per-message CPU time on each replica, in microseconds
    /// (`None` = infinitely fast hosts, the default). Spire's real-world
    /// throughput ceiling is the replicas' signature/ordering work, not
    /// the wire; the shard-scaling experiments set this so one group
    /// saturates at a measurable confirmed rate while the queueing
    /// stays graceful (latency, not loss — see
    /// [`spire_sim::World::set_service_time`]).
    pub replica_service_us: Option<u64>,
    /// Simulation seed.
    pub seed: u64,
}

impl DeploymentConfig {
    /// The paper's standard wide-area configuration: f=1, k=1, 6 replicas
    /// over 2 control centers + 2 data centers.
    pub fn wide_area(seed: u64) -> DeploymentConfig {
        DeploymentConfig {
            spire: SpireConfig::spread(1, 1, 2),
            workload: WorkloadConfig::default(),
            wan: WanModel::default(),
            mode: ProtocolMode::Prime,
            mock_sigs: true,
            batch_signing: true,
            batch_interval: Span::millis(2),
            byz: BTreeMap::new(),
            dual_homed_substations: true,
            trace: std::env::var_os("SPIRE_TRACE").is_some(),
            session_macs: true,
            // `SPIRE_PIPELINING=0` reverts any scenario binary to the
            // timer-paced, one-message-per-frame wire behaviour for A/B
            // runs without a code change.
            pipelining: std::env::var("SPIRE_PIPELINING").map_or(true, |v| v != "0"),
            wan_bandwidth_bps: None,
            wan_max_queue_ms: None,
            replica_service_us: None,
            seed,
        }
    }

    /// Single-site LAN configuration.
    pub fn lan(seed: u64) -> DeploymentConfig {
        DeploymentConfig {
            spire: SpireConfig::single_site(1, 1),
            ..DeploymentConfig::wide_area(seed)
        }
    }
}

/// Builds the replicated application a group's replicas run. The default
/// is a plain [`ScadaMaster`] over the group's directory; sharded
/// deployments substitute a master carrying cross-shard participant
/// state. Recovery and compromise injection rebuild replicas through the
/// same factory, so the substituted application survives restarts.
pub type AppFactory =
    Arc<dyn Fn(&ScadaDirectory) -> Box<dyn spire_prime::Application> + Send + Sync>;

/// Everything needed to construct a fresh replica process (used by
/// proactive recovery and compromise injection).
pub struct ReplicaBuilder {
    prime: PrimeConfig,
    keystore: Arc<KeyStore>,
    material: KeyMaterial,
    directory: ScadaDirectory,
    inspection: Inspection,
    nets: Vec<SpinesNet>,
    mock_sigs: bool,
    session_macs: bool,
    app_factory: AppFactory,
}

impl ReplicaBuilder {
    /// Builds replica `id` with the given behaviour and recovery flag.
    pub fn build(&self, id: u32, behavior: ByzBehavior, recovering: bool) -> Replica {
        if recovering {
            // A rebuilt process is a new incarnation: view/last-executed
            // legitimately rewind, so monotonicity invariants restart.
            self.inspection.update(id, |rec| {
                rec.incarnation += 1;
                rec.view = 0;
            });
        }
        // `replica_key_base` already carries the group's key offset in a
        // sharded deployment, so recovery rebuilds with the right keys.
        let signer = Signer::new(
            self.material
                .signing_key(NodeId(self.prime.replica_key_base + id)),
            self.mock_sigs,
        );
        let mut replica = Replica::new(
            self.prime.clone(),
            ReplicaId(id),
            behavior,
            Arc::clone(&self.keystore),
            signer,
            Box::new(self.nets[id as usize].clone()),
            (self.app_factory)(&self.directory),
            recovering,
        )
        .with_inspection(self.inspection.clone());
        if self.session_macs {
            // One symmetric key per replica pair, derived from the shared
            // key material exactly as both endpoints will (link_key is
            // order-independent). Recovery rebuilds replicas through this
            // same path, so rejoining replicas keep their link keys.
            let me = NodeId(self.prime.replica_key_base + id);
            let keys = (0..self.prime.n)
                .map(|peer| {
                    self.material
                        .link_key(me, NodeId(self.prime.replica_key_base + peer))
                })
                .collect();
            replica = replica.with_session_keys(keys);
        }
        replica
    }
}

/// Build-time parameters of one replication group inside a (possibly
/// sharded) deployment. [`GroupSpec::single`] reproduces the classic
/// single-group system; the sharded builder creates one spec per group
/// with disjoint key offsets and RTU partitions.
#[derive(Clone)]
pub struct GroupSpec {
    /// Crypto-id offset for every role in this group
    /// (`g * spire_shard::SHARD_KEY_STRIDE`).
    pub key_offset: u32,
    /// Process-name prefix (`""` for the single group, `"s0-"`, ... when
    /// sharded) so pid maps stay readable.
    pub label: String,
    /// Extra metric scope for the group's proxies (e.g. `"shard0"`);
    /// scoped delivery/latency series are emitted alongside the global
    /// `scada.*` ones.
    pub metric_scope: Option<String>,
    /// Global RTU ids this group owns. A proxy's Prime client id is its
    /// global RTU id; its signing key is `key_offset + CLIENT + id`.
    pub rtus: Vec<u32>,
    /// Number of HMIs (client ids `1000..`).
    pub hmis: u32,
    /// Per-replica Byzantine behaviours within this group.
    pub byz: BTreeMap<u32, ByzBehavior>,
    /// Extra `(client id, external-overlay port)` pairs registered at the
    /// group's HMI site — the cross-shard coordinator attaches here.
    pub extra_clients: Vec<(u32, u16)>,
    /// Replicated-application factory (`None` = plain SCADA master).
    pub app_factory: Option<AppFactory>,
}

impl GroupSpec {
    /// The classic single-group layout implied by `cfg`.
    pub fn single(cfg: &DeploymentConfig) -> GroupSpec {
        GroupSpec {
            key_offset: 0,
            label: String::new(),
            metric_scope: None,
            rtus: (0..cfg.workload.rtus).collect(),
            hmis: cfg.workload.hmis,
            byz: cfg.byz.clone(),
            extra_clients: Vec::new(),
            app_factory: None,
        }
    }
}

/// Everything [`build_group`] constructed for one group, kept for wiring
/// (coordinator clients), fault injection and safety checking.
pub struct GroupParts {
    /// The group's replica inspection registry.
    pub inspection: Inspection,
    /// Per-replica process ids.
    pub replica_pids: Vec<ProcessId>,
    /// Per-RTU proxy process ids (group-local order of `spec.rtus`).
    pub proxy_pids: Vec<ProcessId>,
    /// Per-RTU device process ids.
    pub device_pids: Vec<ProcessId>,
    /// HMI process ids.
    pub hmi_pids: Vec<ProcessId>,
    /// The group's internal overlay.
    pub internal: OverlayNetwork,
    /// The group's external overlay.
    pub external: OverlayNetwork,
    /// Replica construction context for recovery/compromise injection.
    pub builder: Arc<ReplicaBuilder>,
    /// The group's online safety-invariant checker.
    pub checker: Arc<InvariantChecker>,
    /// Replicas declared faulty (shared with the checker).
    pub declared_faulty: Arc<Mutex<BTreeSet<u32>>>,
    /// Site index whose external daemon hosts HMIs and extra clients.
    pub hmi_site: u16,
    /// External-overlay addresses of the group's replicas.
    pub replica_addr_external: Vec<OverlayAddr>,
    /// External-overlay address of every client id.
    pub client_addrs: BTreeMap<u32, OverlayAddr>,
    /// The group's Prime configuration (key bases already offset).
    pub prime: PrimeConfig,
}

/// A fully built Spire system.
pub struct Deployment {
    /// The simulation world (run it, inject into it).
    pub world: World,
    /// Shared replica inspection registry (safety checks).
    pub inspection: Inspection,
    /// Per-replica process ids.
    pub replica_pids: Vec<ProcessId>,
    /// Per-RTU proxy process ids.
    pub proxy_pids: Vec<ProcessId>,
    /// Per-RTU device process ids.
    pub device_pids: Vec<ProcessId>,
    /// HMI process ids.
    pub hmi_pids: Vec<ProcessId>,
    /// The internal overlay.
    pub internal: OverlayNetwork,
    /// The external overlay.
    pub external: OverlayNetwork,
    /// Replica construction context for recovery / compromise injection.
    pub builder: Arc<ReplicaBuilder>,
    /// The configuration the deployment was built from.
    pub cfg: DeploymentConfig,
    /// Online safety-invariant checker over the inspection registry.
    /// Install its periodic tick with
    /// [`Deployment::install_invariant_checker`]; on the rt substrate it
    /// runs from the control thread automatically.
    pub checker: Arc<InvariantChecker>,
    /// Replicas that have been (or are scheduled to be) compromised and
    /// are therefore exempt from safety checks. Shared with the checker.
    declared_faulty: Arc<Mutex<BTreeSet<u32>>>,
    /// Substrate-agnostic mirror of every scheduled fault: each control
    /// action is applied to the sim world *and* recorded here, so
    /// [`Deployment::into_rt`] can replay the identical plan under
    /// wall-clock time.
    control_plan: Vec<(Time, ControlOp)>,
    recovery_counter: u32,
    /// Announced proactive-recovery windows `(replica, start, end)`
    /// accumulated by the rolling scheduler. Shared with the health
    /// monitor (degraded grading) and the invariant checker (bounded
    /// catch-up), on both substrates.
    recovery_windows: Vec<(u32, Time, Time)>,
}

/// Tuning for the rolling proactive-recovery scheduler
/// ([`Deployment::schedule_rolling_recovery`]).
#[derive(Clone, Copy, Debug)]
pub struct RollingRecoveryConfig {
    /// Gap between consecutive recovery rounds.
    pub period: Span,
    /// Offset between replicas recovered within the same round.
    pub stagger: Span,
    /// Replicas restarted per round; clamped to the layout's `k` (the
    /// number of simultaneously-recovering replicas the quorums absorb).
    pub concurrent: u32,
    /// Announced per-replica window length: the replica must finish
    /// state transfer and re-join within this span of its restart. The
    /// health engine grades it `degraded` (not silent/partitioned)
    /// inside the window; the invariant checker reports
    /// `recovery-stalled` if the flag outlives it.
    pub window: Span,
}

impl Default for RollingRecoveryConfig {
    fn default() -> RollingRecoveryConfig {
        RollingRecoveryConfig {
            period: Span::secs(30),
            stagger: Span::secs(2),
            concurrent: 1,
            window: Span::secs(10),
        }
    }
}

/// Builds one replication group into `world`: its internal/external
/// overlays, Prime replicas, substations (devices + proxies) and HMIs.
/// [`Deployment::build`] calls this once with [`GroupSpec::single`]; the
/// sharded deployment calls it once per group with disjoint key offsets
/// and RTU partitions. Tracing must already be enabled on `world` when
/// `cfg.trace` is set (overlay daemons are marked here).
pub fn build_group(
    world: &mut World,
    cfg: &DeploymentConfig,
    spec: &GroupSpec,
    material: &KeyMaterial,
    keystore: &Arc<KeyStore>,
) -> GroupParts {
    {
        let inspection = Inspection::new();
        let sites = &cfg.spire.sites;
        let n_sites = sites.len() as u16;
        let n_replicas = cfg.spire.total_replicas();
        let n_rtus = spec.rtus.len() as u32;
        let n_hmis = spec.hmis;

        // Overlay hop-level link batching rides the same A/B switch as the
        // Prime pipelining knobs: off means every overlay message is framed,
        // HMAC'd and acked individually (pre-batching wire behaviour).
        let mut daemon_cfg = DaemonConfig::default();
        if !cfg.pipelining {
            daemon_cfg.batch_window = Span::ZERO;
        }

        // ---------- internal overlay: one daemon per site, full mesh ----------
        let mut internal_topology = Topology::new();
        for i in 0..n_sites {
            internal_topology.add_node(OverlayId(i));
        }
        for i in 0..n_sites {
            for j in (i + 1)..n_sites {
                let w = cfg
                    .wan
                    .site_latency(sites[i as usize].kind, sites[j as usize].kind)
                    as u32;
                internal_topology.add_edge(OverlayId(i), OverlayId(j), w.max(1));
            }
        }
        // Optional deployment-wide WAN bandwidth cap and router buffer
        // depth (scaling studies).
        let bw = cfg.wan_bandwidth_bps;
        let queue_ms = cfg.wan_max_queue_ms;
        let wan_link = move |ms: u64| {
            let mut link = match bw {
                Some(bps) => LinkConfig::wan(ms).with_bandwidth(bps),
                None => LinkConfig::wan(ms),
            };
            if let Some(q) = queue_ms {
                link = link.with_max_queue(Span::millis(q));
            }
            link
        };
        let wan_for = {
            let sites = sites.clone();
            let wan = cfg.wan;
            move |a: OverlayId, b: OverlayId| {
                let ms = wan.site_latency(sites[a.0 as usize].kind, sites[b.0 as usize].kind);
                wan_link(ms)
            }
        };
        let internal = OverlayNetwork::build(
            world,
            &internal_topology,
            daemon_cfg,
            material,
            keystore,
            spec.key_offset + key_base::INTERNAL_DAEMON,
            &wan_for,
            |_| DaemonBehavior::Honest,
        );

        // ---------- external overlay: site daemons + substation hubs ----------
        // External overlay ids: 0..n_sites mirror the sites, then one hub
        // per RTU substation.
        let mut external_topology = Topology::new();
        for i in 0..n_sites {
            external_topology.add_node(OverlayId(i));
        }
        let cc_indices: Vec<u16> = sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == SiteKind::ControlCenter)
            .map(|(i, _)| i as u16)
            .collect();
        for i in 0..n_sites {
            for j in (i + 1)..n_sites {
                let w = cfg
                    .wan
                    .site_latency(sites[i as usize].kind, sites[j as usize].kind)
                    as u32;
                external_topology.add_edge(OverlayId(i), OverlayId(j), w.max(1));
            }
        }
        for r in 0..n_rtus {
            let hub = OverlayId(n_sites + r as u16);
            external_topology.add_node(hub);
            // Substations are dual-homed to (up to) two control centers —
            // the paper's key network-design decision (ablatable).
            let homes = if cfg.dual_homed_substations { 2 } else { 1 };
            for cc in cc_indices.iter().take(homes) {
                external_topology.add_edge(hub, OverlayId(*cc), cfg.wan.sub_cc_ms as u32);
            }
        }
        let external_wan = {
            let sites = sites.clone();
            let wan = cfg.wan;
            move |a: OverlayId, b: OverlayId| {
                let lat = |id: OverlayId| -> Option<SiteKind> {
                    if id.0 < n_sites {
                        Some(sites[id.0 as usize].kind)
                    } else {
                        None
                    }
                };
                let ms = match (lat(a), lat(b)) {
                    (Some(x), Some(y)) => wan.site_latency(x, y),
                    _ => wan.sub_cc_ms,
                };
                wan_link(ms)
            }
        };
        let external = OverlayNetwork::build(
            world,
            &external_topology,
            daemon_cfg,
            material,
            keystore,
            spec.key_offset + key_base::EXTERNAL_DAEMON,
            &external_wan,
            |_| DaemonBehavior::Honest,
        );

        if cfg.trace {
            // Overlay daemons are marked so the simulator can attribute
            // per-hop forwarding latency to the Spines path.
            for node in internal_topology.nodes() {
                let pid = internal.daemon_pid(node);
                world.tracer_mut().mark_overlay(pid.0);
            }
            for node in external_topology.nodes() {
                let pid = external.daemon_pid(node);
                world.tracer_mut().mark_overlay(pid.0);
            }
        }

        // ---------- directory & addressing ----------
        let mut directory = ScadaDirectory::default();
        for &r in &spec.rtus {
            directory.rtu_proxy.insert(r, r); // proxy client id = rtu id
        }
        for h in 0..n_hmis {
            directory.hmis.push(1000 + h);
        }
        let replica_addr_internal: Vec<OverlayAddr> = (0..n_replicas)
            .map(|r| OverlayAddr {
                node: OverlayId(cfg.spire.site_of_replica(r) as u16),
                port: REPLICA_PORT_BASE + r as u16,
            })
            .collect();
        let replica_addr_external: Vec<OverlayAddr> = (0..n_replicas)
            .map(|r| OverlayAddr {
                node: OverlayId(cfg.spire.site_of_replica(r) as u16),
                port: REPLICA_PORT_BASE + r as u16,
            })
            .collect();
        let mut client_addrs: BTreeMap<u32, OverlayAddr> = BTreeMap::new();
        for (i, &r) in spec.rtus.iter().enumerate() {
            client_addrs.insert(
                r,
                OverlayAddr {
                    node: OverlayId(n_sites + i as u16),
                    port: PROXY_PORT,
                },
            );
        }
        // HMIs attach to the second control center's external daemon (the
        // first CC is the canonical DoS target in the attack experiments).
        let hmi_site = *cc_indices.get(1).or_else(|| cc_indices.first()).unwrap();
        for h in 0..n_hmis {
            client_addrs.insert(
                1000 + h,
                OverlayAddr {
                    node: OverlayId(hmi_site),
                    port: HMI_PORT_BASE + h as u16,
                },
            );
        }
        // Extra clients (the cross-shard coordinator) attach at the HMI
        // site; registered before replica nets are cloned so replies
        // route back to them.
        for &(id, port) in &spec.extra_clients {
            client_addrs.insert(
                id,
                OverlayAddr {
                    node: OverlayId(hmi_site),
                    port,
                },
            );
        }

        let mut prime = PrimeConfig::new(cfg.spire.f, cfg.spire.k);
        prime.n = n_replicas;
        prime.mode = cfg.mode;
        // SCADA loads are modest; frequent checkpoints keep proactive
        // recovery fast (state transfer instead of long replays).
        prime.checkpoint_interval = 25;
        // SCADA's 100 ms regime warrants fast crash detection.
        prime.progress_timeout = Span::secs(2);
        prime.replica_key_base = spec.key_offset + key_base::REPLICA;
        prime.client_key_base = spec.key_offset + key_base::CLIENT;
        prime.batch_sign = cfg.batch_signing;
        prime.batch_interval = cfg.batch_interval;
        if !cfg.pipelining {
            prime.proposal_window = 1;
            prime.eager_propose = false;
            prime.link_batch = false;
        }

        // ---------- replicas ----------
        let nets: Vec<SpinesNet> = (0..n_replicas)
            .map(|r| {
                let site = cfg.spire.site_of_replica(r) as u16;
                SpinesNet {
                    internal: SpinesPort::new(
                        internal.daemon_pid(OverlayId(site)),
                        replica_addr_internal[r as usize],
                    ),
                    replica_addrs: replica_addr_internal.clone(),
                    external: Some(SpinesPort::new(
                        external.daemon_pid(OverlayId(site)),
                        replica_addr_external[r as usize],
                    )),
                    client_addrs: client_addrs.clone(),
                    replica_mode: Dissemination::Flood,
                    client_mode: Dissemination::Flood,
                    reliable: true,
                }
            })
            .collect();
        let app_factory: AppFactory = spec.app_factory.clone().unwrap_or_else(|| {
            Arc::new(|dir: &ScadaDirectory| {
                Box::new(ScadaMaster::new(dir.clone())) as Box<dyn spire_prime::Application>
            })
        });
        let builder = Arc::new(ReplicaBuilder {
            prime: prime.clone(),
            keystore: Arc::clone(keystore),
            material: material.clone(),
            directory: directory.clone(),
            inspection: inspection.clone(),
            nets: nets.clone(),
            mock_sigs: cfg.mock_sigs,
            session_macs: cfg.session_macs,
            app_factory,
        });
        let label = &spec.label;
        let mut replica_pids = Vec::new();
        for r in 0..n_replicas {
            let behavior = spec.byz.get(&r).copied().unwrap_or(ByzBehavior::Honest);
            let replica = builder.build(r, behavior, false);
            let pid = world.add_process(&format!("{label}replica-{r}"), Box::new(replica));
            if let Some(us) = cfg.replica_service_us {
                world.set_service_time(pid, Span::micros(us));
            }
            let site = cfg.spire.site_of_replica(r) as u16;
            internal.wire_client(world, OverlayId(site), pid);
            external.wire_client(world, OverlayId(site), pid);
            replica_pids.push(pid);
        }

        // ---------- substations: devices + proxies ----------
        let mut device_pids = Vec::new();
        let mut proxy_pids = Vec::new();
        for (i, &r) in spec.rtus.iter().enumerate() {
            let hub = OverlayId(n_sites + i as u16);
            // Device and proxy are co-located at the substation.
            let first = world.process_count() as u32;
            let proxy_pid = ProcessId(first + 1);
            let device = Rtu::new(
                r,
                proxy_pid,
                cfg.workload.update_interval,
                cfg.workload.process,
            );
            let device_pid = world.add_process(&format!("{label}rtu-{r}"), Box::new(device));
            let signer = Signer::new(
                material.signing_key(NodeId(prime.client_key_base + r)),
                cfg.mock_sigs,
            );
            let mut proxy = RtuProxy::new(
                prime.clone(),
                r,
                ClientId(r),
                signer,
                ClientRouting::Spines {
                    port: SpinesPort::new(external.daemon_pid(hub), client_addrs[&r]),
                    addrs: replica_addr_external.clone(),
                    mode: Dissemination::Flood,
                },
                device_pid,
            );
            if let Some(scope) = &spec.metric_scope {
                proxy = proxy.with_metric_scope(scope);
            }
            let got_proxy = world.add_process(&format!("{label}proxy-{r}"), Box::new(proxy));
            assert_eq!(got_proxy, proxy_pid);
            world.add_link(device_pid, proxy_pid, LinkConfig::local());
            external.wire_client(world, hub, proxy_pid);
            device_pids.push(device_pid);
            proxy_pids.push(proxy_pid);
        }

        // ---------- HMIs ----------
        let mut hmi_pids = Vec::new();
        for h in 0..n_hmis {
            let client = 1000 + h;
            let signer = Signer::new(
                material.signing_key(NodeId(prime.client_key_base + client)),
                cfg.mock_sigs,
            );
            let hmi = Hmi::new(
                prime.clone(),
                ClientId(client),
                signer,
                ClientRouting::Spines {
                    port: SpinesPort::new(
                        external.daemon_pid(OverlayId(hmi_site)),
                        client_addrs[&client],
                    ),
                    addrs: replica_addr_external.clone(),
                    mode: Dissemination::Flood,
                },
                spec.rtus.clone(),
                cfg.workload.command_interval,
                0,
            )
            .with_polling(cfg.workload.poll_interval);
            let pid = world.add_process(&format!("{label}hmi-{h}"), Box::new(hmi));
            external.wire_client(world, OverlayId(hmi_site), pid);
            hmi_pids.push(pid);
        }

        let declared_faulty: Arc<Mutex<BTreeSet<u32>>> = Arc::new(Mutex::new(
            spec.byz
                .iter()
                .filter(|(_, b)| b.is_byzantine())
                .map(|(id, _)| *id)
                .collect(),
        ));
        let checker = Arc::new(InvariantChecker::new(
            inspection.clone(),
            Arc::clone(&declared_faulty),
            n_replicas,
        ));
        GroupParts {
            inspection,
            replica_pids,
            proxy_pids,
            device_pids,
            hmi_pids,
            internal,
            external,
            builder,
            checker,
            declared_faulty,
            hmi_site,
            replica_addr_external,
            client_addrs,
            prime,
        }
    }
}

impl Deployment {
    /// Builds the full system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SpireConfig::validate`] (non
    /// site-tolerant layouts are allowed; they are part of the evaluation).
    pub fn build(cfg: DeploymentConfig) -> Deployment {
        cfg.spire.validate(false).expect("invalid spire config");
        let mut world = World::new(cfg.seed);
        let material = KeyMaterial::new([0x55u8; 32]);
        let keystore = Arc::new(KeyStore::for_nodes(&material, 4096));
        if cfg.trace {
            world.enable_tracing(65_536);
        }
        let spec = GroupSpec::single(&cfg);
        let parts = build_group(&mut world, &cfg, &spec, &material, &keystore);
        Deployment {
            world,
            inspection: parts.inspection,
            replica_pids: parts.replica_pids,
            proxy_pids: parts.proxy_pids,
            device_pids: parts.device_pids,
            hmi_pids: parts.hmi_pids,
            internal: parts.internal,
            external: parts.external,
            builder: parts.builder,
            cfg,
            checker: parts.checker,
            declared_faulty: parts.declared_faulty,
            control_plan: Vec::new(),
            recovery_counter: 0,
            recovery_windows: Vec::new(),
        }
    }

    /// Runs the simulation for `span`.
    pub fn run_for(&mut self, span: Span) {
        self.world.run_for(span);
    }

    /// Builds the evaluation report from collected metrics.
    pub fn report(&self) -> Report {
        Report::from_deployment(self)
    }

    /// Writes the run's trace as a Chrome `trace_event` JSON array
    /// (load it in `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn export_chrome_trace(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.world.chrome_trace())
    }

    /// Writes the flight-recorder events as JSON Lines (one event per
    /// line), suitable for `jq`-style post-processing.
    pub fn export_events_jsonl(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.world.events_jsonl())
    }

    /// Replica ids that are honest under the built configuration and the
    /// faults scheduled so far (compromised replicas stay excluded even
    /// after a later recovery — their published history is tainted).
    pub fn correct_replicas(&self) -> Vec<u32> {
        let faulty = self.declared_faulty.lock().expect("poisoned");
        (0..self.cfg.spire.total_replicas())
            .filter(|r| !faulty.contains(r))
            .collect()
    }

    /// Schedules a batch of substrate-agnostic control ops at `at`: they
    /// are applied to the sim world when virtual time reaches `at`, and
    /// recorded in the control plan so an rt-hosted run replays them at
    /// the same wall-clock offset.
    pub fn schedule_ops(&mut self, at: Time, ops: Vec<ControlOp>) {
        self.control_plan
            .extend(ops.iter().map(|op| (at, op.clone())));
        self.world.schedule_control(at, move |w| {
            for op in ops {
                w.apply_control(op);
            }
        });
    }

    /// Schedules a proactive recovery of replica `id` at time `at`: the
    /// replica process is restarted with a clean state machine in
    /// recovering mode (it rejoins via proof-carrying state transfer).
    pub fn schedule_recovery(&mut self, id: u32, at: Time) {
        let builder = Arc::clone(&self.builder);
        let pid = self.replica_pids[id as usize];
        let spawn: SpawnFn =
            Arc::new(move || Box::new(builder.build(id, ByzBehavior::Honest, true)));
        self.schedule_ops(
            at,
            vec![
                ControlOp::Restart(pid, spawn),
                ControlOp::Count("spire.recoveries_started".into(), 1),
            ],
        );
    }

    /// Schedules a crash of replica `id` at time `at` (process down until
    /// a later recovery restarts it).
    pub fn schedule_kill(&mut self, id: u32, at: Time) {
        let pid = self.replica_pids[id as usize];
        self.schedule_ops(at, vec![ControlOp::Crash(pid)]);
    }

    /// Schedules round-robin proactive recoveries: one replica every
    /// `period`, starting at `start`, until `horizon`.
    pub fn schedule_proactive_recovery(&mut self, start: Time, period: Span, horizon: Time) {
        self.schedule_rolling_recovery(
            start,
            horizon,
            RollingRecoveryConfig {
                period,
                stagger: Span(0),
                concurrent: 1,
                ..RollingRecoveryConfig::default()
            },
        );
    }

    /// Schedules the rolling proactive-recovery rotation of the paper:
    /// every `rcfg.period` a round restarts the next `rcfg.concurrent`
    /// replicas (round-robin, clamped to the layout's `k`), each offset
    /// by `rcfg.stagger` within the round, until `horizon`. Every restart
    /// is *announced* as a `(replica, start, start + window)` recovery
    /// window — returned here and remembered by the deployment, so the
    /// health monitor installed later grades those spans `degraded` and
    /// the invariant checker holds the replica to the catch-up deadline.
    /// Like every `schedule_*`, the restarts ride the control plan and
    /// replay identically on the rt substrate.
    pub fn schedule_rolling_recovery(
        &mut self,
        start: Time,
        horizon: Time,
        rcfg: RollingRecoveryConfig,
    ) -> Vec<(u32, Time, Time)> {
        let n = self.cfg.spire.total_replicas();
        let per_round = rcfg.concurrent.clamp(1, self.cfg.spire.k.max(1)).min(n);
        let mut announced = Vec::new();
        let mut round_at = start;
        while round_at <= horizon {
            let mut at = round_at;
            for _ in 0..per_round {
                if at > horizon {
                    break;
                }
                let id = self.recovery_counter % n;
                self.recovery_counter += 1;
                self.schedule_recovery(id, at);
                announced.push((id, at, at + rcfg.window));
                at = at + rcfg.stagger.max(Span(1));
            }
            round_at = round_at + rcfg.period;
        }
        self.recovery_windows.extend(announced.iter().copied());
        announced
    }

    /// The recovery windows announced by every
    /// [`Deployment::schedule_rolling_recovery`] call so far.
    pub fn recovery_windows(&self) -> &[(u32, Time, Time)] {
        &self.recovery_windows
    }

    /// Schedules a compromise: at `at`, replica `id` begins misbehaving.
    /// The replica is declared faulty immediately, so safety checks never
    /// hold it to honest-replica invariants.
    pub fn schedule_compromise(&mut self, id: u32, behavior: ByzBehavior, at: Time) {
        self.declared_faulty.lock().expect("poisoned").insert(id);
        let builder = Arc::clone(&self.builder);
        let pid = self.replica_pids[id as usize];
        // The attacker takes over the running process; it keeps state via
        // state transfer (recovering) but follows the attacker's logic
        // afterwards.
        let spawn: SpawnFn = Arc::new(move || Box::new(builder.build(id, behavior, true)));
        self.schedule_ops(
            at,
            vec![
                ControlOp::Restart(pid, spawn),
                ControlOp::Count("spire.compromises".into(), 1),
            ],
        );
    }

    /// All inter-site links of a site's daemons (internal and external).
    fn site_wan_peers(&self, site: usize) -> Vec<(ProcessId, ProcessId)> {
        let mut pairs = Vec::new();
        let me = OverlayId(site as u16);
        for (a, b, _) in self.internal.topology.edges() {
            if a == me || b == me {
                pairs.push((self.internal.daemon_pid(a), self.internal.daemon_pid(b)));
            }
        }
        for (a, b, _) in self.external.topology.edges() {
            if a == me || b == me {
                pairs.push((self.external.daemon_pid(a), self.external.daemon_pid(b)));
            }
        }
        pairs
    }

    /// Schedules a full disconnection of a site between `from` and `until`
    /// (all WAN links of its internal and external daemons go down).
    pub fn schedule_site_disconnect(&mut self, site: usize, from: Time, until: Time) {
        let pairs = self.site_wan_peers(site);
        let mut down: Vec<ControlOp> = pairs
            .iter()
            .map(|(a, b)| ControlOp::SetLinkUp(*a, *b, false))
            .collect();
        down.push(ControlOp::Count("spire.site_disconnects".into(), 1));
        self.schedule_ops(from, down);
        let up = pairs
            .iter()
            .map(|(a, b)| ControlOp::SetLinkUp(*a, *b, true))
            .collect();
        self.schedule_ops(until, up);
    }

    /// Schedules a DoS attack against a site: its WAN links become lossy
    /// and severely bandwidth-constrained between `from` and `until`.
    pub fn schedule_site_dos(&mut self, site: usize, from: Time, until: Time, loss: f64) {
        let pairs = self.site_wan_peers(site);
        let degraded = LinkConfig {
            latency: Span::millis(50),
            jitter: Span::millis(30),
            loss,
            corrupt: 0.0,
            dup: 0.0,
            bandwidth_bps: Some(200_000),
            max_queue: Span::millis(300),
        };
        let mut ops: Vec<ControlOp> = pairs
            .iter()
            .map(|(a, b)| ControlOp::SetLinkConfig(*a, *b, degraded))
            .collect();
        ops.push(ControlOp::Count("spire.dos_attacks".into(), 1));
        self.schedule_ops(from, ops);
        // Restore a nominal WAN link.
        let restore = pairs
            .iter()
            .map(|(a, b)| ControlOp::SetLinkConfig(*a, *b, LinkConfig::wan(8)))
            .collect();
        self.schedule_ops(until, restore);
    }

    /// Schedules a wire-fault window against a site's WAN links: frames
    /// are bit-flipped with probability `corrupt`, duplicated with
    /// probability `dup`, and reordered by up to `jitter` of extra
    /// per-frame delay between `from` and `until`. Exercises decoder
    /// totality and protocol idempotence without consuming fault budget.
    pub fn schedule_site_wire_faults(
        &mut self,
        site: usize,
        from: Time,
        until: Time,
        corrupt: f64,
        dup: f64,
        jitter: Span,
    ) {
        let pairs = self.site_wan_peers(site);
        let noisy = LinkConfig::wan(8)
            .with_corruption(corrupt)
            .with_dup(dup)
            .with_jitter(jitter);
        let mut ops: Vec<ControlOp> = pairs
            .iter()
            .map(|(a, b)| ControlOp::SetLinkConfig(*a, *b, noisy))
            .collect();
        ops.push(ControlOp::Count("spire.wire_fault_windows".into(), 1));
        self.schedule_ops(from, ops);
        let restore = pairs
            .iter()
            .map(|(a, b)| ControlOp::SetLinkConfig(*a, *b, LinkConfig::wan(8)))
            .collect();
        self.schedule_ops(until, restore);
    }

    /// Installs the online invariant checker: every `period` of virtual
    /// time (until `horizon`) it cross-checks all correct replicas'
    /// published state — execution-prefix consistency, at-most-one commit
    /// per `(view, seq)`, view monotonicity, checkpoint agreement — and
    /// the client-side conflicting-accept counter. Violations are counted
    /// under `invariant.violations` and reported with the reproducing
    /// seed; with tracing enabled the flight-recorder tail is dumped.
    pub fn install_invariant_checker(&mut self, period: Span, horizon: Time) {
        let checker = Arc::clone(&self.checker);
        let seed = self.cfg.seed;
        let windows: Arc<Vec<(u32, Time, Time)>> = Arc::new(self.recovery_windows.clone());
        self.world.schedule_control(Time(period.0), move |w| {
            tick(w, checker, windows, period, horizon, seed)
        });

        fn tick(
            w: &mut World,
            checker: Arc<InvariantChecker>,
            windows: Arc<Vec<(u32, Time, Time)>>,
            period: Span,
            horizon: Time,
            seed: u64,
        ) {
            w.metrics_mut().count("invariant.checks", 1);
            let mut fresh = checker.check();
            let accepts = w.metrics().counter("scada.conflicting_accept");
            fresh += checker.note_conflicting_accepts(accepts);
            fresh += checker.note_recovery_windows(w.now(), &windows);
            if fresh > 0 {
                w.metrics_mut().count("invariant.violations", fresh as u64);
                for v in checker.recent_violations(fresh) {
                    eprintln!(
                        "INVARIANT VIOLATION [{}] at {:?}: {} (reproduce with seed {})",
                        v.kind,
                        w.now(),
                        v.detail,
                        seed
                    );
                }
                if w.tracer().enabled() {
                    eprintln!("--- flight recorder tail ---\n{}", w.trace_dump_tail(40));
                }
            }
            let next = w.now() + period;
            if next <= horizon {
                w.schedule_control(next, move |w| {
                    tick(w, checker, windows, period, horizon, seed)
                });
            }
        }
    }

    /// Installs the live health monitor: every `cfg.interval` of virtual
    /// time (until `horizon`) it snapshots the world's metrics, grades
    /// the SLOs, runs the performance-attack detector, publishes the
    /// `health.*` verdicts back into the metric store, and emits a trace
    /// `Mark` per fired alarm. Returns a handle to the monitor for
    /// post-run inspection (snapshot ring, alarm log, first-fire times).
    pub fn install_health_monitor(
        &mut self,
        cfg: HealthConfig,
        horizon: Time,
    ) -> Arc<Mutex<HealthMonitor>> {
        let monitor = Arc::new(Mutex::new(
            HealthMonitor::new(cfg).with_recovery_windows(self.recovery_windows.clone()),
        ));
        let handle = Arc::clone(&monitor);
        let interval = cfg.interval;
        self.world.schedule_control(Time(interval.0), move |w| {
            tick(w, monitor, interval, horizon)
        });
        return handle;

        fn tick(w: &mut World, monitor: Arc<Mutex<HealthMonitor>>, interval: Span, horizon: Time) {
            let now = w.now();
            let health_tick = monitor
                .lock()
                .expect("health monitor poisoned")
                .observe(now, w.metrics());
            HealthMonitor::publish(&health_tick, w.metrics_mut());
            for alarm in &health_tick.alarms {
                w.trace(TraceKind::Mark {
                    pid: 0,
                    label: alarm.label(),
                    value: health_tick.snapshot.seq,
                });
            }
            let next = now + interval;
            if next <= horizon {
                w.schedule_control(next, move |w| tick(w, monitor, interval, horizon));
            }
        }
    }
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("replicas", &self.replica_pids.len())
            .field("rtus", &self.device_pids.len())
            .field("sites", &self.cfg.spire.sites.len())
            .finish()
    }
}

/// Which substrate hosts an assembled deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Substrate {
    /// The single-threaded deterministic discrete-event simulator.
    Sim,
    /// The multi-threaded real-clock runtime; `threads == 0` means one
    /// worker per available core.
    Rt {
        /// Worker thread count (0 = auto).
        threads: usize,
    },
}

impl Substrate {
    /// Parses `"sim"`, `"rt"` or `"rt:<threads>"`.
    pub fn parse(s: &str) -> Option<Substrate> {
        match s {
            "sim" => Some(Substrate::Sim),
            "rt" => Some(Substrate::Rt { threads: 0 }),
            other => {
                let threads = other.strip_prefix("rt:")?.parse().ok()?;
                Some(Substrate::Rt { threads })
            }
        }
    }
}

impl std::fmt::Display for Substrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Substrate::Sim => write!(f, "sim"),
            Substrate::Rt { threads: 0 } => write!(f, "rt"),
            Substrate::Rt { threads } => write!(f, "rt:{threads}"),
        }
    }
}

/// Heuristic message-class labeling for the rt per-class drop counters
/// (`rt.drop.<class>`). Looks at the outermost frame tag — Prime frames
/// (including sealed session envelopes) classify precisely; overlay
/// wrappers and everything else land in coarse buckets.
pub fn classify_frame(bytes: &[u8]) -> &'static str {
    let Some(&tag) = bytes.first() else {
        return "empty";
    };
    // Sealed session envelope: [254][sender u32][mac 32][len u32][inner].
    let mut tag = if tag == 254 {
        match bytes.get(41) {
            Some(&inner) => inner,
            None => return "other",
        }
    } else {
        tag
    };
    // Multi-frame container: [253][count u16][len u32][first frame]... —
    // classify by the first sub-frame (a coalesced flush is usually
    // homogeneous vote traffic anyway).
    if tag == 253 {
        let offset = if bytes.first() == Some(&254) { 41 } else { 0 };
        match bytes.get(offset + 7) {
            Some(&inner) => tag = inner,
            None => return "other",
        }
    }
    match tag {
        255 => "batch",
        2..=4 | 20 => "preorder",
        5..=7 | 21 => "ordering",
        10..=12 => "viewchange",
        13..=15 => "checkpoint",
        1 | 17 | 19 => "client",
        8 | 9 => "liveness",
        16 | 18 => "recon",
        22..=24 => "statexfer",
        _ => "other",
    }
}

impl Deployment {
    /// Moves the assembled (not yet run) system onto the real-clock
    /// runtime: the same actors and the same link
    /// latency/jitter/loss/corruption/duplication model, hosted on OS
    /// threads under wall-clock time. The control plan accumulated by the
    /// `schedule_*` methods travels along and is replayed at the same
    /// offsets from run start, so attack scenarios run unchanged on
    /// either substrate.
    pub fn into_rt(self, threads: usize) -> RtDeployment {
        let correct = self.correct_replicas();
        let rt_cfg = if threads == 0 {
            spire_rt::RtConfig::default()
        } else {
            spire_rt::RtConfig::with_threads(threads)
        };
        let hooks = spire_rt::RtHooks {
            classify: Arc::new(classify_frame),
        };
        let runtime = spire_rt::Runtime::from_fabric_with(self.world.into_fabric(), rt_cfg, hooks);
        RtDeployment {
            runtime,
            inspection: self.inspection,
            cfg: self.cfg,
            checker: self.checker,
            plan: self.control_plan,
            correct,
            recovery_windows: self.recovery_windows,
        }
    }
}

/// A deployment hosted on the real-clock runtime. The actors are already
/// running; call [`RtDeployment::run_for`] to let them work and collect
/// the report.
pub struct RtDeployment {
    /// The running substrate.
    pub runtime: spire_rt::Runtime,
    /// Shared replica inspection registry (safety checks work across
    /// threads; replicas publish under a mutex).
    pub inspection: Inspection,
    /// The configuration the deployment was built from.
    pub cfg: DeploymentConfig,
    /// Online invariant checker; ticks from the control thread.
    pub checker: Arc<InvariantChecker>,
    /// The fault plan recorded at schedule time, replayed at wall-clock
    /// offsets from run start.
    plan: Vec<(Time, ControlOp)>,
    correct: Vec<u32>,
    /// Announced recovery windows, carried from the scheduler so the
    /// health monitor and the catch-up invariant see them under
    /// wall-clock replay too.
    recovery_windows: Vec<(u32, Time, Time)>,
}

/// The result of a real-clock run: the standard [`Report`] plus the raw
/// merged metrics and wall-clock accounting.
#[derive(Debug)]
pub struct RtOutcome {
    /// The substrate-independent evaluation report.
    pub report: Report,
    /// Merged per-worker metrics, elapsed wall time, worker count.
    pub run: spire_rt::RtRun,
    /// The health monitor after the run (None when unmonitored).
    pub health: Option<HealthMonitor>,
}

/// How a monitored rt run should surface its live telemetry.
#[derive(Clone, Debug, Default)]
pub struct HealthOptions {
    /// Monitor tuning (interval, thresholds, warmup).
    pub config: HealthConfig,
    /// Print a one-line live status to stderr on every snapshot.
    pub watch: bool,
    /// Rewrite a Prometheus text-exposition snapshot to this path on
    /// every snapshot (and once more at shutdown with final metrics).
    pub prom_path: Option<String>,
}

impl RtDeployment {
    /// Runs for `span` of wall-clock time — executing the recorded fault
    /// plan at its offsets and ticking the online invariant checker from
    /// the control thread — then shuts the runtime down and extracts the
    /// report (safety checked over the correct replicas).
    pub fn run_for(self, span: Span) -> RtOutcome {
        self.run_inner(span, None)
    }

    /// Like [`RtDeployment::run_for`], with the live health monitor
    /// sampling [`spire_rt::Runtime::live_metrics`] every
    /// `opts.config.interval` of wall time: SLO grading, attack
    /// detection, optional `--watch` status lines and periodic
    /// Prometheus snapshots, all while the run is in flight.
    pub fn run_monitored(self, span: Span, opts: HealthOptions) -> RtOutcome {
        self.run_inner(span, Some(opts))
    }

    fn run_inner(self, span: Span, opts: Option<HealthOptions>) -> RtOutcome {
        let checker = Arc::clone(&self.checker);
        let seed = self.cfg.seed;
        let mut checks: u64 = 0;
        let mut violations: u64 = 0;
        let mut monitor = opts.as_ref().map(|o| {
            HealthMonitor::new(o.config).with_recovery_windows(self.recovery_windows.clone())
        });
        let recovery_windows = self.recovery_windows.clone();
        let mut health_out = Metrics::new();
        let mut next_snap = opts.as_ref().map(|o| Time(o.config.interval.0));
        let mut run = self.runtime.run_with(span, self.plan, |now, rt| {
            checks += 1;
            let fresh = checker.check() + checker.note_recovery_windows(now, &recovery_windows);
            if fresh > 0 {
                violations += fresh as u64;
                for v in checker.recent_violations(fresh) {
                    eprintln!(
                        "INVARIANT VIOLATION [{}] at {:?}: {} (seed {}; rt runs are not \
                         reproducible — replay the seed on the sim substrate)",
                        v.kind, now, v.detail, seed
                    );
                }
            }
            let (Some(mon), Some(opts), Some(due)) =
                (monitor.as_mut(), opts.as_ref(), next_snap.as_mut())
            else {
                return;
            };
            if now < *due {
                return;
            }
            *due = now + opts.config.interval;
            let mut live = rt.live_metrics();
            // Fold the runtime's own gauges in as `rt.*` series so the
            // snapshot, the report and the exporters see them.
            let g = rt.gauges();
            health_out.record("rt.mailbox_depth", now, g.mailbox_depth as f64);
            health_out.record("rt.wheel_len", now, g.wheel_len as f64);
            health_out.record("rt.busy_frac", now, g.busy_frac());
            let tick = mon.observe(now, &live);
            HealthMonitor::publish(&tick, &mut health_out);
            if opts.watch {
                eprintln!("{}", mon.watch_line(&tick));
            }
            if let Some(path) = &opts.prom_path {
                live.merge(&health_out);
                if let Err(e) = std::fs::write(path, prometheus_text(&live)) {
                    eprintln!("prometheus export to {path} failed: {e}");
                }
            }
        });
        // Client-side conflicting accepts live in worker metrics, which
        // merge only at shutdown; fold them in now.
        let accepts = run.metrics.counter("scada.conflicting_accept");
        violations += checker.note_conflicting_accepts(accepts) as u64;
        run.metrics.count("invariant.checks", checks);
        if violations > 0 {
            run.metrics.count("invariant.violations", violations);
        }
        run.metrics.merge(&health_out);
        run.metrics.sort_series();
        let safety_ok =
            self.inspection.check_safety(&self.correct).is_ok() && checker.violation_count() == 0;
        let report = Report::from_metrics(&run.metrics, safety_ok);
        // Final snapshot over the complete merged metrics.
        if let Some(path) = opts.as_ref().and_then(|o| o.prom_path.as_ref()) {
            if let Err(e) = std::fs::write(path, prometheus_text(&run.metrics)) {
                eprintln!("prometheus export to {path} failed: {e}");
            }
        }
        RtOutcome {
            report,
            run,
            health: monitor,
        }
    }
}

impl std::fmt::Debug for RtDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtDeployment")
            .field("runtime", &self.runtime)
            .field("sites", &self.cfg.spire.sites.len())
            .finish()
    }
}
