//! Seeded chaos adversary: reproducible randomized fault schedules.
//!
//! A [`ChaosPlan`] is generated from a seed alone — the same seed always
//! yields the same attack stream, so any failing run is reproducible by
//! its seed (Jepsen-style). The generator mixes every fault class the
//! deployment supports: replica crash/recover churn, rolling proactive
//! recovery, compromises, site DoS and disconnection windows, and
//! wire-fault windows (corruption, duplication, jitter-induced
//! reordering).
//!
//! A [`FaultBudget`] accountant guarantees the plan never exceeds what
//! the protocol tolerates: at most `f` concurrently-Byzantine replicas,
//! at most `f + k` concurrently faulty-or-recovering replicas, one site
//! attack window at a time, and no replica faults while a site is under
//! attack (the paper's threat model is `f` intrusions *plus* one
//! disconnected site, with recovering replicas counted against `k`).
//! Within that envelope, a correct system must stay safe — the online
//! invariant checker enforces exactly that during the run.

use crate::attack::{Attack, Scenario};
use crate::config::SpireConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spire_prime::ByzBehavior;
use spire_sim::{Span, Time};

/// Margin after a recovery completes during which the replica still
/// counts against the fault budget (state transfer takes a few seconds).
const RECOVERY_MARGIN: Span = Span(5_000_000);

/// Tracks which replicas are faulty over which intervals so the plan
/// stays within `f` Byzantine / `f + k` total concurrent faults.
#[derive(Debug, Default)]
pub struct FaultBudget {
    /// `(replica, from, until, byzantine)` fault windows.
    windows: Vec<(u32, Time, Time, bool)>,
    /// Site attack windows `(from, until)`.
    site_windows: Vec<(Time, Time)>,
}

impl FaultBudget {
    fn overlapping(&self, from: Time, until: Time, byz_only: bool) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .windows
            .iter()
            .filter(|(_, f, u, byz)| *f < until && from < *u && (!byz_only || *byz))
            .map(|(id, ..)| *id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn site_busy(&self, from: Time, until: Time) -> bool {
        self.site_windows
            .iter()
            .any(|(f, u)| *f < until && from < *u)
    }

    /// Can `id` become Byzantine over `[from, until)` within budget `f`?
    fn can_compromise(&self, id: u32, from: Time, until: Time, f: u32) -> bool {
        let byz = self.overlapping(from, until, true);
        !byz.contains(&id) && (byz.len() as u32) < f && !self.site_busy(from, until)
    }

    /// Can `id` be down/recovering over `[from, until)` within `f + k`?
    fn can_fault(&self, id: u32, from: Time, until: Time, f: u32, k: u32) -> bool {
        let all = self.overlapping(from, until, false);
        !all.contains(&id) && (all.len() as u32) < f + k && !self.site_busy(from, until)
    }

    /// Can a site attack run over `[from, until)`? Only one at a time,
    /// and never while replica faults are in flight.
    fn can_attack_site(&self, from: Time, until: Time) -> bool {
        !self.site_busy(from, until) && self.overlapping(from, until, false).is_empty()
    }
}

/// A reproducible randomized attack schedule within the fault budget.
#[derive(Debug)]
pub struct ChaosPlan {
    /// The generating seed (reproduces the plan exactly).
    pub seed: u64,
    /// The generated attack stream, in schedule order.
    pub attacks: Vec<Attack>,
    /// Plan horizon.
    pub duration: Span,
    /// Human-readable event log, one line per generated event.
    pub log: Vec<String>,
}

impl ChaosPlan {
    /// Generates the plan for `seed` against the given replication
    /// layout, covering `duration` (events stop ~5 s before the end so
    /// the system settles before final liveness accounting).
    pub fn generate(seed: u64, spire: &SpireConfig, duration: Span) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5EED);
        let n = spire.total_replicas();
        let n_sites = spire.sites.len();
        let (f, k) = (spire.f, spire.k);
        let mut budget = FaultBudget::default();
        let mut attacks = Vec::new();
        let mut log = Vec::new();
        let mut rr_recovery: u32 = rng.gen_range(0..n);
        let horizon = Time(duration.0.saturating_sub(5_000_000));
        let mut t = Time(2_000_000);
        let secs = |t: Time| t.0 as f64 / 1e6;
        while t < horizon {
            let until_cap = horizon;
            match rng.gen_range(0u32..10) {
                // Crash + recover churn (weight 3).
                0..=2 => {
                    let id = rng.gen_range(0..n);
                    let recover_at =
                        Time((t.0 + rng.gen_range(3_000_000u64..8_000_000)).min(until_cap.0));
                    let busy_until = recover_at + RECOVERY_MARGIN;
                    if budget.can_fault(id, t, busy_until, f, k) {
                        budget.windows.push((id, t, busy_until, false));
                        attacks.push(Attack::KillReplica { id, at: t });
                        attacks.push(Attack::Recover { id, at: recover_at });
                        log.push(format!(
                            "{:7.1}s crash replica {id}, recover at {:.1}s",
                            secs(t),
                            secs(recover_at)
                        ));
                    }
                }
                // Rolling proactive recovery (weight 2).
                3..=4 => {
                    let id = rr_recovery % n;
                    let busy_until = t + RECOVERY_MARGIN;
                    if budget.can_fault(id, t, busy_until, f, k) {
                        rr_recovery += 1;
                        budget.windows.push((id, t, busy_until, false));
                        attacks.push(Attack::Recover { id, at: t });
                        log.push(format!(
                            "{:7.1}s proactive recovery of replica {id}",
                            secs(t)
                        ));
                    }
                }
                // Compromise within the f budget, cleaned by a later
                // recovery (weight 2).
                5..=6 => {
                    let id = rng.gen_range(0..n);
                    let recover_at =
                        Time((t.0 + rng.gen_range(8_000_000u64..15_000_000)).min(until_cap.0));
                    let busy_until = recover_at + RECOVERY_MARGIN;
                    if budget.can_compromise(id, t, busy_until, f)
                        && budget.can_fault(id, t, busy_until, f, k)
                    {
                        let behavior = match rng.gen_range(0u32..6) {
                            0 => ByzBehavior::DivergentExec,
                            1 => ByzBehavior::Equivocate,
                            2 => ByzBehavior::AckWithhold,
                            3 => ByzBehavior::Mute,
                            4 => ByzBehavior::CorruptShares,
                            _ => ByzBehavior::LeaderDelay(Span::millis(800)),
                        };
                        budget.windows.push((id, t, busy_until, true));
                        attacks.push(Attack::Compromise {
                            id,
                            behavior,
                            at: t,
                        });
                        attacks.push(Attack::Recover { id, at: recover_at });
                        log.push(format!(
                            "{:7.1}s compromise replica {id} ({behavior:?}), recover at {:.1}s",
                            secs(t),
                            secs(recover_at)
                        ));
                    }
                }
                // Site DoS or disconnect window (weight 2).
                7..=8 => {
                    let site = rng.gen_range(0..n_sites);
                    let until =
                        Time((t.0 + rng.gen_range(5_000_000u64..10_000_000)).min(until_cap.0));
                    if until > t && budget.can_attack_site(t, until) {
                        budget.site_windows.push((t, until));
                        if rng.gen_bool(0.5) {
                            let loss = rng.gen_range(0.3..0.7);
                            attacks.push(Attack::DosSite {
                                site,
                                from: t,
                                until,
                                loss,
                            });
                            log.push(format!(
                                "{:7.1}s DoS site {site} until {:.1}s (loss {loss:.2})",
                                secs(t),
                                secs(until)
                            ));
                        } else {
                            attacks.push(Attack::DisconnectSite {
                                site,
                                from: t,
                                until,
                            });
                            log.push(format!(
                                "{:7.1}s disconnect site {site} until {:.1}s",
                                secs(t),
                                secs(until)
                            ));
                        }
                    }
                }
                // Wire-fault window: corruption + duplication + jitter
                // reordering; free — consumes no fault budget (weight 1).
                _ => {
                    let site = rng.gen_range(0..n_sites);
                    let until =
                        Time((t.0 + rng.gen_range(5_000_000u64..10_000_000)).min(until_cap.0));
                    if until > t && !budget.site_busy(t, until) {
                        let corrupt = rng.gen_range(0.01..0.05);
                        let dup = rng.gen_range(0.05..0.2);
                        let jitter = Span::millis(rng.gen_range(10..30));
                        attacks.push(Attack::WireFaults {
                            site,
                            from: t,
                            until,
                            corrupt,
                            dup,
                            jitter,
                        });
                        log.push(format!(
                            "{:7.1}s wire faults at site {site} until {:.1}s \
                             (corrupt {corrupt:.3}, dup {dup:.2}, jitter {}ms)",
                            secs(t),
                            secs(until),
                            jitter.0 / 1_000
                        ));
                    }
                }
            }
            t = t + Span(rng.gen_range(3_000_000u64..8_000_000));
        }
        ChaosPlan {
            seed,
            attacks,
            duration,
            log,
        }
    }

    /// Restricts the plan to network-level faults (site DoS/disconnect
    /// and wire-fault windows), dropping every replica crash, recovery
    /// and compromise. Used when an external schedule owns replica churn
    /// — e.g. the rolling proactive-recovery rotation of the endurance
    /// experiment — so the whole `f + k` fault budget stays free for it
    /// while the network still drops, corrupts and reorders the state
    /// transfer's share traffic.
    pub fn network_only(mut self) -> ChaosPlan {
        self.attacks.retain(|a| {
            matches!(
                a,
                Attack::DosSite { .. } | Attack::DisconnectSite { .. } | Attack::WireFaults { .. }
            )
        });
        self.log.retain(|l| l.contains("site"));
        self
    }

    /// Wraps the plan as a named [`Scenario`] so the standard runners
    /// (apply + invariant checker + report) drive it unchanged.
    pub fn scenario(&self) -> Scenario {
        Scenario {
            name: format!("chaos seed {}", self.seed),
            attacks: self.attacks.clone(),
            duration: self.duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> ChaosPlan {
        ChaosPlan::generate(seed, &SpireConfig::spread(1, 1, 2), Span::secs(60))
    }

    fn fingerprint(p: &ChaosPlan) -> String {
        p.log.join("\n")
    }

    #[test]
    fn same_seed_same_plan() {
        assert_eq!(fingerprint(&plan(42)), fingerprint(&plan(42)));
        assert_ne!(fingerprint(&plan(42)), fingerprint(&plan(43)));
    }

    #[test]
    fn plans_are_nonempty_and_bounded() {
        for seed in 0..20 {
            let p = plan(seed);
            assert!(!p.attacks.is_empty(), "seed {seed} generated no attacks");
            for a in &p.attacks {
                let at = match a {
                    Attack::Compromise { at, .. }
                    | Attack::KillReplica { at, .. }
                    | Attack::Recover { at, .. } => *at,
                    Attack::DosSite { until, .. }
                    | Attack::DisconnectSite { until, .. }
                    | Attack::WireFaults { until, .. } => *until,
                };
                assert!(at <= Time(60_000_000), "event past horizon in seed {seed}");
            }
        }
    }

    #[test]
    fn network_only_drops_replica_faults() {
        for seed in 0..20 {
            let p = plan(seed).network_only();
            for a in &p.attacks {
                assert!(
                    matches!(
                        a,
                        Attack::DosSite { .. }
                            | Attack::DisconnectSite { .. }
                            | Attack::WireFaults { .. }
                    ),
                    "seed {seed} kept a replica fault: {a:?}"
                );
            }
            assert_eq!(
                p.attacks.len(),
                p.log.len(),
                "log out of sync (seed {seed})"
            );
        }
    }

    #[test]
    fn budget_never_exceeds_f_byzantine() {
        // Reconstruct the byzantine intervals from the generated attacks
        // and verify no instant has more than f concurrent compromises.
        for seed in 0..50 {
            let p = plan(seed);
            let mut events: Vec<(Time, i32)> = Vec::new();
            let mut open: std::collections::BTreeMap<u32, Time> = Default::default();
            for a in &p.attacks {
                match a {
                    Attack::Compromise { id, at, .. } => {
                        open.insert(*id, *at);
                    }
                    Attack::Recover { id, at } => {
                        if let Some(from) = open.remove(id) {
                            events.push((from, 1));
                            events.push((*at, -1));
                        }
                    }
                    _ => {}
                }
            }
            for (_, from) in open {
                events.push((from, 1));
            }
            events.sort_by_key(|(t, d)| (t.0, *d));
            let mut live = 0i32;
            for (_, d) in events {
                live += d;
                assert!(
                    live <= 1,
                    "seed {seed}: more than f=1 concurrent compromises"
                );
            }
        }
    }
}
