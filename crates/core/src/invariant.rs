//! Online safety-invariant checking.
//!
//! The paper's correctness claim is that up to `f` intrusions and `k`
//! simultaneously-recovering replicas never produce an inconsistent or
//! unsafe SCADA state. The [`InvariantChecker`] verifies that claim
//! *while* a scenario runs (not post-mortem): a periodic tick — virtual
//! time on the simulator, the control thread on the rt substrate —
//! cross-checks every correct replica's published [`Inspection`] record:
//!
//! 1. **Execution-prefix consistency** — all correct replicas' execution
//!    hash chains are prefix-compatible over their overlapping ranges.
//! 2. **At-most-one commit per `(view, seq)`** — no two correct replicas
//!    commit different matrices at the same global sequence (checked via
//!    the chain head after that matrix, which any two honest replicas
//!    with the same history must share).
//! 3. **View monotonicity** — a replica's view never regresses within
//!    one incarnation (restarts legitimately rewind it).
//! 4. **Checkpoint-chain validity** — checkpoints at the same sequence
//!    carry the same digest across correct replicas.
//! 5. **Client-reply `f + 1` agreement** — no client-side quorum tracker
//!    observed two conflicting values each gathering a full quorum
//!    (surfaced through the `scada.conflicting_accept` counter).
//!
//! Replicas declared faulty (configured or scheduled compromises) are
//! exempt: a Byzantine replica may publish anything. A violation among
//! the *correct* set is a genuine safety break — the runner counts it
//! under `invariant.violations`, prints the reproducing seed, and fails.

use spire_crypto::Digest;
use spire_prime::Inspection;
use spire_sim::Time;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Bounds on the checker's cross-replica history maps; oldest sequences
/// are evicted first (they are settled and can no longer conflict with
/// the bounded per-replica rings feeding the checker).
const COMMITTED_CAP: usize = 8_192;
const CHECKPOINTS_CAP: usize = 1_024;

/// One detected safety violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Stable kind tag (`exec-prefix-divergence`, `conflicting-commit`,
    /// `view-regression`, `checkpoint-divergence`,
    /// `conflicting-client-accept`).
    pub kind: &'static str,
    /// Human-readable description with the replicas/sequences involved.
    pub detail: String,
}

#[derive(Default)]
struct CheckerState {
    checks: u64,
    violations: Vec<Violation>,
    /// replica -> (incarnation, view) seen at the last tick.
    last_view: BTreeMap<u32, (u64, u64)>,
    /// seq -> (view, chain head, first reporter).
    committed: BTreeMap<u64, (u64, Digest, u32)>,
    /// seq -> (digest, first reporter).
    checkpoints: BTreeMap<u64, (Digest, u32)>,
    /// Deduplication so a persistent divergence is reported once.
    reported_pairs: BTreeSet<(u32, u32)>,
    reported_commits: BTreeSet<(u64, u32)>,
    reported_checkpoints: BTreeSet<(u64, u32)>,
    accepts_seen: u64,
    /// Indices into the announced recovery-window schedule that have been
    /// judged (either caught up in time or reported stalled).
    settled_recoveries: BTreeSet<usize>,
}

/// An externally-supplied invariant: drained on every tick, each returned
/// string is one new violation detail.
type ExternalCheck = (&'static str, Arc<dyn Fn() -> Vec<String> + Send + Sync>);

/// The online checker. Cheap to share (`Arc`); every method takes `&self`.
pub struct InvariantChecker {
    inspection: Inspection,
    faulty: Arc<Mutex<BTreeSet<u32>>>,
    n_replicas: u32,
    state: Mutex<CheckerState>,
    external: Mutex<Vec<ExternalCheck>>,
}

impl InvariantChecker {
    /// Creates a checker over `n_replicas` replicas publishing into
    /// `inspection`, excluding the shared `faulty` set (which may grow as
    /// compromises are scheduled).
    pub fn new(
        inspection: Inspection,
        faulty: Arc<Mutex<BTreeSet<u32>>>,
        n_replicas: u32,
    ) -> InvariantChecker {
        InvariantChecker {
            inspection,
            faulty,
            n_replicas,
            state: Mutex::new(CheckerState::default()),
            external: Mutex::new(Vec::new()),
        }
    }

    /// Registers an external invariant run on every [`InvariantChecker::check`]
    /// pass: `drain` returns the details of violations found since its last
    /// call (e.g. the cross-shard atomicity ledger). `kind` tags them in
    /// [`Violation::kind`].
    pub fn add_external(
        &self,
        kind: &'static str,
        drain: Arc<dyn Fn() -> Vec<String> + Send + Sync>,
    ) {
        self.external.lock().expect("poisoned").push((kind, drain));
    }

    /// Runs invariants 1–4 over the current inspection snapshot; returns
    /// the number of *new* violations found by this pass.
    pub fn check(&self) -> usize {
        let faulty = self.faulty.lock().expect("poisoned").clone();
        let correct: Vec<u32> = (0..self.n_replicas)
            .filter(|r| !faulty.contains(r))
            .collect();
        // Drain external invariants before taking the state lock.
        let mut external_hits: Vec<Violation> = Vec::new();
        for (kind, drain) in self.external.lock().expect("poisoned").iter() {
            for detail in drain() {
                external_hits.push(Violation { kind, detail });
            }
        }
        let mut st = self.state.lock().expect("poisoned");
        st.checks += 1;
        let before = st.violations.len();
        st.violations.append(&mut external_hits);

        // 1. Execution-prefix consistency across correct replicas.
        if let Err((a, b)) = self.inspection.check_safety(&correct) {
            let key = (a.min(b), a.max(b));
            if st.reported_pairs.insert(key) {
                st.violations.push(Violation {
                    kind: "exec-prefix-divergence",
                    detail: format!("replicas {a} and {b} executed different op sequences"),
                });
            }
        }

        let records = self.inspection.records();
        for (&id, rec) in &records {
            if faulty.contains(&id) || id >= self.n_replicas {
                continue;
            }
            // 3. View monotonicity within an incarnation.
            if let Some(&(inc, view)) = st.last_view.get(&id) {
                if inc == rec.incarnation && rec.view < view {
                    st.violations.push(Violation {
                        kind: "view-regression",
                        detail: format!(
                            "replica {id} moved from view {view} back to {} in incarnation {inc}",
                            rec.view
                        ),
                    });
                }
            }
            st.last_view.insert(id, (rec.incarnation, rec.view));
            // 2. At most one committed matrix per sequence: the chain
            // head after matrix `seq` is a deterministic function of the
            // full agreed history, so two correct replicas disagreeing on
            // it committed different operations somewhere at or before
            // `seq`.
            for &(view, seq, head) in &rec.recent_commits {
                match st.committed.get(&seq).copied() {
                    Some((pview, phead, prep)) => {
                        if phead != head && st.reported_commits.insert((seq, id)) {
                            st.violations.push(Violation {
                                kind: "conflicting-commit",
                                detail: format!(
                                    "seq {seq}: replica {prep} (view {pview}) and replica {id} \
                                     (view {view}) committed different matrices"
                                ),
                            });
                        }
                    }
                    None => {
                        st.committed.insert(seq, (view, head, id));
                    }
                }
            }
            // 4. Checkpoint agreement at equal sequences.
            for &(seq, digest) in &rec.recent_checkpoints {
                match st.checkpoints.get(&seq).copied() {
                    Some((pd, prep)) => {
                        if pd != digest && st.reported_checkpoints.insert((seq, id)) {
                            st.violations.push(Violation {
                                kind: "checkpoint-divergence",
                                detail: format!(
                                    "checkpoint at seq {seq}: replica {prep} and replica {id} \
                                     disagree on the snapshot digest"
                                ),
                            });
                        }
                    }
                    None => {
                        st.checkpoints.insert(seq, (digest, id));
                    }
                }
            }
        }
        while st.committed.len() > COMMITTED_CAP {
            st.committed.pop_first();
        }
        while st.checkpoints.len() > CHECKPOINTS_CAP {
            st.checkpoints.pop_first();
        }
        st.violations.len() - before
    }

    /// Invariant 6: bounded recovery. Every announced proactive-recovery
    /// window `(replica, start, end)` is a promise: by `end` the replica
    /// must have finished state transfer (or the genesis fallback) and
    /// cleared its published `recovering` flag — i.e. it re-joined the
    /// execution quorum. Called on every checker tick with the current
    /// substrate time; each window is judged once, after it closes.
    /// A replica inside a *later* announced window at judgement time is
    /// deferred (a fresh rotation legitimately re-raises the flag), and
    /// declared-faulty replicas are exempt as everywhere else. Returns
    /// the number of new violations.
    pub fn note_recovery_windows(&self, now: Time, windows: &[(u32, Time, Time)]) -> usize {
        let faulty = self.faulty.lock().expect("poisoned").clone();
        let records = self.inspection.records();
        let mut st = self.state.lock().expect("poisoned");
        let before = st.violations.len();
        for (idx, &(id, start, end)) in windows.iter().enumerate() {
            if now < end || st.settled_recoveries.contains(&idx) {
                continue;
            }
            if faulty.contains(&id) {
                st.settled_recoveries.insert(idx);
                continue;
            }
            // Defer judgement while the replica sits inside another
            // announced window (the next rotation already started it).
            let in_other = windows
                .iter()
                .any(|&(oid, s, e)| oid == id && s <= now && now < e && s != start);
            if in_other {
                continue;
            }
            let Some(rec) = records.get(&id) else {
                continue;
            };
            st.settled_recoveries.insert(idx);
            if rec.recovering {
                st.violations.push(Violation {
                    kind: "recovery-stalled",
                    detail: format!(
                        "replica {id} entered proactive recovery at {:.1}s and was still \
                         recovering past the {:.1}s window deadline",
                        start.as_secs_f64(),
                        end.as_secs_f64()
                    ),
                });
            }
        }
        st.violations.len() - before
    }

    /// Invariant 5: feeds the cumulative `scada.conflicting_accept`
    /// counter; any increase since the last call means a client-side
    /// quorum accepted two conflicting values. Returns the number of new
    /// violation entries (0 or 1).
    pub fn note_conflicting_accepts(&self, total: u64) -> usize {
        let mut st = self.state.lock().expect("poisoned");
        let fresh = total.saturating_sub(st.accepts_seen);
        st.accepts_seen = st.accepts_seen.max(total);
        if fresh > 0 {
            st.violations.push(Violation {
                kind: "conflicting-client-accept",
                detail: format!("{fresh} client quorum(s) accepted two conflicting values"),
            });
            1
        } else {
            0
        }
    }

    /// How many check passes have run.
    pub fn checks(&self) -> u64 {
        self.state.lock().expect("poisoned").checks
    }

    /// All violations found so far (oldest first).
    pub fn violations(&self) -> Vec<Violation> {
        self.state.lock().expect("poisoned").violations.clone()
    }

    /// The most recent `n` violations (oldest of those first).
    pub fn recent_violations(&self, n: usize) -> Vec<Violation> {
        let st = self.state.lock().expect("poisoned");
        let skip = st.violations.len().saturating_sub(n);
        st.violations[skip..].to_vec()
    }

    /// Total violation count.
    pub fn violation_count(&self) -> usize {
        self.state.lock().expect("poisoned").violations.len()
    }

    /// True when no violation has ever been observed.
    pub fn ok(&self) -> bool {
        self.violation_count() == 0
    }
}

impl std::fmt::Debug for InvariantChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().expect("poisoned");
        f.debug_struct("InvariantChecker")
            .field("checks", &st.checks)
            .field("violations", &st.violations.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker_with(n: u32, faulty: &[u32]) -> InvariantChecker {
        InvariantChecker::new(
            Inspection::new(),
            Arc::new(Mutex::new(faulty.iter().copied().collect())),
            n,
        )
    }

    #[test]
    fn clean_records_pass() {
        let c = checker_with(3, &[]);
        c.inspection.update(0, |r| {
            r.exec_chain = vec![[1; 32], [2; 32]];
            r.push_commit(0, 1, [2; 32]);
            r.push_checkpoint(25, [7; 32]);
        });
        c.inspection.update(1, |r| {
            r.exec_chain = vec![[1; 32], [2; 32]];
            r.push_commit(0, 1, [2; 32]);
            r.push_checkpoint(25, [7; 32]);
        });
        assert_eq!(c.check(), 0);
        assert!(c.ok());
        assert_eq!(c.checks(), 1);
    }

    #[test]
    fn detects_conflicting_commit_and_dedups() {
        let c = checker_with(2, &[]);
        c.inspection.update(0, |r| r.push_commit(0, 5, [1; 32]));
        c.inspection.update(1, |r| r.push_commit(0, 5, [9; 32]));
        assert_eq!(c.check(), 1);
        assert_eq!(c.violations()[0].kind, "conflicting-commit");
        // A second pass over the same records does not re-report.
        assert_eq!(c.check(), 0);
    }

    #[test]
    fn faulty_replicas_are_exempt() {
        let c = checker_with(2, &[1]);
        c.inspection.update(0, |r| r.push_commit(0, 5, [1; 32]));
        c.inspection.update(1, |r| r.push_commit(0, 5, [9; 32]));
        assert_eq!(c.check(), 0, "declared-faulty replica may equivocate");
    }

    #[test]
    fn detects_view_regression_within_incarnation_only() {
        let c = checker_with(2, &[]);
        c.inspection.update(0, |r| r.view = 3);
        assert_eq!(c.check(), 0);
        c.inspection.update(0, |r| r.view = 1);
        assert_eq!(c.check(), 1);
        assert_eq!(c.violations()[0].kind, "view-regression");
        // A restart (new incarnation) may rewind the view freely.
        c.inspection.update(1, |r| r.view = 4);
        assert_eq!(c.check(), 0);
        c.inspection.update(1, |r| {
            r.incarnation += 1;
            r.view = 0;
        });
        assert_eq!(c.check(), 0);
    }

    #[test]
    fn detects_checkpoint_divergence() {
        let c = checker_with(2, &[]);
        c.inspection.update(0, |r| r.push_checkpoint(25, [1; 32]));
        c.inspection.update(1, |r| r.push_checkpoint(25, [2; 32]));
        assert_eq!(c.check(), 1);
        assert_eq!(c.violations()[0].kind, "checkpoint-divergence");
    }

    #[test]
    fn recovery_windows_are_judged_once_after_close() {
        let c = checker_with(3, &[]);
        let windows = vec![(1u32, Time(1_000_000), Time(5_000_000))];
        c.inspection.update(1, |r| r.recovering = true);
        // Window still open: no judgement.
        assert_eq!(c.note_recovery_windows(Time(3_000_000), &windows), 0);
        // Deadline passed with the flag still up: one violation, once.
        assert_eq!(c.note_recovery_windows(Time(5_000_000), &windows), 1);
        assert_eq!(c.violations()[0].kind, "recovery-stalled");
        assert_eq!(c.note_recovery_windows(Time(6_000_000), &windows), 0);
    }

    #[test]
    fn completed_recovery_passes_and_later_window_defers() {
        let c = checker_with(3, &[]);
        let windows = vec![
            (1u32, Time(1_000_000), Time(5_000_000)),
            (1u32, Time(6_000_000), Time(9_000_000)),
        ];
        // Caught up in time: no violation.
        c.inspection.update(1, |r| r.recovering = false);
        assert_eq!(c.note_recovery_windows(Time(5_500_000), &windows), 0);
        // The next rotation raised the flag again; judging the first
        // window now (inside the second) must not misfire, and the
        // second window is graded on its own deadline.
        c.inspection.update(1, |r| r.recovering = true);
        assert_eq!(c.note_recovery_windows(Time(7_000_000), &windows), 0);
        assert_eq!(c.note_recovery_windows(Time(9_000_000), &windows), 1);
    }

    #[test]
    fn conflicting_accepts_counter_is_edge_triggered() {
        let c = checker_with(2, &[]);
        assert_eq!(c.note_conflicting_accepts(0), 0);
        assert_eq!(c.note_conflicting_accepts(2), 1);
        assert_eq!(c.note_conflicting_accepts(2), 0, "no new accepts");
        assert_eq!(c.note_conflicting_accepts(3), 1);
    }
}
