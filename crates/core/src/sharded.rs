//! Multi-group sharded deployments: N independent Prime groups (each
//! `3f + 2k + 1` replicas over its own pair of overlays) partitioning the
//! RTU fleet by a deterministic [`ShardMap`], plus one cross-shard
//! coordinator client running ordered 2PC-over-BFT supervisory commands
//! across groups.
//!
//! Ordering inside one Prime group is sequential — a single group's
//! confirmed-updates/s ceiling does not move no matter how fast the hot
//! path gets. Sharding is the way through: each group orders only its own
//! shard's traffic, so aggregate throughput scales with the group count
//! while the (rare) multi-region supervisory command pays the cross-shard
//! coordination cost explicitly.
//!
//! Everything builds into **one** `World`, so the whole sharded system
//! runs deterministically on the simulator and moves to the real-clock
//! runtime with [`ShardedDeployment::into_rt`] — the same substrate pair
//! as the single-group [`Deployment`](crate::deployment::Deployment).

use crate::deployment::{
    build_group, classify_frame, key_base, AppFactory, DeploymentConfig, GroupParts, GroupSpec,
    RtOutcome,
};
use crate::invariant::InvariantChecker;
use crate::report::Report;
use spire_crypto::keys::Signer;
use spire_crypto::{KeyMaterial, KeyStore, NodeId};
use spire_prime::ClientId;
use spire_scada::{ScadaDirectory, ScadaMaster, XShardContext};
use spire_shard::coordinator::{CoordinatorProcess, GroupLink, XCoordConfig};
use spire_shard::{
    CertVerifier, ShardMap, XParticipant, XShardLedger, COORD_CLIENT_ID, COORD_CLIENT_PORT,
    SHARD_KEY_STRIDE,
};
use spire_sim::{ControlOp, LinkConfig, ProcessId, Span, Time, World};
use spire_spines::{OverlayId, SpinesPort};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Parameters of a sharded deployment.
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Per-group layout, workload and protocol knobs. `workload.rtus` is
    /// the **total** RTU fleet, partitioned across groups; `byz` applies
    /// to group 0 only (each group tolerates its own `f`).
    pub base: DeploymentConfig,
    /// Number of replication groups.
    pub shards: u32,
    /// Cross-shard share of supervisory commands, `0.0..1.0` (measured
    /// against the per-group HMI command cadence). `0.0` disables the
    /// coordinator workload.
    pub cross_rate: f64,
    /// Poison every Nth cross-shard transaction (0 = never): poisoned
    /// prepares are rejected by the coordinator group, exercising the
    /// abort path under load.
    pub poison_every: u64,
    /// Manual RTU → shard overrides on top of the stable hash.
    pub overrides: BTreeMap<u32, u32>,
}

impl ShardedConfig {
    /// A sharded variant of [`DeploymentConfig::wide_area`].
    pub fn wide_area(shards: u32, seed: u64) -> ShardedConfig {
        ShardedConfig {
            base: DeploymentConfig::wide_area(seed),
            shards,
            cross_rate: 0.0,
            poison_every: 0,
            overrides: BTreeMap::new(),
        }
    }
}

/// Deterministic cross-shard RTU pairs for the coordinator workload: each
/// group's first couple of RTUs paired with the next group's.
fn cross_pairs(partition: &[Vec<u32>]) -> Vec<(u32, u32)> {
    let n = partition.len();
    if n < 2 {
        return Vec::new();
    }
    let mut pairs = Vec::new();
    for g in 0..n {
        let (a, b) = (&partition[g], &partition[(g + 1) % n]);
        if a.is_empty() || b.is_empty() {
            continue;
        }
        for i in 0..a.len().min(2) {
            pairs.push((a[i], b[i % b.len()]));
        }
    }
    pairs
}

/// New-transaction cadence making cross-shard commands a `cross_rate`
/// fraction of all supervisory commands (`Span::ZERO` disables).
fn cross_interval(cfg: &ShardedConfig, have_pairs: bool) -> Span {
    if cfg.cross_rate <= 0.0 || !have_pairs {
        return Span::ZERO;
    }
    let rate = cfg.cross_rate.min(0.9);
    let cmd_iv_us = cfg.base.workload.command_interval.0.max(1) as f64;
    let intra_per_us = (cfg.shards as f64 * cfg.base.workload.hmis as f64) / cmd_iv_us;
    if intra_per_us <= 0.0 {
        return Span::ZERO;
    }
    let cross_per_us = intra_per_us * rate / (1.0 - rate);
    Span((1.0 / cross_per_us).max(1.0) as u64)
}

/// A fully built sharded system: N groups plus the cross-shard
/// coordinator, all inside one simulation world.
pub struct ShardedDeployment {
    /// The simulation world hosting every group.
    pub world: World,
    /// The configuration the deployment was built from.
    pub cfg: ShardedConfig,
    /// The RTU → shard partition.
    pub map: ShardMap,
    /// Per-group build products (overlays, pids, checkers, builders).
    pub groups: Vec<GroupParts>,
    /// The cross-shard coordinator client process.
    pub coordinator_pid: ProcessId,
    /// Online cross-shard atomicity ledger (all commit XOR all abort).
    pub ledger: Arc<XShardLedger>,
    /// Substrate-agnostic mirror of scheduled control ops (for
    /// [`ShardedDeployment::into_rt`]).
    control_plan: Vec<(Time, ControlOp)>,
}

impl ShardedDeployment {
    /// Builds `cfg.shards` groups and the coordinator.
    ///
    /// # Panics
    ///
    /// Panics on zero shards or an invalid base [`SpireConfig`]
    /// (validated exactly as the single-group build does).
    ///
    /// [`SpireConfig`]: crate::config::SpireConfig
    pub fn build(cfg: ShardedConfig) -> ShardedDeployment {
        assert!(cfg.shards >= 1, "at least one shard");
        cfg.base
            .spire
            .validate(false)
            .expect("invalid spire config");
        let mut world = World::new(cfg.base.seed);
        let material = KeyMaterial::new([0x55u8; 32]);
        // One key space for the whole deployment: group `g` occupies ids
        // `g * SHARD_KEY_STRIDE ..`, so prepare certificates from any
        // group verify in any other.
        let keystore = Arc::new(KeyStore::for_nodes(
            &material,
            SHARD_KEY_STRIDE * cfg.shards,
        ));
        if cfg.base.trace {
            world.enable_tracing(65_536);
        }
        let map = ShardMap::new(cfg.shards).with_overrides(cfg.overrides.clone());
        let partition = map.partition(0..cfg.base.workload.rtus);
        let ledger = Arc::new(XShardLedger::new());
        let verifier = CertVerifier {
            keystore: Arc::clone(&keystore),
            stride: SHARD_KEY_STRIDE,
            replica_base: key_base::REPLICA,
            client: ClientId(COORD_CLIENT_ID),
            f: cfg.base.spire.f,
            mock: cfg.base.mock_sigs,
        };

        let mut groups: Vec<GroupParts> = Vec::new();
        for g in 0..cfg.shards {
            let group_verifier = verifier.clone();
            let group_ledger = Arc::clone(&ledger);
            let factory: AppFactory = Arc::new(move |dir: &ScadaDirectory| {
                Box::new(ScadaMaster::new(dir.clone()).with_xshard(XShardContext {
                    participant: XParticipant::new(g),
                    verifier: group_verifier.clone(),
                    ledger: Arc::clone(&group_ledger),
                }))
            });
            let spec = GroupSpec {
                key_offset: g * SHARD_KEY_STRIDE,
                label: format!("s{g}-"),
                metric_scope: Some(format!("shard{g}")),
                rtus: partition[g as usize].clone(),
                hmis: cfg.base.workload.hmis,
                byz: if g == 0 {
                    cfg.base.byz.clone()
                } else {
                    BTreeMap::new()
                },
                extra_clients: vec![(COORD_CLIENT_ID, COORD_CLIENT_PORT)],
                app_factory: Some(factory),
            };
            groups.push(build_group(
                &mut world, &cfg.base, &spec, &material, &keystore,
            ));
        }

        // The atomicity ledger reports through group 0's online checker.
        {
            let drain_ledger = Arc::clone(&ledger);
            groups[0].checker.add_external(
                "xshard-atomicity",
                Arc::new(move || drain_ledger.drain_violations()),
            );
        }

        // ---------- the cross-shard coordinator client ----------
        let links: Vec<GroupLink> = groups
            .iter()
            .map(|parts| {
                let daemon = parts.external.daemon_pid(OverlayId(parts.hmi_site));
                GroupLink {
                    port: SpinesPort::new(daemon, parts.client_addrs[&COORD_CLIENT_ID]),
                    replica_addrs: parts.replica_addr_external.clone(),
                    signer: Signer::new(
                        material.signing_key(NodeId(parts.prime.client_key_base + COORD_CLIENT_ID)),
                        cfg.base.mock_sigs,
                    ),
                }
            })
            .collect();
        let pairs = cross_pairs(&partition);
        let interval = cross_interval(&cfg, !pairs.is_empty());
        let xcfg = XCoordConfig {
            groups: cfg.shards,
            f: cfg.base.spire.f,
            ..XCoordConfig::default()
        };
        let coordinator = CoordinatorProcess::new(
            xcfg,
            links,
            ClientId(COORD_CLIENT_ID),
            interval,
            map.clone(),
            pairs,
            cfg.poison_every,
        );
        let coordinator_pid = world.add_process("xcoord", Box::new(coordinator));
        for parts in &groups {
            parts
                .external
                .wire_client(&mut world, OverlayId(parts.hmi_site), coordinator_pid);
        }

        ShardedDeployment {
            world,
            cfg,
            map,
            groups,
            coordinator_pid,
            ledger,
            control_plan: Vec::new(),
        }
    }

    /// Runs the simulation for `span`.
    pub fn run_for(&mut self, span: Span) {
        self.world.run_for(span);
    }

    /// True when every group's inspection safety check passes, no online
    /// checker recorded a violation, and the cross-shard ledger is clean
    /// (including violations not yet drained into a checker).
    pub fn safety_ok(&self) -> bool {
        let n = self.cfg.base.spire.total_replicas();
        self.groups.iter().all(|parts| {
            let faulty = parts.declared_faulty.lock().expect("poisoned");
            let correct: Vec<u32> = (0..n).filter(|r| !faulty.contains(r)).collect();
            parts.inspection.check_safety(&correct).is_ok()
        }) && self.groups.iter().all(|p| p.checker.ok())
            && self.ledger.ok()
    }

    /// Builds the aggregate evaluation report (per-shard and cross-shard
    /// sections included via the `shard{g}.*` / `xshard.*` metrics).
    pub fn report(&self) -> Report {
        Report::from_metrics(self.world.metrics(), self.safety_ok())
    }

    /// Schedules substrate-agnostic control ops at `at` (mirrors
    /// [`Deployment::schedule_ops`](crate::deployment::Deployment::schedule_ops)).
    pub fn schedule_ops(&mut self, at: Time, ops: Vec<ControlOp>) {
        self.control_plan
            .extend(ops.iter().map(|op| (at, op.clone())));
        self.world.schedule_control(at, move |w| {
            for op in ops {
                w.apply_control(op);
            }
        });
    }

    /// The coordinator's access links: (HMI-site external daemon,
    /// coordinator) per group — the chaos target for 2PC message loss.
    fn coordinator_links(&self) -> Vec<(ProcessId, ProcessId)> {
        self.groups
            .iter()
            .map(|parts| {
                (
                    parts.external.daemon_pid(OverlayId(parts.hmi_site)),
                    self.coordinator_pid,
                )
            })
            .collect()
    }

    /// Schedules a chaos window against the coordinator's links between
    /// `from` and `until`: every frame to/from the coordinator is dropped
    /// with probability `loss` and duplicated with probability `dup`.
    /// Prepares, commits, aborts and acks all get lost or re-delivered —
    /// atomicity must hold regardless (blocking commit retries + per-xid
    /// idempotence).
    pub fn schedule_coordinator_chaos(&mut self, from: Time, until: Time, loss: f64, dup: f64) {
        let noisy = LinkConfig::local().with_loss(loss).with_dup(dup);
        let pairs = self.coordinator_links();
        let mut ops: Vec<ControlOp> = pairs
            .iter()
            .map(|&(a, b)| ControlOp::SetLinkConfig(a, b, noisy))
            .collect();
        ops.push(ControlOp::Count("xshard.chaos_windows".into(), 1));
        self.schedule_ops(from, ops);
        let restore = pairs
            .iter()
            .map(|&(a, b)| ControlOp::SetLinkConfig(a, b, LinkConfig::local()))
            .collect();
        self.schedule_ops(until, restore);
    }

    /// Installs the online invariant checkers of every group (plus the
    /// cross-shard ledger, which drains through group 0's checker) on a
    /// shared periodic control tick.
    pub fn install_invariant_checker(&mut self, period: Span, horizon: Time) {
        let checkers: Vec<Arc<InvariantChecker>> =
            self.groups.iter().map(|p| Arc::clone(&p.checker)).collect();
        let seed = self.cfg.base.seed;
        self.world.schedule_control(Time(period.0), move |w| {
            tick(w, checkers, period, horizon, seed)
        });

        fn tick(
            w: &mut World,
            checkers: Vec<Arc<InvariantChecker>>,
            period: Span,
            horizon: Time,
            seed: u64,
        ) {
            w.metrics_mut().count("invariant.checks", 1);
            let mut fresh_total = 0usize;
            for (g, checker) in checkers.iter().enumerate() {
                let mut fresh = checker.check();
                if g == 0 {
                    // The conflicting-accept counter is deployment-global;
                    // attribute it to group 0's checker only (once).
                    let accepts = w.metrics().counter("scada.conflicting_accept");
                    fresh += checker.note_conflicting_accepts(accepts);
                }
                if fresh > 0 {
                    for v in checker.recent_violations(fresh) {
                        eprintln!(
                            "INVARIANT VIOLATION [group {g}] [{}] at {:?}: {} (reproduce with \
                             seed {seed})",
                            v.kind,
                            w.now(),
                            v.detail,
                        );
                    }
                }
                fresh_total += fresh;
            }
            if fresh_total > 0 {
                w.metrics_mut()
                    .count("invariant.violations", fresh_total as u64);
            }
            let next = w.now() + period;
            if next <= horizon {
                w.schedule_control(next, move |w| tick(w, checkers, period, horizon, seed));
            }
        }
    }

    /// Moves the assembled sharded system onto the real-clock runtime —
    /// the same actors under wall-clock time, the recorded control plan
    /// replayed at its offsets, every group's checker (and the ledger)
    /// ticking from the control thread.
    pub fn into_rt(self, threads: usize) -> ShardedRt {
        let rt_cfg = if threads == 0 {
            spire_rt::RtConfig::default()
        } else {
            spire_rt::RtConfig::with_threads(threads)
        };
        let hooks = spire_rt::RtHooks {
            classify: Arc::new(classify_frame),
        };
        let n = self.cfg.base.spire.total_replicas();
        let correct: Vec<Vec<u32>> = self
            .groups
            .iter()
            .map(|p| {
                let faulty = p.declared_faulty.lock().expect("poisoned");
                (0..n).filter(|r| !faulty.contains(r)).collect()
            })
            .collect();
        let inspections = self.groups.iter().map(|p| p.inspection.clone()).collect();
        let checkers = self.groups.iter().map(|p| Arc::clone(&p.checker)).collect();
        let runtime = spire_rt::Runtime::from_fabric_with(self.world.into_fabric(), rt_cfg, hooks);
        ShardedRt {
            runtime,
            cfg: self.cfg,
            ledger: self.ledger,
            inspections,
            checkers,
            correct,
            plan: self.control_plan,
        }
    }
}

impl std::fmt::Debug for ShardedDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDeployment")
            .field("shards", &self.groups.len())
            .field("rtus", &self.cfg.base.workload.rtus)
            .finish()
    }
}

/// A sharded deployment hosted on the real-clock runtime.
pub struct ShardedRt {
    /// The running substrate.
    pub runtime: spire_rt::Runtime,
    /// The configuration the deployment was built from.
    pub cfg: ShardedConfig,
    /// Online cross-shard atomicity ledger.
    pub ledger: Arc<XShardLedger>,
    inspections: Vec<spire_prime::Inspection>,
    checkers: Vec<Arc<InvariantChecker>>,
    correct: Vec<Vec<u32>>,
    plan: Vec<(Time, ControlOp)>,
}

impl ShardedRt {
    /// Runs for `span` of wall-clock time, ticking every group's checker
    /// from the control thread, then shuts down and extracts the report.
    pub fn run_for(self, span: Span) -> RtOutcome {
        let checkers = self.checkers.clone();
        let seed = self.cfg.base.seed;
        let mut checks: u64 = 0;
        let mut violations: u64 = 0;
        let mut run = self.runtime.run_with(span, self.plan, |now, _rt| {
            checks += 1;
            for (g, checker) in checkers.iter().enumerate() {
                let fresh = checker.check();
                if fresh > 0 {
                    violations += fresh as u64;
                    for v in checker.recent_violations(fresh) {
                        eprintln!(
                            "INVARIANT VIOLATION [group {g}] [{}] at {:?}: {} (seed {seed}; rt \
                             runs are not reproducible — replay the seed on the sim substrate)",
                            v.kind, now, v.detail,
                        );
                    }
                }
            }
        });
        let accepts = run.metrics.counter("scada.conflicting_accept");
        violations += self.checkers[0].note_conflicting_accepts(accepts) as u64;
        // Decisions recorded after the last control tick drain here.
        for checker in &self.checkers {
            let fresh = checker.check();
            violations += fresh as u64;
        }
        run.metrics.count("invariant.checks", checks);
        if violations > 0 {
            run.metrics.count("invariant.violations", violations);
        }
        run.metrics.sort_series();
        let safety_ok = self
            .inspections
            .iter()
            .zip(&self.correct)
            .all(|(insp, correct)| insp.check_safety(correct).is_ok())
            && self.checkers.iter().all(|c| c.ok())
            && self.ledger.ok();
        let report = Report::from_metrics(&run.metrics, safety_ok);
        RtOutcome {
            report,
            run,
            health: None,
        }
    }
}

impl std::fmt::Debug for ShardedRt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRt")
            .field("shards", &self.checkers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_pairs_span_groups() {
        let partition = vec![vec![0, 3, 6], vec![1, 4], vec![2, 5]];
        let pairs = cross_pairs(&partition);
        assert!(!pairs.is_empty());
        for (a, b) in &pairs {
            let ga = partition.iter().position(|p| p.contains(a)).unwrap();
            let gb = partition.iter().position(|p| p.contains(b)).unwrap();
            assert_ne!(ga, gb, "pair ({a},{b}) must cross groups");
        }
    }

    #[test]
    fn cross_pairs_need_two_groups() {
        assert!(cross_pairs(&[vec![0, 1, 2]]).is_empty());
    }

    #[test]
    fn cross_interval_scales_with_rate() {
        let mut cfg = ShardedConfig::wide_area(2, 1);
        assert_eq!(cross_interval(&cfg, true), Span::ZERO);
        cfg.cross_rate = 0.1;
        let at_10 = cross_interval(&cfg, true);
        assert!(at_10 > Span::ZERO);
        cfg.cross_rate = 0.5;
        let at_50 = cross_interval(&cfg, true);
        assert!(at_50 < at_10, "higher mix means a shorter interval");
        assert_eq!(cross_interval(&cfg, false), Span::ZERO);
    }
}
