//! Spire: network-attack-resilient intrusion-tolerant SCADA for the power
//! grid — a from-scratch reproduction of Babay et al., DSN 2018.
//!
//! Spire keeps a SCADA system operating through **both** system-level
//! intrusions (up to `f` compromised SCADA-master replicas, plus `k`
//! replicas down for proactive recovery) **and** network attacks (DoS
//! against a control center, loss of an entire site). It composes:
//!
//! * the **Prime** BFT replication engine with performance guarantees under
//!   attack ([`spire_prime`]),
//! * the **Spines** intrusion-tolerant overlay network ([`spire_spines`]),
//! * replicated **SCADA masters**, RTU proxies, field devices and HMIs
//!   ([`spire_scada`]),
//! * **proactive recovery** with proof-carrying state transfer,
//!
//! over the deterministic simulation substrate ([`spire_sim`]).
//!
//! This crate ties the pieces into deployable systems:
//!
//! * [`config`] — the `3f + 2k + 1` resource analysis and site placement.
//! * [`deployment`] — builds the full wide-area system in a simulator.
//! * [`attack`] — the attack vocabulary and red-team scenario suite.
//! * [`chaos`] — the seeded chaos adversary with an `f`-budget accountant.
//! * [`invariant`] — online safety-invariant checking during every run.
//! * [`baseline`] — the traditional single-master SCADA comparison system.
//! * [`report`] — latency/availability/safety metrics extraction.
//!
//! # Quickstart
//!
//! ```
//! use spire::deployment::{Deployment, DeploymentConfig};
//! use spire_sim::Span;
//!
//! let mut system = Deployment::build(DeploymentConfig::wide_area(7));
//! system.run_for(Span::secs(20));
//! let report = system.report();
//! assert!(report.safety_ok);
//! assert!(report.updates_confirmed > 0);
//! ```

pub mod attack;
pub mod baseline;
pub mod chaos;
pub mod config;
pub mod deployment;
pub mod health;
pub mod invariant;
pub mod report;
pub mod sharded;

pub use attack::{Attack, Scenario};
pub use baseline::BaselineDeployment;
pub use chaos::{ChaosPlan, FaultBudget};
pub use config::{required_replicas, SiteKind, SpireConfig};
pub use deployment::{
    build_group, classify_frame, AppFactory, Deployment, DeploymentConfig, GroupParts, GroupSpec,
    HealthOptions, RollingRecoveryConfig, RtDeployment, RtOutcome, Substrate, WanModel,
};
pub use health::{
    parse_prometheus, prometheus_text, AlarmKind, AttackDetector, BreachClass, HealthConfig,
    HealthMonitor, HealthTick, MetricsSnapshot, SloTracker, WindowStats,
};
pub use invariant::{InvariantChecker, Violation};
pub use report::{
    ChaosStats, HealthStats, PhaseStat, Provenance, RecoveryStats, Report, ShardStat, XShardStats,
    SLA_MS,
};
pub use sharded::{ShardedConfig, ShardedDeployment, ShardedRt};
