//! The "traditional SCADA" baseline the paper compares against: a single
//! (unreplicated) SCADA master in one control center, reached over plain
//! shortest-path networking. It meets the latency requirement in fair
//! weather and fails under intrusion or a control-center attack — the
//! contrast that motivates Spire.

use crate::deployment::key_base;
use bytes::Bytes;
use spire_crypto::keys::Signer;
use spire_crypto::{KeyMaterial, KeyStore, NodeId};
use spire_prime::client::ClientRouting;
use spire_prime::{Application, ClientId, PrimeConfig, PrimeMsg, ReplicaId};
use spire_scada::{Hmi, Rtu, RtuProxy, ScadaDirectory, ScadaMaster, WorkloadConfig};
use spire_sim::{LinkConfig, ProcessId, Span, Time, World};
use spire_spines::{
    DaemonBehavior, DaemonConfig, Dissemination, OverlayAddr, OverlayId, OverlayNetwork,
    SpinesPort, Topology,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An unreplicated SCADA master: applies every valid signed op immediately
/// and replies. Implements the same client-facing protocol as the
/// replicated masters (so proxies and HMIs are reused unchanged, with
/// `f = 0` quorums).
pub struct SingleMaster {
    app: ScadaMaster,
    keystore: Arc<KeyStore>,
    signer: Signer,
    port: SpinesPort,
    client_addrs: BTreeMap<u32, OverlayAddr>,
    executed: BTreeMap<u32, u64>,
    mock: bool,
}

impl SingleMaster {
    /// Creates the master.
    pub fn new(
        app: ScadaMaster,
        keystore: Arc<KeyStore>,
        signer: Signer,
        port: SpinesPort,
        client_addrs: BTreeMap<u32, OverlayAddr>,
    ) -> SingleMaster {
        let mock = signer.is_mock();
        SingleMaster {
            app,
            keystore,
            signer,
            port,
            client_addrs,
            executed: BTreeMap::new(),
            mock,
        }
    }

    fn send_client(&self, ctx: &mut spire_sim::Context<'_>, client: u32, payload: Bytes) {
        if let Some(addr) = self.client_addrs.get(&client).copied() {
            self.port
                .send(ctx, addr, Dissemination::Shortest, true, payload);
        }
    }
}

impl spire_sim::Process for SingleMaster {
    fn on_start(&mut self, ctx: &mut spire_sim::Context<'_>) {
        self.port.attach(ctx);
    }

    fn on_message(&mut self, ctx: &mut spire_sim::Context<'_>, _from: ProcessId, bytes: &Bytes) {
        let Some((_, payload)) = SpinesPort::decode_deliver(bytes) else {
            return;
        };
        let Ok(PrimeMsg::Op(op)) = PrimeMsg::decode(&payload) else {
            return;
        };
        if !op.verify(&self.keystore, key_base::CLIENT, self.mock) {
            return;
        }
        let last = self.executed.entry(op.client.0).or_insert(0);
        if op.cseq <= *last {
            return;
        }
        *last = op.cseq;
        let outcome = self.app.execute(&op.payload);
        let mut reply = PrimeMsg::Reply {
            replica: ReplicaId(0),
            client: op.client,
            cseq: op.cseq,
            result: Bytes::from(outcome.reply),
            sig: [0; 64],
        };
        reply.sign(&self.signer);
        self.send_client(ctx, op.client.0, reply.encode());
        for notification in outcome.notifications {
            let mut msg = PrimeMsg::Notify {
                replica: ReplicaId(0),
                client: notification.target,
                nseq: notification.nseq,
                payload: Bytes::from(notification.payload),
                sig: [0; 64],
            };
            msg.sign(&self.signer);
            self.send_client(ctx, notification.target.0, msg.encode());
        }
        ctx.count("baseline.ops_executed", 1);
    }
}

impl std::fmt::Debug for SingleMaster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SingleMaster")
    }
}

/// A built baseline system (single control center, single master).
pub struct BaselineDeployment {
    /// The simulation world.
    pub world: World,
    /// The master's process id.
    pub master_pid: ProcessId,
    /// The external overlay (CC + substation hubs).
    pub external: OverlayNetwork,
    /// Proxy process ids.
    pub proxy_pids: Vec<ProcessId>,
    /// Workload used.
    pub workload: WorkloadConfig,
}

impl BaselineDeployment {
    /// Builds the baseline: one control center, `workload.rtus` substations
    /// single-homed to it, one HMI.
    pub fn build(seed: u64, workload: WorkloadConfig, mock_sigs: bool) -> BaselineDeployment {
        let mut world = World::new(seed);
        let material = KeyMaterial::new([0x55u8; 32]);
        let keystore = Arc::new(KeyStore::for_nodes(&material, 4096));
        let n_rtus = workload.rtus;

        // External overlay: CC (node 0) + one hub per substation.
        let mut topology = Topology::new();
        topology.add_node(OverlayId(0));
        for r in 0..n_rtus {
            let hub = OverlayId(1 + r as u16);
            topology.add_node(hub);
            topology.add_edge(hub, OverlayId(0), 3);
        }
        let external = OverlayNetwork::build(
            &mut world,
            &topology,
            DaemonConfig::default(),
            &material,
            &keystore,
            key_base::EXTERNAL_DAEMON,
            |_, _| LinkConfig::wan(3),
            |_| DaemonBehavior::Honest,
        );

        let mut directory = ScadaDirectory::default();
        for r in 0..n_rtus {
            directory.rtu_proxy.insert(r, r);
        }
        directory.hmis.push(1000);

        let mut client_addrs: BTreeMap<u32, OverlayAddr> = BTreeMap::new();
        for r in 0..n_rtus {
            client_addrs.insert(
                r,
                OverlayAddr {
                    node: OverlayId(1 + r as u16),
                    port: 40,
                },
            );
        }
        client_addrs.insert(
            1000,
            OverlayAddr {
                node: OverlayId(0),
                port: 200,
            },
        );
        let master_addr = OverlayAddr {
            node: OverlayId(0),
            port: 100,
        };

        // f = 0: proxies accept a single reply.
        let mut prime = PrimeConfig::new(0, 0);
        prime.n = 1;
        prime.replica_key_base = key_base::REPLICA;
        prime.client_key_base = key_base::CLIENT;

        let master = SingleMaster::new(
            ScadaMaster::new(directory.clone()),
            Arc::clone(&keystore),
            Signer::new(material.signing_key(NodeId(key_base::REPLICA)), mock_sigs),
            SpinesPort::new(external.daemon_pid(OverlayId(0)), master_addr),
            client_addrs.clone(),
        );
        let master_pid = world.add_process("scada-master", Box::new(master));
        external.wire_client(&mut world, OverlayId(0), master_pid);

        let mut proxy_pids = Vec::new();
        for r in 0..n_rtus {
            let hub = OverlayId(1 + r as u16);
            let first = world.process_count() as u32;
            let proxy_pid = ProcessId(first + 1);
            let device = Rtu::new(r, proxy_pid, workload.update_interval, workload.process);
            let device_pid = world.add_process(&format!("rtu-{r}"), Box::new(device));
            let signer = Signer::new(
                material.signing_key(NodeId(key_base::CLIENT + r)),
                mock_sigs,
            );
            let proxy = RtuProxy::new(
                prime.clone(),
                r,
                ClientId(r),
                signer,
                ClientRouting::Spines {
                    port: SpinesPort::new(external.daemon_pid(hub), client_addrs[&r]),
                    addrs: vec![master_addr],
                    mode: Dissemination::Shortest,
                },
                device_pid,
            );
            let got = world.add_process(&format!("proxy-{r}"), Box::new(proxy));
            assert_eq!(got, proxy_pid);
            world.add_link(device_pid, proxy_pid, LinkConfig::local());
            external.wire_client(&mut world, hub, proxy_pid);
            proxy_pids.push(proxy_pid);
        }

        // HMI at the control center.
        let signer = Signer::new(
            material.signing_key(NodeId(key_base::CLIENT + 1000)),
            mock_sigs,
        );
        let hmi = Hmi::new(
            prime,
            ClientId(1000),
            signer,
            ClientRouting::Spines {
                port: SpinesPort::new(external.daemon_pid(OverlayId(0)), client_addrs[&1000]),
                addrs: vec![master_addr],
                mode: Dissemination::Shortest,
            },
            (0..n_rtus).collect(),
            workload.command_interval,
            0,
        );
        let hmi_pid = world.add_process("hmi", Box::new(hmi));
        external.wire_client(&mut world, OverlayId(0), hmi_pid);

        BaselineDeployment {
            world,
            master_pid,
            external,
            proxy_pids,
            workload,
        }
    }

    /// Runs for `span`.
    pub fn run_for(&mut self, span: Span) {
        self.world.run_for(span);
    }

    /// Disconnects the control center's WAN links between `from`/`until`
    /// (the attack the baseline cannot survive).
    pub fn schedule_cc_outage(&mut self, from: Time, until: Time) {
        let cc = self.external.daemon_pid(OverlayId(0));
        let hubs: Vec<ProcessId> = (0..self.workload.rtus)
            .map(|r| self.external.daemon_pid(OverlayId(1 + r as u16)))
            .collect();
        let hubs2 = hubs.clone();
        self.world.schedule_control(from, move |w| {
            for hub in &hubs {
                w.set_link_up(cc, *hub, false);
            }
        });
        self.world.schedule_control(until, move |w| {
            for hub in &hubs2 {
                w.set_link_up(cc, *hub, true);
            }
        });
    }

    /// Compromises the single master (it simply stops serving) at `at` —
    /// the baseline has no tolerance to offer.
    pub fn schedule_master_compromise(&mut self, at: Time) {
        let pid = self.master_pid;
        self.world.schedule_control(at, move |w| {
            w.crash(pid);
        });
    }
}

impl std::fmt::Debug for BaselineDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BaselineDeployment(rtus={})", self.workload.rtus)
    }
}
