//! Live health telemetry: snapshot engine, SLO tracker and
//! performance-attack detector.
//!
//! The paper's core claim is *bounded performance under network attack* —
//! Prime catches a malicious leader by monitoring turnaround times, and a
//! grid operator must see an attack eroding the 100 ms SLA while it
//! happens, not in a post-mortem report. This module turns the end-of-run
//! [`Metrics`] store into an in-flight instrument:
//!
//! * a **snapshot engine** — [`HealthMonitor::observe`] diffs the live
//!   counters/series against the previous observation, producing a
//!   [`MetricsSnapshot`] with per-window rates and percentiles, kept in a
//!   bounded ring;
//! * a **rolling-window SLO tracker** — every window is graded against
//!   the 100 ms latency SLA, a delivery-ratio floor and a no-silence
//!   requirement, with breaches counted per class ([`SloTracker`]);
//! * a **performance-attack detector** — window signatures grounded in
//!   Prime's turnaround-time monitoring flag a slow leader (suspects or
//!   inflated TAT against a learned baseline), a site DoS (link-level
//!   loss drops, which are zero on clean links, or a collapsed delivery
//!   ratio) and a partition (consecutive silent windows), as
//!   [`AlarmKind`] alarms with first-fire timestamps.
//!
//! The monitor is substrate-agnostic: it only reads a [`Metrics`] view —
//! the simulator hands it the world's store on a control tick, the
//! real-clock runtime hands it [`spire_rt::Runtime::live_metrics`]. Every
//! verdict is also *published back* as `health.*` counters and series
//! ([`HealthMonitor::publish`]), so [`crate::report::Report`] and the
//! exporters read one vocabulary regardless of substrate. Prometheus
//! text-exposition rendering ([`prometheus_text`]) and a strict parser
//! for golden tests ([`parse_prometheus`]) live here too.

use spire_sim::stats::percentile;
use spire_sim::{Metrics, Span, Time};
use std::collections::VecDeque;

/// Tuning for the health monitor. Defaults fit the paper's setting: 1 s
/// windows against a 100 ms SLA, a couple of warmup windows while the
/// overlay converges, and thresholds calibrated so the clean multi-seed
/// matrix stays quiet.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Snapshot cadence.
    pub interval: Span,
    /// Snapshots retained in the ring.
    pub ring: usize,
    /// Windows skipped before SLO grading and detection start (system
    /// start-up: overlay route convergence, first view establishment).
    pub warmup: u32,
    /// Latency SLO: window p99 must stay at or under this (ms).
    pub sla_ms: f64,
    /// Delivery SLO: the trailing delivery ratio must stay at or above
    /// this. Updates in flight at a window edge plus the rt substrate's
    /// per-worker metrics publish cadence (sent and confirmed counters
    /// live in different workers' slots, skewed by up to `rate × 250 ms`)
    /// make clean ratios read as low as ~0.92, so the floor leaves real
    /// slack; a redundancy-exhausting attack halves or zeroes delivery
    /// and clears it by a wide margin.
    pub delivery_slo: f64,
    /// Windows the delivery ratio is pooled over (the current window
    /// plus up to `delivery_windows - 1` preceding ones), absorbing
    /// confirm/send boundary jitter at 1 s window sizes.
    pub delivery_windows: usize,
    /// Site-DoS signature: trailing delivery ratio below this is
    /// attack-grade degradation, not SLO jitter.
    pub dos_delivery: f64,
    /// Site-DoS signature: link-level loss drops per window at or above
    /// this fire the alarm (clean links are lossless, so any sustained
    /// value is injected).
    pub dos_min_link_drops: u64,
    /// Slow-leader signature: window TAT p99 above `factor × baseline`
    /// fires (baseline is a learned EWMA of clean windows).
    pub slow_tat_factor: f64,
    /// Slow-leader signature: absolute TAT floor (ms) below which the
    /// factor test never fires, so micro-TATs cannot alarm on noise.
    pub slow_tat_floor_ms: f64,
    /// Partition signature: consecutive fully-silent windows (traffic
    /// expected, nothing confirmed) before the alarm fires.
    pub partition_windows: u32,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            interval: Span::secs(1),
            ring: 120,
            warmup: 3,
            sla_ms: crate::report::SLA_MS,
            delivery_slo: 0.90,
            delivery_windows: 5,
            dos_delivery: 0.75,
            dos_min_link_drops: 25,
            slow_tat_factor: 3.0,
            slow_tat_floor_ms: 150.0,
            partition_windows: 2,
        }
    }
}

/// Per-window deltas and rates computed by the snapshot engine.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowStats {
    /// Updates submitted this window.
    pub sent: u64,
    /// Updates confirmed this window.
    pub confirmed: u64,
    /// Confirmations per second over the window.
    pub rate: f64,
    /// Delivery ratio pooled over the trailing `delivery_windows`
    /// windows, clamped to 1.0 (1.0 when nothing was sent).
    pub delivery: f64,
    /// Window p50 confirm latency, ms (None when nothing confirmed).
    pub p50_ms: Option<f64>,
    /// Window p99 confirm latency, ms.
    pub p99_ms: Option<f64>,
    /// Window p99 of Prime's leader turnaround time, ms.
    pub tat_p99_ms: Option<f64>,
    /// View changes this window.
    pub view_changes: u64,
    /// Suspect-leader messages sent this window.
    pub suspects: u64,
    /// Link-level loss drops this window (sim + rt counters).
    pub link_drops: u64,
    /// Replicas inside an announced proactive-recovery window at the
    /// snapshot instant. A window with `recovering > 0` is graded
    /// *degraded*: expected silence feeds neither the no-silence SLO nor
    /// the partition streak.
    pub recovering: u64,
}

/// One observation of the live metrics: absolute totals plus the
/// [`WindowStats`] delta against the previous snapshot.
#[derive(Clone, Copy, Debug)]
pub struct MetricsSnapshot {
    /// When the snapshot was taken (substrate time).
    pub at: Time,
    /// Monotone snapshot number (0-based).
    pub seq: u64,
    /// Absolute updates submitted since run start.
    pub updates_sent: u64,
    /// Absolute updates confirmed since run start.
    pub updates_confirmed: u64,
    /// Deltas and rates over the window ending at `at`.
    pub window: WindowStats,
}

/// SLO breach classes graded per window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreachClass {
    /// Window p99 confirm latency exceeded the SLA.
    Latency,
    /// Window delivery ratio fell below the SLO floor.
    Delivery,
    /// Traffic was expected but nothing was confirmed all window.
    Silence,
}

impl BreachClass {
    /// Counter the breach is published under.
    pub fn metric(self) -> &'static str {
        match self {
            BreachClass::Latency => "health.slo_breach.latency",
            BreachClass::Delivery => "health.slo_breach.delivery",
            BreachClass::Silence => "health.slo_breach.silence",
        }
    }
}

/// Attack signatures the detector can flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlarmKind {
    /// Leader ordering turnaround inflated (or replicas already sent
    /// suspects) while throughput persists — Prime's latency attack.
    SlowLeader,
    /// Link-level injected loss or collapsed delivery — DoS against a
    /// site's WAN links.
    SiteDos,
    /// Consecutive windows with traffic expected and nothing confirmed.
    Partition,
}

impl AlarmKind {
    /// Counter the alarm is published under.
    pub fn metric(self) -> &'static str {
        match self {
            AlarmKind::SlowLeader => "health.alarm.slow_leader",
            AlarmKind::SiteDos => "health.alarm.site_dos",
            AlarmKind::Partition => "health.alarm.partition",
        }
    }

    /// Static label for trace `Mark` events and watch lines.
    pub fn label(self) -> &'static str {
        match self {
            AlarmKind::SlowLeader => "health.slow_leader",
            AlarmKind::SiteDos => "health.site_dos",
            AlarmKind::Partition => "health.partition",
        }
    }
}

/// Rolling SLO accounting: windows graded and breaches per class.
#[derive(Clone, Copy, Debug, Default)]
pub struct SloTracker {
    /// Windows graded (post-warmup).
    pub windows: u64,
    /// Windows whose p99 exceeded the SLA.
    pub latency_breaches: u64,
    /// Windows whose delivery ratio fell below the floor.
    pub delivery_breaches: u64,
    /// Windows with expected traffic and zero confirmations.
    pub silence_breaches: u64,
    /// Windows graded degraded instead: a replica was inside its
    /// announced recovery window, so reduced throughput or silence was
    /// expected and is not held against the SLOs.
    pub degraded_windows: u64,
}

impl SloTracker {
    fn grade(&mut self, cfg: &HealthConfig, w: &WindowStats, started: bool) -> Vec<BreachClass> {
        self.windows += 1;
        let mut breaches = Vec::new();
        if let Some(p99) = w.p99_ms {
            if p99 > cfg.sla_ms {
                self.latency_breaches += 1;
                breaches.push(BreachClass::Latency);
            }
        }
        if w.sent > 0 && w.delivery < cfg.delivery_slo {
            self.delivery_breaches += 1;
            breaches.push(BreachClass::Delivery);
        }
        if w.recovering > 0 {
            // An announced recovery is in flight: silence is expected
            // (the recovering replica is re-fetching state), so the
            // window is degraded, not in breach of the no-silence SLO.
            self.degraded_windows += 1;
        } else if started && w.confirmed == 0 {
            self.silence_breaches += 1;
            breaches.push(BreachClass::Silence);
        }
        breaches
    }

    /// Total breaches across all classes.
    pub fn breaches(&self) -> u64 {
        self.latency_breaches + self.delivery_breaches + self.silence_breaches
    }
}

/// The performance-attack detector: per-window signature checks against
/// a baseline learned from clean windows.
#[derive(Clone, Debug, Default)]
pub struct AttackDetector {
    /// EWMA of clean-window TAT p99 (ms) — the slow-leader baseline.
    baseline_tat_ms: Option<f64>,
    silent_windows: u32,
    /// Every alarm fired, with the snapshot time it fired at.
    pub alarms: Vec<(Time, AlarmKind)>,
    /// Windows that flagged a slow leader.
    pub slow_leader_windows: u64,
    /// Windows that flagged a site DoS.
    pub site_dos_windows: u64,
    /// Windows that flagged a partition.
    pub partition_windows: u64,
}

impl AttackDetector {
    fn scan(
        &mut self,
        cfg: &HealthConfig,
        at: Time,
        w: &WindowStats,
        started: bool,
    ) -> Vec<AlarmKind> {
        let mut fired = Vec::new();

        // Slow leader: replicas already suspecting is definitive; else an
        // inflated TAT p99 against the learned baseline (with an absolute
        // floor so clean LAN-grade turnarounds never trip the factor).
        let tat_limit = self
            .baseline_tat_ms
            .map(|b| (b * cfg.slow_tat_factor).max(cfg.slow_tat_floor_ms))
            .unwrap_or(cfg.slow_tat_floor_ms);
        let tat_high = w.tat_p99_ms.is_some_and(|t| t > tat_limit);
        if w.suspects > 0 || tat_high {
            self.slow_leader_windows += 1;
            fired.push(AlarmKind::SlowLeader);
        } else if let Some(t) = w.tat_p99_ms {
            // Learn only from quiet windows so an ongoing attack cannot
            // drag the baseline up and mask itself.
            self.baseline_tat_ms = Some(match self.baseline_tat_ms {
                Some(b) => 0.8 * b + 0.2 * t,
                None => t,
            });
        }

        // Site DoS: injected link loss (clean links are lossless) or a
        // collapsed window delivery ratio on real traffic.
        if w.link_drops >= cfg.dos_min_link_drops || (w.sent >= 8 && w.delivery < cfg.dos_delivery)
        {
            self.site_dos_windows += 1;
            fired.push(AlarmKind::SiteDos);
        }

        // Partition: sustained total silence while traffic is expected.
        // Silence inside an announced recovery window is *degraded*, not
        // partition evidence: the streak neither grows (the quiet window
        // is explained) nor resets (a real partition that outlives the
        // recovery window keeps accumulating afterwards).
        if started && w.confirmed == 0 {
            if w.recovering == 0 {
                self.silent_windows += 1;
                if self.silent_windows >= cfg.partition_windows {
                    self.partition_windows += 1;
                    fired.push(AlarmKind::Partition);
                }
            }
        } else {
            self.silent_windows = 0;
        }

        for kind in &fired {
            self.alarms.push((at, *kind));
        }
        fired
    }

    /// When an alarm of `kind` first fired, if ever.
    pub fn first_alarm(&self, kind: AlarmKind) -> Option<Time> {
        self.alarms
            .iter()
            .find(|(_, k)| *k == kind)
            .map(|(t, _)| *t)
    }

    /// True when no alarm of any kind ever fired.
    pub fn quiet(&self) -> bool {
        self.alarms.is_empty()
    }
}

/// What one observation produced: the snapshot plus this window's SLO
/// breaches and detector alarms.
#[derive(Clone, Debug)]
pub struct HealthTick {
    /// The snapshot appended to the ring.
    pub snapshot: MetricsSnapshot,
    /// SLO breach classes this window (empty during warmup).
    pub breaches: Vec<BreachClass>,
    /// Alarms fired this window (empty during warmup).
    pub alarms: Vec<AlarmKind>,
}

/// Absolute counter values carried between observations for delta math.
#[derive(Clone, Copy, Debug, Default)]
struct Absolutes {
    at: Time,
    sent: u64,
    confirmed: u64,
    view_changes: u64,
    suspects: u64,
    link_drops: u64,
}

impl Absolutes {
    fn read(at: Time, m: &Metrics) -> Absolutes {
        Absolutes {
            at,
            sent: m.counter("scada.updates_sent"),
            confirmed: m.counter("scada.updates_confirmed"),
            view_changes: m.counter("prime.view_changes"),
            suspects: m.counter("prime.suspects_sent"),
            link_drops: m.counter("sim.loss_drop") + m.counter("rt.loss_drop"),
        }
    }
}

/// The live health monitor: snapshot engine + SLO tracker + attack
/// detector, with a bounded ring of recent snapshots.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    prev: Option<Absolutes>,
    seq: u64,
    ring: VecDeque<MetricsSnapshot>,
    /// Announced proactive-recovery windows `(replica, start, end)`; a
    /// snapshot taken inside one grades the window degraded instead of
    /// silent/partitioned.
    recovery_windows: Vec<(u32, Time, Time)>,
    /// Rolling SLO accounting.
    pub slo: SloTracker,
    /// The attack detector's state and alarm log.
    pub detector: AttackDetector,
}

impl HealthMonitor {
    /// A monitor with the given tuning.
    pub fn new(cfg: HealthConfig) -> HealthMonitor {
        HealthMonitor {
            cfg,
            prev: None,
            seq: 0,
            ring: VecDeque::new(),
            recovery_windows: Vec::new(),
            slo: SloTracker::default(),
            detector: AttackDetector::default(),
        }
    }

    /// The monitor's tuning.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Announces the schedule of proactive-recovery windows so silence
    /// from a recovering replica is graded `degraded` rather than fed to
    /// the no-silence SLO and the partition detector.
    pub fn set_recovery_windows(&mut self, windows: Vec<(u32, Time, Time)>) {
        self.recovery_windows = windows;
    }

    /// Builder form of [`HealthMonitor::set_recovery_windows`].
    pub fn with_recovery_windows(mut self, windows: Vec<(u32, Time, Time)>) -> HealthMonitor {
        self.recovery_windows = windows;
        self
    }

    /// Takes one snapshot of the live metrics: computes the window delta
    /// against the previous observation, grades the SLOs, runs the
    /// detector, and appends to the ring.
    pub fn observe(&mut self, now: Time, metrics: &Metrics) -> HealthTick {
        let abs = Absolutes::read(now, metrics);
        let prev = self.prev.unwrap_or(Absolutes {
            at: Time(0),
            ..Absolutes::default()
        });
        let window_span = now.since(prev.at);
        let sent = abs.sent.saturating_sub(prev.sent);
        let confirmed = abs.confirmed.saturating_sub(prev.confirmed);
        let lat: Vec<f64> = metrics
            .series_window("scada.update_latency_ms", prev.at, now)
            .iter()
            .map(|(_, v)| *v)
            .collect();
        let tat: Vec<f64> = metrics
            .series_window("prime.tat_ms", prev.at, now)
            .iter()
            .map(|(_, v)| *v)
            .collect();
        // Delivery is pooled over the trailing windows: at 1 s windows a
        // dozen updates are in flight across each edge, so instantaneous
        // confirmed/sent ratios swing wildly even on clean runs.
        let (mut pooled_sent, mut pooled_confirmed) = (sent, confirmed);
        for past in self
            .ring
            .iter()
            .rev()
            .take(self.cfg.delivery_windows.saturating_sub(1))
        {
            pooled_sent += past.window.sent;
            pooled_confirmed += past.window.confirmed;
        }
        let window = WindowStats {
            sent,
            confirmed,
            rate: if window_span.0 == 0 {
                0.0
            } else {
                confirmed as f64 / (window_span.0 as f64 / 1e6)
            },
            delivery: if pooled_sent == 0 {
                1.0
            } else {
                (pooled_confirmed as f64 / pooled_sent as f64).min(1.0)
            },
            p50_ms: (!lat.is_empty()).then(|| percentile(&lat, 50.0)),
            p99_ms: (!lat.is_empty()).then(|| percentile(&lat, 99.0)),
            tat_p99_ms: (!tat.is_empty()).then(|| percentile(&tat, 99.0)),
            view_changes: abs.view_changes.saturating_sub(prev.view_changes),
            suspects: abs.suspects.saturating_sub(prev.suspects),
            link_drops: abs.link_drops.saturating_sub(prev.link_drops),
            recovering: self
                .recovery_windows
                .iter()
                .filter(|(_, start, end)| *start <= now && now < *end)
                .count() as u64,
        };
        let snapshot = MetricsSnapshot {
            at: now,
            seq: self.seq,
            updates_sent: abs.sent,
            updates_confirmed: abs.confirmed,
            window,
        };
        self.prev = Some(abs);
        self.seq += 1;
        self.ring.push_back(snapshot);
        while self.ring.len() > self.cfg.ring.max(1) {
            self.ring.pop_front();
        }
        // `started`: the system has confirmed work before, so a silent
        // window is a real outage, not a not-yet-running system.
        let started = abs.confirmed > confirmed || (abs.confirmed > 0 && confirmed > 0);
        let warm = snapshot.seq >= self.cfg.warmup as u64;
        let (breaches, alarms) = if warm {
            (
                self.slo.grade(&self.cfg, &window, started),
                self.detector.scan(&self.cfg, now, &window, started),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        HealthTick {
            snapshot,
            breaches,
            alarms,
        }
    }

    /// Publishes one tick's verdicts into a metric store as `health.*`
    /// counters and series — the single vocabulary [`crate::Report`] and
    /// the exporters read on every substrate.
    pub fn publish(tick: &HealthTick, m: &mut Metrics) {
        let at = tick.snapshot.at;
        let w = &tick.snapshot.window;
        m.count("health.snapshots", 1);
        m.record("health.window_rate", at, w.rate);
        m.record("health.window_delivery", at, w.delivery);
        if let Some(p99) = w.p99_ms {
            m.record("health.window_p99_ms", at, p99);
        }
        if let Some(tat) = w.tat_p99_ms {
            m.record("health.window_tat_p99_ms", at, tat);
        }
        m.record("health.recovering", at, w.recovering as f64);
        if w.recovering > 0 {
            m.count("health.degraded_windows", 1);
        }
        for b in &tick.breaches {
            m.count(b.metric(), 1);
        }
        for a in &tick.alarms {
            m.count(a.metric(), 1);
        }
    }

    /// Recent snapshots, oldest first (bounded by `cfg.ring`).
    pub fn snapshots(&self) -> impl Iterator<Item = &MetricsSnapshot> {
        self.ring.iter()
    }

    /// The most recent snapshot, if any.
    pub fn latest(&self) -> Option<&MetricsSnapshot> {
        self.ring.back()
    }

    /// The current detector verdict as a short status word.
    pub fn verdict(&self) -> &'static str {
        // Most-specific signature wins for display; any alarm at all
        // makes the run non-quiet either way.
        if self.detector.partition_windows > 0 {
            "PARTITION"
        } else if self.detector.site_dos_windows > 0 {
            "SITE-DOS"
        } else if self.detector.slow_leader_windows > 0 {
            "SLOW-LEADER"
        } else if self.latest().is_some_and(|s| s.window.recovering > 0) {
            "degraded"
        } else {
            "ok"
        }
    }

    /// One-line live status for `run_scenario --watch`.
    pub fn watch_line(&self, tick: &HealthTick) -> String {
        let w = &tick.snapshot.window;
        let p99 = w
            .p99_ms
            .map(|v| format!("{v:.1}ms"))
            .unwrap_or_else(|| "-".to_string());
        format!(
            "[{:>6.1}s] rate={:>6.1}/s p99={:>8} delivery={:>5.3} slo_breaches={} verdict={}",
            tick.snapshot.at.as_secs_f64(),
            w.rate,
            p99,
            w.delivery,
            self.slo.breaches(),
            self.verdict(),
        )
    }
}

// ===================== Prometheus text exposition =====================

/// Sanitizes a metric name into the Prometheus name alphabet and applies
/// the `spire_` namespace prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("spire_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Renders a metric store as Prometheus text exposition (format 0.0.4):
/// counters as `counter`, histograms as `summary` (count/sum plus the
/// 0.5 and 0.99 quantiles), and the last value of every time series as a
/// `gauge`. All names are namespaced `spire_` and sanitized.
pub fn prometheus_text(m: &Metrics) -> String {
    let mut out = String::new();
    for (name, value) in m.counters() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} counter\n{p} {value}\n"));
    }
    for name in m.series_names() {
        let samples = m.series(name);
        let Some((at, last)) = samples.last() else {
            continue;
        };
        let p = prom_name(name);
        out.push_str(&format!(
            "# TYPE {p} gauge\n{p} {} {}\n",
            prom_num(*last),
            at.0 / 1_000 // Prometheus timestamps are milliseconds.
        ));
    }
    for name in m.histogram_names() {
        let Some(h) = m.histogram(name) else { continue };
        if h.count() == 0 {
            continue;
        }
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} summary\n"));
        out.push_str(&format!(
            "{p}{{quantile=\"0.5\"}} {}\n",
            prom_num(h.percentile(50.0))
        ));
        out.push_str(&format!(
            "{p}{{quantile=\"0.99\"}} {}\n",
            prom_num(h.percentile(99.0))
        ));
        out.push_str(&format!(
            "{p}_sum {}\n",
            prom_num(h.mean() * h.count() as f64)
        ));
        out.push_str(&format!("{p}_count {}\n", h.count()));
    }
    out
}

/// One parsed Prometheus sample.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Metric name (with any `{labels}` suffix stripped).
    pub name: String,
    /// Raw label block without braces (empty when unlabelled).
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

/// Strictly parses Prometheus text exposition as produced by
/// [`prometheus_text`]: `# TYPE` comments must be well-formed, every
/// sample line must be `name[{labels}] value [timestamp]` with a finite
/// or ±Inf/NaN value and an integer timestamp. Returns the samples or
/// the first offending line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(t) = rest.strip_prefix("TYPE ") {
                let mut parts = t.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if name.is_empty()
                    || !matches!(
                        kind,
                        "counter" | "gauge" | "summary" | "histogram" | "untyped"
                    )
                {
                    return Err(format!("line {}: malformed TYPE comment: {line}", i + 1));
                }
            }
            continue;
        }
        let (ident, rest) = match line.find(|c: char| c.is_whitespace()) {
            Some(pos) if !line[..pos].contains('{') => (&line[..pos], &line[pos..]),
            _ => match line.find('}') {
                // A labelled sample: the name+labels end at the brace.
                Some(end) => (&line[..=end], &line[end + 1..]),
                None => return Err(format!("line {}: malformed sample: {line}", i + 1)),
            },
        };
        let (name, labels) = match ident.find('{') {
            Some(b) => {
                let Some(stripped) = ident[b..]
                    .strip_prefix('{')
                    .and_then(|s| s.strip_suffix('}'))
                else {
                    return Err(format!("line {}: malformed labels: {line}", i + 1));
                };
                (&ident[..b], stripped)
            }
            None => (ident, ""),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name: {line}", i + 1));
        }
        let mut fields = rest.split_whitespace();
        let Some(value_str) = fields.next() else {
            return Err(format!("line {}: missing value: {line}", i + 1));
        };
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {}: bad value: {line}", i + 1))?,
        };
        if let Some(ts) = fields.next() {
            ts.parse::<i64>()
                .map_err(|_| format!("line {}: bad timestamp: {line}", i + 1))?;
        }
        if fields.next().is_some() {
            return Err(format!("line {}: trailing tokens: {line}", i + 1));
        }
        samples.push(PromSample {
            name: name.to_string(),
            labels: labels.to_string(),
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(m: &mut Metrics, at: Time, sent: u64, confirmed: u64, lat_ms: f64) {
        m.count("scada.updates_sent", sent);
        m.count("scada.updates_confirmed", confirmed);
        for _ in 0..confirmed {
            m.record("scada.update_latency_ms", at, lat_ms);
        }
    }

    #[test]
    fn snapshot_engine_computes_window_deltas() {
        let mut mon = HealthMonitor::new(HealthConfig {
            warmup: 0,
            ..HealthConfig::default()
        });
        let mut m = Metrics::new();
        feed(&mut m, Time(500_000), 10, 10, 30.0);
        let t1 = mon.observe(Time(1_000_000), &m);
        assert_eq!(t1.snapshot.window.sent, 10);
        assert_eq!(t1.snapshot.window.confirmed, 10);
        assert!((t1.snapshot.window.rate - 10.0).abs() < 1e-9);
        feed(&mut m, Time(1_500_000), 5, 4, 40.0);
        let t2 = mon.observe(Time(2_000_000), &m);
        // Second window sees only the delta, not the absolute totals.
        assert_eq!(t2.snapshot.window.sent, 5);
        assert_eq!(t2.snapshot.window.confirmed, 4);
        assert_eq!(t2.snapshot.updates_sent, 15);
        // Delivery pools the trailing windows: (10 + 4) / (10 + 5).
        assert!((t2.snapshot.window.delivery - 14.0 / 15.0).abs() < 1e-9);
        assert_eq!(t2.snapshot.window.p99_ms.map(|v| v.round()), Some(40.0));
        assert_eq!(mon.snapshots().count(), 2);
        assert_eq!(mon.latest().unwrap().seq, 1);
    }

    #[test]
    fn snapshot_delta_math_survives_merged_worker_metrics() {
        // Two workers record interleaved samples; after merge+sort the
        // windowed percentile must see exactly the window's samples.
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.count("scada.updates_sent", 4);
        a.count("scada.updates_confirmed", 2);
        b.count("scada.updates_sent", 2);
        b.count("scada.updates_confirmed", 2);
        a.record("scada.update_latency_ms", Time(1_200_000), 20.0);
        a.record("scada.update_latency_ms", Time(1_900_000), 60.0);
        b.record("scada.update_latency_ms", Time(1_500_000), 40.0);
        b.record("scada.update_latency_ms", Time(2_500_000), 500.0); // next window
        a.merge(&b);
        a.sort_series();
        let mut mon = HealthMonitor::new(HealthConfig {
            warmup: 0,
            ..HealthConfig::default()
        });
        // Baseline observation at t=1s against an empty store start.
        let empty = Metrics::new();
        mon.observe(Time(1_000_000), &empty);
        let tick = mon.observe(Time(2_000_000), &a);
        let w = tick.snapshot.window;
        assert_eq!(w.sent, 6);
        assert_eq!(w.confirmed, 4);
        // Window (1s, 2s] holds 20/40/60 but not the 500 ms outlier.
        assert_eq!(w.p50_ms.map(|v| v.round()), Some(40.0));
        assert!(w.p99_ms.unwrap() < 100.0);
    }

    #[test]
    fn slo_tracker_counts_breach_classes() {
        let cfg = HealthConfig {
            warmup: 0,
            ..HealthConfig::default()
        };
        let mut mon = HealthMonitor::new(cfg);
        let mut m = Metrics::new();
        // Window 1: healthy.
        feed(&mut m, Time(500_000), 10, 10, 20.0);
        let t = mon.observe(Time(1_000_000), &m);
        assert!(t.breaches.is_empty());
        // Window 2: p99 blows the SLA and delivery dips.
        feed(&mut m, Time(1_500_000), 10, 5, 300.0);
        let t = mon.observe(Time(2_000_000), &m);
        assert!(t.breaches.contains(&BreachClass::Latency));
        assert!(t.breaches.contains(&BreachClass::Delivery));
        // Window 3: total silence after traffic had flowed.
        m.count("scada.updates_sent", 10);
        let t = mon.observe(Time(3_000_000), &m);
        assert!(t.breaches.contains(&BreachClass::Silence));
        assert_eq!(mon.slo.latency_breaches, 1);
        assert_eq!(mon.slo.delivery_breaches, 2); // window 3 also missed delivery
        assert_eq!(mon.slo.silence_breaches, 1);
        assert_eq!(mon.slo.windows, 3);
    }

    #[test]
    fn detector_flags_slow_leader_on_suspects_and_tat() {
        let cfg = HealthConfig {
            warmup: 0,
            ..HealthConfig::default()
        };
        let mut mon = HealthMonitor::new(cfg);
        let mut m = Metrics::new();
        // Clean window establishes a TAT baseline around 40 ms.
        feed(&mut m, Time(500_000), 10, 10, 20.0);
        m.record("prime.tat_ms", Time(600_000), 40.0);
        let t = mon.observe(Time(1_000_000), &m);
        assert!(t.alarms.is_empty());
        // TAT p99 jumps past max(3×40, 150) = 150 ms.
        feed(&mut m, Time(1_500_000), 10, 10, 20.0);
        m.record("prime.tat_ms", Time(1_600_000), 800.0);
        let t = mon.observe(Time(2_000_000), &m);
        assert_eq!(t.alarms, vec![AlarmKind::SlowLeader]);
        // A suspect alone also fires, even with quiet TATs.
        feed(&mut m, Time(2_500_000), 10, 10, 20.0);
        m.count("prime.suspects_sent", 1);
        let t = mon.observe(Time(3_000_000), &m);
        assert_eq!(t.alarms, vec![AlarmKind::SlowLeader]);
        assert_eq!(
            mon.detector.first_alarm(AlarmKind::SlowLeader),
            Some(Time(2_000_000))
        );
        assert!(!mon.detector.quiet());
        assert_eq!(mon.verdict(), "SLOW-LEADER");
    }

    #[test]
    fn detector_flags_site_dos_on_link_drops_or_delivery_collapse() {
        let cfg = HealthConfig {
            warmup: 0,
            ..HealthConfig::default()
        };
        let mut mon = HealthMonitor::new(cfg);
        let mut m = Metrics::new();
        feed(&mut m, Time(500_000), 10, 10, 20.0);
        assert!(mon.observe(Time(1_000_000), &m).alarms.is_empty());
        // Injected link loss (clean links never drop).
        feed(&mut m, Time(1_500_000), 10, 10, 20.0);
        m.count("sim.loss_drop", 40);
        let t = mon.observe(Time(2_000_000), &m);
        assert_eq!(t.alarms, vec![AlarmKind::SiteDos]);
        // Collapsed delivery with enough traffic to judge.
        feed(&mut m, Time(2_500_000), 20, 2, 20.0);
        let t = mon.observe(Time(3_000_000), &m);
        assert!(t.alarms.contains(&AlarmKind::SiteDos));
    }

    #[test]
    fn detector_flags_partition_after_consecutive_silence() {
        let cfg = HealthConfig {
            warmup: 0,
            partition_windows: 2,
            // Unpooled delivery isolates the silence streak from the DoS
            // delivery-collapse signature once traffic resumes.
            delivery_windows: 1,
            ..HealthConfig::default()
        };
        let mut mon = HealthMonitor::new(cfg);
        let mut m = Metrics::new();
        feed(&mut m, Time(500_000), 10, 10, 20.0);
        assert!(mon.observe(Time(1_000_000), &m).alarms.is_empty());
        // Two fully-silent windows with pending traffic. (A silent
        // window with traffic also matches the DoS delivery-collapse
        // signature; only the partition verdict needs the streak.)
        m.count("scada.updates_sent", 10);
        let t = mon.observe(Time(2_000_000), &m);
        assert!(
            !t.alarms.contains(&AlarmKind::Partition),
            "one silent window must not flag a partition"
        );
        m.count("scada.updates_sent", 10);
        let t = mon.observe(Time(3_000_000), &m);
        assert!(t.alarms.contains(&AlarmKind::Partition));
        // Traffic resumes: the streak resets.
        feed(&mut m, Time(3_500_000), 10, 10, 20.0);
        assert!(mon.observe(Time(4_000_000), &m).alarms.is_empty());
    }

    #[test]
    fn recovery_window_grades_degraded_not_silent() {
        let cfg = HealthConfig {
            warmup: 0,
            partition_windows: 2,
            delivery_windows: 1,
            ..HealthConfig::default()
        };
        let mut mon = HealthMonitor::new(cfg)
            // Replica 2 recovers between 1.5 s and 4 s.
            .with_recovery_windows(vec![(2, Time(1_500_000), Time(4_000_000))]);
        let mut m = Metrics::new();
        feed(&mut m, Time(500_000), 10, 10, 20.0);
        assert!(mon.observe(Time(1_000_000), &m).alarms.is_empty());
        // Two fully-silent windows inside the announced recovery: no
        // silence breach, no partition alarm — degraded instead. (Traffic
        // kept under the DoS judging threshold to isolate the signatures.)
        m.count("scada.updates_sent", 4);
        let t = mon.observe(Time(2_000_000), &m);
        assert!(!t.breaches.contains(&BreachClass::Silence));
        assert_eq!(t.snapshot.window.recovering, 1);
        m.count("scada.updates_sent", 4);
        let t = mon.observe(Time(3_000_000), &m);
        assert!(!t.alarms.contains(&AlarmKind::Partition));
        assert_eq!(mon.slo.silence_breaches, 0);
        assert_eq!(mon.slo.degraded_windows, 2);
        assert_eq!(mon.verdict(), "degraded");
        // Publish surfaces the gauge and the degraded counter.
        let mut out = Metrics::new();
        HealthMonitor::publish(&t, &mut out);
        assert_eq!(out.values("health.recovering").len(), 1);
        assert_eq!(out.counter("health.degraded_windows"), 1);
        // Past the window, silence counts again and the streak starts
        // from zero (recovery windows never mask a later partition).
        m.count("scada.updates_sent", 4);
        let t = mon.observe(Time(5_000_000), &m);
        assert!(t.breaches.contains(&BreachClass::Silence));
        assert!(!t.alarms.contains(&AlarmKind::Partition));
        m.count("scada.updates_sent", 4);
        let t = mon.observe(Time(6_000_000), &m);
        assert!(t.alarms.contains(&AlarmKind::Partition));
    }

    #[test]
    fn warmup_windows_are_never_graded() {
        let cfg = HealthConfig {
            warmup: 2,
            ..HealthConfig::default()
        };
        let mut mon = HealthMonitor::new(cfg);
        let mut m = Metrics::new();
        // A window that would breach everything.
        feed(&mut m, Time(500_000), 20, 1, 900.0);
        m.count("sim.loss_drop", 100);
        let t = mon.observe(Time(1_000_000), &m);
        assert!(t.breaches.is_empty() && t.alarms.is_empty());
        let t = mon.observe(Time(2_000_000), &m);
        assert!(t.breaches.is_empty() && t.alarms.is_empty());
        assert_eq!(mon.slo.windows, 0);
    }

    #[test]
    fn ring_is_bounded() {
        let cfg = HealthConfig {
            ring: 3,
            warmup: 0,
            ..HealthConfig::default()
        };
        let mut mon = HealthMonitor::new(cfg);
        let m = Metrics::new();
        for i in 1..=10u64 {
            mon.observe(Time(i * 1_000_000), &m);
        }
        assert_eq!(mon.snapshots().count(), 3);
        assert_eq!(mon.latest().unwrap().seq, 9);
    }

    #[test]
    fn publish_writes_health_vocabulary() {
        let mut mon = HealthMonitor::new(HealthConfig {
            warmup: 0,
            ..HealthConfig::default()
        });
        let mut m = Metrics::new();
        feed(&mut m, Time(500_000), 10, 2, 400.0);
        m.count("sim.loss_drop", 50);
        let tick = mon.observe(Time(1_000_000), &m);
        let mut out = Metrics::new();
        HealthMonitor::publish(&tick, &mut out);
        assert_eq!(out.counter("health.snapshots"), 1);
        assert_eq!(out.counter("health.slo_breach.latency"), 1);
        assert_eq!(out.counter("health.slo_breach.delivery"), 1);
        assert_eq!(out.counter("health.alarm.site_dos"), 1);
        assert_eq!(out.values("health.window_rate").len(), 1);
        assert_eq!(out.values("health.window_p99_ms").len(), 1);
    }

    #[test]
    fn watch_line_mentions_verdict() {
        let mut mon = HealthMonitor::new(HealthConfig {
            warmup: 0,
            ..HealthConfig::default()
        });
        let mut m = Metrics::new();
        feed(&mut m, Time(500_000), 10, 10, 20.0);
        let tick = mon.observe(Time(1_000_000), &m);
        let line = mon.watch_line(&tick);
        assert!(line.contains("verdict=ok"), "{line}");
        assert!(line.contains("rate="), "{line}");
    }

    #[test]
    fn prometheus_round_trips_through_parser() {
        let mut m = Metrics::new();
        m.count("health.snapshots", 12);
        m.count("rt.drop.client", 3);
        m.record("health.window_rate", Time(1_000_000), 49.5);
        m.observe("span.total_us", 42_000);
        m.observe("span.total_us", 55_000);
        let text = prometheus_text(&m);
        let samples = parse_prometheus(&text).expect("export must parse");
        let get = |n: &str| {
            samples
                .iter()
                .find(|s| s.name == n && s.labels.is_empty())
                .map(|s| s.value)
        };
        assert_eq!(get("spire_health_snapshots"), Some(12.0));
        assert_eq!(get("spire_rt_drop_client"), Some(3.0));
        assert_eq!(get("spire_health_window_rate"), Some(49.5));
        assert_eq!(get("spire_span_total_us_count"), Some(2.0));
        let q99 = samples
            .iter()
            .find(|s| s.name == "spire_span_total_us" && s.labels.contains("0.99"))
            .expect("quantile sample");
        assert!(q99.value >= 42_000.0);
    }

    #[test]
    fn prometheus_parser_rejects_garbage() {
        assert!(parse_prometheus("not a metric line at all !!").is_err());
        assert!(parse_prometheus("name{unclosed 1").is_err());
        assert!(parse_prometheus("ok_name abc").is_err());
        assert!(parse_prometheus("# TYPE x bogus\n").is_err());
        assert!(parse_prometheus("# HELP anything goes\nx 1\n").is_ok());
    }
}
