//! Evaluation report extracted from a deployment run: the latency,
//! availability and safety numbers the paper's tables and figures are
//! built from.

use spire_sim::stats::{fraction_within, Summary};
use spire_sim::Time;

/// The grid operators' latency requirement used throughout the paper.
pub const SLA_MS: f64 = 100.0;

/// Metrics extracted from a run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Per-update latency samples (proxy submit -> f+1 confirmations), ms.
    pub update_latencies_ms: Vec<f64>,
    /// Timestamped latency samples for timelines, (time, ms).
    pub update_timeline: Vec<(Time, f64)>,
    /// Summary of update latencies.
    pub update_summary: Option<Summary>,
    /// Fraction of updates within the 100 ms SLA.
    pub sla_fraction: f64,
    /// Updates submitted by proxies.
    pub updates_sent: u64,
    /// Updates confirmed by f+1 replicas.
    pub updates_confirmed: u64,
    /// Supervisory commands issued / actuated at devices.
    pub commands_issued: u64,
    /// Commands actually actuated at field devices.
    pub commands_actuated: u64,
    /// End-to-end command latency samples (HMI -> device), ms.
    pub command_latencies_ms: Vec<f64>,
    /// Prime view changes observed.
    pub view_changes: u64,
    /// Proactive recoveries started / completed.
    pub recoveries: (u64, u64),
    /// Result of the safety check over correct replicas.
    pub safety_ok: bool,
    /// Updates confirmed per second (for availability timelines).
    pub throughput_timeline: Vec<(u64, u64)>,
}

impl Report {
    /// Extracts the report from a finished deployment.
    pub fn from_deployment(deployment: &crate::deployment::Deployment) -> Report {
        let metrics = deployment.world.metrics();
        let series = metrics.series("scada.update_latency_ms");
        let update_latencies_ms: Vec<f64> = series.iter().map(|(_, v)| *v).collect();
        let update_timeline = series.to_vec();
        let safety_ok = deployment
            .inspection
            .check_safety(&deployment.correct_replicas())
            .is_ok();
        let mut throughput: std::collections::BTreeMap<u64, u64> = Default::default();
        for (t, _) in series {
            *throughput.entry(t.0 / 1_000_000).or_insert(0) += 1;
        }
        Report {
            update_summary: Summary::of(&update_latencies_ms),
            sla_fraction: fraction_within(&update_latencies_ms, SLA_MS),
            updates_sent: metrics.counter("scada.updates_sent"),
            updates_confirmed: metrics.counter("scada.updates_confirmed"),
            commands_issued: metrics.counter("hmi.commands_sent"),
            commands_actuated: metrics.counter("scada.commands_actuated"),
            command_latencies_ms: metrics.values("scada.command_latency_ms"),
            view_changes: metrics.counter("prime.view_changes"),
            recoveries: (
                metrics.counter("spire.recoveries_started"),
                metrics.counter("prime.recovery_completed"),
            ),
            safety_ok,
            throughput_timeline: throughput.into_iter().collect(),
            update_latencies_ms,
            update_timeline,
        }
    }

    /// Fraction of submitted updates that were confirmed.
    pub fn delivery_ratio(&self) -> f64 {
        if self.updates_sent == 0 {
            return 0.0;
        }
        self.updates_confirmed as f64 / self.updates_sent as f64
    }

    /// Whole seconds (within `[first, last]` confirmation) during which no
    /// update was confirmed — a coarse unavailability measure.
    pub fn silent_seconds(&self) -> u64 {
        if self.throughput_timeline.len() < 2 {
            return 0;
        }
        let first = self.throughput_timeline.first().unwrap().0;
        let last = self.throughput_timeline.last().unwrap().0;
        let covered: std::collections::BTreeSet<u64> =
            self.throughput_timeline.iter().map(|(s, _)| *s).collect();
        (first..=last).filter(|s| !covered.contains(s)).count() as u64
    }

    /// One-line human-readable summary.
    pub fn one_line(&self) -> String {
        match &self.update_summary {
            Some(s) => format!(
                "updates {}/{} ({:.2}% <= {}ms) mean={:.1}ms p99={:.1}ms max={:.1}ms vc={} safety={}",
                self.updates_confirmed,
                self.updates_sent,
                self.sla_fraction * 100.0,
                SLA_MS,
                s.mean,
                s.p99,
                s.max,
                self.view_changes,
                if self.safety_ok { "OK" } else { "VIOLATED" },
            ),
            None => "no updates confirmed".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(timeline: Vec<(u64, u64)>, sent: u64, confirmed: u64) -> Report {
        Report {
            update_latencies_ms: vec![],
            update_timeline: vec![],
            update_summary: None,
            sla_fraction: 0.0,
            updates_sent: sent,
            updates_confirmed: confirmed,
            commands_issued: 0,
            commands_actuated: 0,
            command_latencies_ms: vec![],
            view_changes: 0,
            recoveries: (0, 0),
            safety_ok: true,
            throughput_timeline: timeline,
        }
    }

    #[test]
    fn delivery_ratio_handles_zero_sent() {
        assert_eq!(report_with(vec![], 0, 0).delivery_ratio(), 0.0);
        assert!((report_with(vec![], 10, 9).delivery_ratio() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn silent_seconds_counts_gaps() {
        // Confirmations in seconds 0, 1, 4: seconds 2 and 3 are silent.
        let r = report_with(vec![(0, 5), (1, 5), (4, 5)], 0, 0);
        assert_eq!(r.silent_seconds(), 2);
        // No gap.
        let r = report_with(vec![(0, 5), (1, 5), (2, 5)], 0, 0);
        assert_eq!(r.silent_seconds(), 0);
        // Degenerate timelines.
        assert_eq!(report_with(vec![], 0, 0).silent_seconds(), 0);
        assert_eq!(report_with(vec![(3, 1)], 0, 0).silent_seconds(), 0);
    }

    #[test]
    fn one_line_mentions_safety() {
        let r = report_with(vec![], 0, 0);
        assert_eq!(r.one_line(), "no updates confirmed");
    }
}
