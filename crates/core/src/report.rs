//! Evaluation report extracted from a deployment run: the latency,
//! availability and safety numbers the paper's tables and figures are
//! built from.

use spire_sim::stats::{fraction_within, Summary};
use spire_sim::Time;

/// The grid operators' latency requirement used throughout the paper.
pub const SLA_MS: f64 = 100.0;

/// Version stamp for the report/bench JSON schema; bump when fields
/// change shape so the bench-trajectory tooling can diff runs across
/// PRs. v2 added `health`, provenance fields and this stamp. v3 added
/// `shards` (per-group workload stats) and `xshard` (cross-shard 2PC
/// outcomes) for sharded deployments. v4 added `recovery` (chunked state
/// transfer + log compaction) and `health.degraded_windows`.
pub const REPORT_SCHEMA_VERSION: u32 = 4;

/// Where a report came from: the run substrate and the hardware/build
/// identity — the same provenance `BENCH_*.json` rows carry.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// `"sim"`, `"rt"` or `"rt:<threads>"`.
    pub substrate: String,
    /// CPU cores available on the host.
    pub cores: usize,
    /// Worker threads the run used (1 for the simulator).
    pub threads: usize,
    /// Git revision the binary was built from (`unknown` outside a
    /// checkout).
    pub git_rev: String,
}

impl Provenance {
    /// Provenance for a run, resolving `cores` from the host.
    pub fn of(substrate: &str, threads: usize, git_rev: &str) -> Provenance {
        Provenance {
            substrate: substrate.to_string(),
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            threads,
            git_rev: git_rev.to_string(),
        }
    }
}

/// Live health-telemetry verdicts aggregated over the run, read from the
/// `health.*` counters the [`crate::health::HealthMonitor`] publishes on
/// either substrate (all-zero when no monitor was installed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// Snapshot windows taken.
    pub snapshots: u64,
    /// Windows whose p99 confirm latency exceeded the SLA.
    pub latency_breaches: u64,
    /// Windows whose delivery ratio fell below the SLO floor.
    pub delivery_breaches: u64,
    /// Windows with expected traffic and zero confirmations.
    pub silence_breaches: u64,
    /// Windows that flagged the slow-leader signature.
    pub slow_leader_alarms: u64,
    /// Windows that flagged the site-DoS signature.
    pub site_dos_alarms: u64,
    /// Windows that flagged the partition signature.
    pub partition_alarms: u64,
    /// Windows graded degraded (a replica was inside its announced
    /// proactive-recovery window) instead of silent/partitioned.
    pub degraded_windows: u64,
}

impl HealthStats {
    /// Total SLO breach windows across classes.
    pub fn breaches(&self) -> u64 {
        self.latency_breaches + self.delivery_breaches + self.silence_breaches
    }

    /// Total detector alarm windows across signatures.
    pub fn alarms(&self) -> u64 {
        self.slow_leader_alarms + self.site_dos_alarms + self.partition_alarms
    }

    /// True when the monitor ran and nothing breached or alarmed.
    pub fn quiet(&self) -> bool {
        self.snapshots > 0 && self.breaches() == 0 && self.alarms() == 0
    }
}

/// Proactive-recovery and log-compaction statistics, read from the
/// `prime.recovery_*` / `prime.compaction.*` metrics replicas publish
/// (all-zero when no recovery ran).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoveryStats {
    /// Recoveries the scheduler started (`spire.recoveries_started`).
    pub started: u64,
    /// Recoveries that completed state transfer.
    pub completed: u64,
    /// Snapshot chunks reconstructed from erasure shares.
    pub chunks: u64,
    /// Per-chunk retry rounds against alternate responders.
    pub chunk_retries: u64,
    /// Stale/poisoned transfer accumulators evicted.
    pub accums_evicted: u64,
    /// Median recovery duration, ms (NaN when none completed).
    pub duration_p50_ms: f64,
    /// 99th-percentile recovery duration, ms (NaN when none completed).
    pub duration_p99_ms: f64,
    /// Log-compaction passes across all replicas.
    pub compaction_runs: u64,
    /// Total log entries garbage-collected by compaction.
    pub compaction_evicted: u64,
    /// Final retained PO-Request-store size (last gauge sample).
    pub retained_po: f64,
    /// Final retained preorder-slot count (last gauge sample).
    pub retained_slots: f64,
    /// Final retained ordering-matrix count (last gauge sample).
    pub retained_matrices: f64,
}

impl RecoveryStats {
    /// Fraction of started recoveries that completed (NaN when none
    /// started).
    pub fn completion_rate(&self) -> f64 {
        if self.started == 0 {
            return f64::NAN;
        }
        self.completed as f64 / self.started as f64
    }
}

/// Span-phase histograms to surface in the per-phase latency breakdown,
/// as `(metric name, display label)`. The `span.*` histograms are fed by
/// the tracer when a causal span completes; `overlay.hop_us` is fed per
/// Spines hop. All record microseconds.
const PHASE_METRICS: [(&str, &str); 7] = [
    ("span.overlay_in_us", "submit -> replica recv"),
    ("span.preorder_us", "recv -> preordered"),
    ("span.order_us", "preordered -> ordered"),
    ("span.execute_us", "ordered -> executed"),
    ("span.confirm_us", "executed -> f+1 confirm"),
    ("span.total_us", "submit -> confirm (total)"),
    ("overlay.hop_us", "spines per-hop forward"),
];

/// Latency statistics for one protocol phase (from a log-bucketed
/// histogram; values converted from recorded microseconds).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseStat {
    /// Human-readable phase label.
    pub phase: String,
    /// Histogram metric the stats came from.
    pub metric: String,
    /// Number of samples.
    pub count: u64,
    /// Mean, milliseconds.
    pub mean_ms: f64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Maximum, milliseconds.
    pub max_ms: f64,
}

/// Authentication-cost counters aggregated over all replicas, for
/// measuring the signature-amortization factor of batch signing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuthStats {
    /// Signature operations performed (one per Merkle batch when batch
    /// signing is on, one per message otherwise).
    pub sign_ops: u64,
    /// Full signature verifications performed.
    pub verify_ops: u64,
    /// Verifications answered from the bounded caches.
    pub verify_cache_hits: u64,
    /// Batch flushes (Merkle roots signed).
    pub batch_flushes: u64,
    /// Vote messages covered by batch signatures.
    pub batched_msgs: u64,
    /// Per-link session MACs computed (seal + verify sides).
    pub mac_ops: u64,
    /// Signature verifications replaced by link-MAC authentication.
    pub mac_auth_hits: u64,
    /// Frames rejected for a bad or unknown link MAC.
    pub mac_fail: u64,
}

impl AuthStats {
    /// Average number of votes covered by one batch signature.
    pub fn amortization_factor(&self) -> f64 {
        if self.batch_flushes == 0 {
            return 1.0;
        }
        self.batched_msgs as f64 / self.batch_flushes as f64
    }
}

/// Per-shard workload statistics from a sharded deployment, read from
/// the `shard{N}.*` metrics each group's scoped proxies publish (empty
/// for single-group deployments).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardStat {
    /// Shard (replication group) index.
    pub shard: u32,
    /// Updates submitted by this shard's proxies.
    pub sent: u64,
    /// Updates confirmed by f+1 of this shard's replicas.
    pub confirmed: u64,
    /// Median confirm latency, ms (NaN with no samples).
    pub p50_ms: f64,
    /// 99th-percentile confirm latency, ms (NaN with no samples).
    pub p99_ms: f64,
}

/// Cross-shard 2PC-over-BFT outcomes, read from the `xshard.*` metrics
/// the coordinator publishes (all-zero without a coordinator workload).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct XShardStats {
    /// Cross-shard transactions begun.
    pub commands: u64,
    /// Transactions committed at every participant.
    pub committed: u64,
    /// Transactions aborted at every participant.
    pub aborted: u64,
    /// Prepare/decision retry rounds across all transactions.
    pub retries: u64,
    /// Median end-to-end commit latency, ms (NaN with no commits).
    pub commit_p50_ms: f64,
    /// 99th-percentile commit latency, ms (NaN with no commits).
    pub commit_p99_ms: f64,
}

impl XShardStats {
    /// Fraction of finished transactions that committed (NaN when none
    /// finished).
    pub fn commit_rate(&self) -> f64 {
        let done = self.committed + self.aborted;
        if done == 0 {
            return f64::NAN;
        }
        self.committed as f64 / done as f64
    }
}

/// Fault-injection and robustness counters: what the chaos layer did to
/// the run and how the system absorbed it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Invariant-checker passes executed during the run.
    pub invariant_checks: u64,
    /// Safety-invariant violations detected (must be 0 within budget).
    pub invariant_violations: u64,
    /// Client-side quorums that accepted two conflicting values.
    pub conflicting_accepts: u64,
    /// Frames rejected by the total decoders (malformed/truncated).
    pub decode_failures: u64,
    /// Frames bit-flipped in flight by the wire-fault injector.
    pub corrupted_frames: u64,
    /// Frames duplicated in flight by the wire-fault injector.
    pub duplicated_frames: u64,
    /// rt mailbox sends that were parked and retried with backoff.
    pub mailbox_retries: u64,
    /// rt frames dropped after exhausting retries, per message class
    /// (sorted by class name).
    pub mailbox_dropped: Vec<(String, u64)>,
}

impl ChaosStats {
    /// Total frames dropped after mailbox retry exhaustion.
    pub fn mailbox_dropped_total(&self) -> u64 {
        self.mailbox_dropped.iter().map(|(_, n)| n).sum()
    }
}

/// Metrics extracted from a run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Per-update latency samples (proxy submit -> f+1 confirmations), ms.
    pub update_latencies_ms: Vec<f64>,
    /// Timestamped latency samples for timelines, (time, ms).
    pub update_timeline: Vec<(Time, f64)>,
    /// Summary of update latencies.
    pub update_summary: Option<Summary>,
    /// Fraction of updates within the 100 ms SLA.
    pub sla_fraction: f64,
    /// Updates submitted by proxies.
    pub updates_sent: u64,
    /// Updates confirmed by f+1 replicas.
    pub updates_confirmed: u64,
    /// Supervisory commands issued / actuated at devices.
    pub commands_issued: u64,
    /// Commands actually actuated at field devices.
    pub commands_actuated: u64,
    /// End-to-end command latency samples (HMI -> device), ms.
    pub command_latencies_ms: Vec<f64>,
    /// Prime view changes observed.
    pub view_changes: u64,
    /// Proactive recoveries started / completed.
    pub recoveries: (u64, u64),
    /// Result of the safety check over correct replicas.
    pub safety_ok: bool,
    /// Updates confirmed per second (for availability timelines).
    pub throughput_timeline: Vec<(u64, u64)>,
    /// Per-phase latency breakdown from the tracing spans (empty unless
    /// the deployment ran with tracing enabled).
    pub phase_breakdown: Vec<PhaseStat>,
    /// Aggregate signing/verification cost counters.
    pub auth: AuthStats,
    /// Fault-injection and robustness counters.
    pub chaos: ChaosStats,
    /// Live health-telemetry verdicts (zeros when no monitor ran).
    pub health: HealthStats,
    /// Proactive-recovery + log-compaction stats (zeros without any).
    pub recovery: RecoveryStats,
    /// Per-shard workload stats (empty for single-group deployments).
    pub shards: Vec<ShardStat>,
    /// Cross-shard 2PC outcomes (zeros without a coordinator workload).
    pub xshard: XShardStats,
}

impl Report {
    /// Extracts the report from a finished deployment.
    pub fn from_deployment(deployment: &crate::deployment::Deployment) -> Report {
        let safety_ok = deployment
            .inspection
            .check_safety(&deployment.correct_replicas())
            .is_ok();
        if !safety_ok && deployment.world.tracer().enabled() {
            eprintln!(
                "safety check FAILED — flight recorder tail:\n{}",
                deployment.world.trace_dump_tail(200)
            );
        }
        Report::from_metrics(deployment.world.metrics(), safety_ok)
    }

    /// Builds the report from raw run metrics plus the safety verdict —
    /// the substrate-independent path shared by the simulator
    /// ([`Report::from_deployment`]) and the real-clock runtime.
    pub fn from_metrics(metrics: &spire_sim::Metrics, safety_ok: bool) -> Report {
        let series = metrics.series("scada.update_latency_ms");
        let update_latencies_ms: Vec<f64> = series.iter().map(|(_, v)| *v).collect();
        let update_timeline = series.to_vec();
        let mut phase_breakdown = Vec::new();
        for (name, label) in PHASE_METRICS {
            let Some(h) = metrics.histogram(name) else {
                continue;
            };
            if h.count() == 0 {
                continue;
            }
            phase_breakdown.push(PhaseStat {
                phase: label.to_string(),
                metric: name.to_string(),
                count: h.count(),
                mean_ms: h.mean() / 1000.0,
                p50_ms: h.percentile(50.0) / 1000.0,
                p99_ms: h.percentile(99.0) / 1000.0,
                max_ms: h.max() as f64 / 1000.0,
            });
        }
        let mut throughput: std::collections::BTreeMap<u64, u64> = Default::default();
        for (t, _) in series {
            *throughput.entry(t.0 / 1_000_000).or_insert(0) += 1;
        }
        let mut mailbox_dropped: Vec<(String, u64)> = metrics
            .counter_names()
            .filter(|n| n.starts_with("rt.drop."))
            .map(|n| (n["rt.drop.".len()..].to_string(), metrics.counter(n)))
            .collect();
        mailbox_dropped.sort();
        let chaos = ChaosStats {
            invariant_checks: metrics.counter("invariant.checks"),
            invariant_violations: metrics.counter("invariant.violations"),
            conflicting_accepts: metrics.counter("scada.conflicting_accept"),
            decode_failures: metrics.counter("prime.decode_fail")
                + metrics.counter("spines.decode_fail")
                + metrics.counter("spines.client_decode_fail"),
            corrupted_frames: metrics.counter("sim.corrupted") + metrics.counter("rt.corrupted"),
            duplicated_frames: metrics.counter("sim.dup") + metrics.counter("rt.dup"),
            mailbox_retries: metrics.counter("rt.mailbox_retry"),
            mailbox_dropped,
        };
        let mut shard_ids: Vec<u32> = metrics
            .counter_names()
            .filter_map(|n| {
                n.strip_prefix("shard")?
                    .strip_suffix(".updates_sent")?
                    .parse()
                    .ok()
            })
            .collect();
        shard_ids.sort_unstable();
        let shards = shard_ids
            .into_iter()
            .map(|g| {
                let lat = metrics.values(&format!("shard{g}.update_latency_ms"));
                let summary = Summary::of(&lat);
                ShardStat {
                    shard: g,
                    sent: metrics.counter(&format!("shard{g}.updates_sent")),
                    confirmed: metrics.counter(&format!("shard{g}.updates_confirmed")),
                    p50_ms: summary.as_ref().map_or(f64::NAN, |s| s.p50),
                    p99_ms: summary.as_ref().map_or(f64::NAN, |s| s.p99),
                }
            })
            .collect();
        let commit_lat = metrics.values("xshard.commit_latency_ms");
        let commit_summary = Summary::of(&commit_lat);
        let xshard = XShardStats {
            commands: metrics.counter("xshard.commands"),
            committed: metrics.counter("xshard.commits"),
            aborted: metrics.counter("xshard.aborts"),
            retries: metrics.counter("xshard.retries"),
            commit_p50_ms: commit_summary.as_ref().map_or(f64::NAN, |s| s.p50),
            commit_p99_ms: commit_summary.as_ref().map_or(f64::NAN, |s| s.p99),
        };
        let health = HealthStats {
            snapshots: metrics.counter("health.snapshots"),
            latency_breaches: metrics.counter("health.slo_breach.latency"),
            delivery_breaches: metrics.counter("health.slo_breach.delivery"),
            silence_breaches: metrics.counter("health.slo_breach.silence"),
            slow_leader_alarms: metrics.counter("health.alarm.slow_leader"),
            site_dos_alarms: metrics.counter("health.alarm.site_dos"),
            partition_alarms: metrics.counter("health.alarm.partition"),
            degraded_windows: metrics.counter("health.degraded_windows"),
        };
        let last_gauge = |name: &str| metrics.series(name).last().map_or(f64::NAN, |(_, v)| *v);
        let duration = metrics.histogram("prime.recovery_duration_us");
        let recovery = RecoveryStats {
            started: metrics.counter("spire.recoveries_started"),
            completed: metrics.counter("prime.recovery_completed"),
            chunks: metrics.counter("prime.recovery_chunks"),
            chunk_retries: metrics.counter("prime.recovery_chunk_retries"),
            accums_evicted: metrics.counter("prime.state_accums_evicted"),
            duration_p50_ms: duration
                .filter(|h| h.count() > 0)
                .map_or(f64::NAN, |h| h.percentile(50.0) / 1000.0),
            duration_p99_ms: duration
                .filter(|h| h.count() > 0)
                .map_or(f64::NAN, |h| h.percentile(99.0) / 1000.0),
            compaction_runs: metrics.counter("prime.compaction.runs"),
            compaction_evicted: metrics.counter("prime.compaction.evicted"),
            retained_po: last_gauge("prime.compaction.po_retained"),
            retained_slots: last_gauge("prime.compaction.slots_retained"),
            retained_matrices: last_gauge("prime.compaction.matrices_retained"),
        };
        Report {
            update_summary: Summary::of(&update_latencies_ms),
            sla_fraction: fraction_within(&update_latencies_ms, SLA_MS),
            updates_sent: metrics.counter("scada.updates_sent"),
            updates_confirmed: metrics.counter("scada.updates_confirmed"),
            commands_issued: metrics.counter("hmi.commands_sent"),
            commands_actuated: metrics.counter("scada.commands_actuated"),
            command_latencies_ms: metrics.values("scada.command_latency_ms"),
            view_changes: metrics.counter("prime.view_changes"),
            recoveries: (
                metrics.counter("spire.recoveries_started"),
                metrics.counter("prime.recovery_completed"),
            ),
            safety_ok,
            throughput_timeline: throughput.into_iter().collect(),
            phase_breakdown,
            auth: AuthStats {
                sign_ops: metrics.counter("prime.sign_ops"),
                verify_ops: metrics.counter("prime.verify_ops"),
                verify_cache_hits: metrics.counter("prime.verify_cache_hits"),
                batch_flushes: metrics.counter("prime.batch_flushes"),
                batched_msgs: metrics.counter("prime.batched_msgs"),
                mac_ops: metrics.counter("prime.mac_ops"),
                mac_auth_hits: metrics.counter("prime.mac_auth_hits"),
                mac_fail: metrics.counter("prime.mac_fail"),
            },
            chaos,
            health,
            recovery,
            shards,
            xshard,
            update_latencies_ms,
            update_timeline,
        }
    }

    /// Signature operations (across all replicas) per confirmed update —
    /// the quantity batch signing amortizes.
    pub fn signs_per_update(&self) -> f64 {
        if self.updates_confirmed == 0 {
            return f64::NAN;
        }
        self.auth.sign_ops as f64 / self.updates_confirmed as f64
    }

    /// Full signature verifications per confirmed update — the quantity
    /// per-link session MACs amortize.
    pub fn verifies_per_update(&self) -> f64 {
        if self.updates_confirmed == 0 {
            return f64::NAN;
        }
        self.auth.verify_ops as f64 / self.updates_confirmed as f64
    }

    /// Fraction of submitted updates that were confirmed.
    pub fn delivery_ratio(&self) -> f64 {
        if self.updates_sent == 0 {
            return 0.0;
        }
        self.updates_confirmed as f64 / self.updates_sent as f64
    }

    /// Whole seconds (within `[first, last]` confirmation) during which no
    /// update was confirmed — a coarse unavailability measure.
    pub fn silent_seconds(&self) -> u64 {
        if self.throughput_timeline.len() < 2 {
            return 0;
        }
        let first = self.throughput_timeline.first().unwrap().0;
        let last = self.throughput_timeline.last().unwrap().0;
        let covered: std::collections::BTreeSet<u64> =
            self.throughput_timeline.iter().map(|(s, _)| *s).collect();
        (first..=last).filter(|s| !covered.contains(s)).count() as u64
    }

    /// Renders the per-phase latency breakdown as an aligned text table
    /// (empty string when the run was not traced).
    pub fn phase_table(&self) -> String {
        if self.phase_breakdown.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
            "phase", "count", "mean_ms", "p50_ms", "p99_ms", "max_ms"
        ));
        for p in &self.phase_breakdown {
            out.push_str(&format!(
                "{:<26} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
                p.phase, p.count, p.mean_ms, p.p50_ms, p.p99_ms, p.max_ms
            ));
        }
        out
    }

    /// Serializes the full report as a JSON object (hand-rolled; the
    /// repo carries no JSON dependency). Non-finite floats become `null`.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        let summary = match &self.update_summary {
            Some(s) => format!(
                "{{\"count\":{},\"mean\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
                s.count,
                num(s.mean),
                num(s.min),
                num(s.p50),
                num(s.p90),
                num(s.p99),
                num(s.p999),
                num(s.max),
            ),
            None => "null".to_string(),
        };
        let phases: Vec<String> = self
            .phase_breakdown
            .iter()
            .map(|p| {
                format!(
                    "{{\"phase\":{:?},\"metric\":{:?},\"count\":{},\"mean_ms\":{},\"p50_ms\":{},\"p99_ms\":{},\"max_ms\":{}}}",
                    p.phase,
                    p.metric,
                    p.count,
                    num(p.mean_ms),
                    num(p.p50_ms),
                    num(p.p99_ms),
                    num(p.max_ms),
                )
            })
            .collect();
        let throughput: Vec<String> = self
            .throughput_timeline
            .iter()
            .map(|(s, n)| format!("[{s},{n}]"))
            .collect();
        let dropped: Vec<String> = self
            .chaos
            .mailbox_dropped
            .iter()
            .map(|(class, n)| format!("{{\"class\":{class:?},\"dropped\":{n}}}"))
            .collect();
        let chaos = format!(
            "{{\"invariant_checks\":{},\"invariant_violations\":{},\
             \"conflicting_accepts\":{},\"decode_failures\":{},\
             \"corrupted_frames\":{},\"duplicated_frames\":{},\
             \"mailbox_retries\":{},\"mailbox_dropped\":[{}]}}",
            self.chaos.invariant_checks,
            self.chaos.invariant_violations,
            self.chaos.conflicting_accepts,
            self.chaos.decode_failures,
            self.chaos.corrupted_frames,
            self.chaos.duplicated_frames,
            self.chaos.mailbox_retries,
            dropped.join(","),
        );
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                format!(
                    "{{\"shard\":{},\"sent\":{},\"confirmed\":{},\"p50_ms\":{},\"p99_ms\":{}}}",
                    s.shard,
                    s.sent,
                    s.confirmed,
                    num(s.p50_ms),
                    num(s.p99_ms),
                )
            })
            .collect();
        let xshard = format!(
            "{{\"commands\":{},\"committed\":{},\"aborted\":{},\"retries\":{},\
             \"commit_rate\":{},\"commit_p50_ms\":{},\"commit_p99_ms\":{}}}",
            self.xshard.commands,
            self.xshard.committed,
            self.xshard.aborted,
            self.xshard.retries,
            num(self.xshard.commit_rate()),
            num(self.xshard.commit_p50_ms),
            num(self.xshard.commit_p99_ms),
        );
        let health = format!(
            "{{\"snapshots\":{},\"latency_breaches\":{},\"delivery_breaches\":{},\
             \"silence_breaches\":{},\"slow_leader_alarms\":{},\"site_dos_alarms\":{},\
             \"partition_alarms\":{},\"degraded_windows\":{}}}",
            self.health.snapshots,
            self.health.latency_breaches,
            self.health.delivery_breaches,
            self.health.silence_breaches,
            self.health.slow_leader_alarms,
            self.health.site_dos_alarms,
            self.health.partition_alarms,
            self.health.degraded_windows,
        );
        let recovery = format!(
            "{{\"started\":{},\"completed\":{},\"completion_rate\":{},\"chunks\":{},\
             \"chunk_retries\":{},\"accums_evicted\":{},\"duration_p50_ms\":{},\
             \"duration_p99_ms\":{},\"compaction_runs\":{},\"compaction_evicted\":{},\
             \"retained_po\":{},\"retained_slots\":{},\"retained_matrices\":{}}}",
            self.recovery.started,
            self.recovery.completed,
            num(self.recovery.completion_rate()),
            self.recovery.chunks,
            self.recovery.chunk_retries,
            self.recovery.accums_evicted,
            num(self.recovery.duration_p50_ms),
            num(self.recovery.duration_p99_ms),
            self.recovery.compaction_runs,
            self.recovery.compaction_evicted,
            num(self.recovery.retained_po),
            num(self.recovery.retained_slots),
            num(self.recovery.retained_matrices),
        );
        format!(
            "{{\"schema_version\":{REPORT_SCHEMA_VERSION},\
             \"updates_sent\":{},\"updates_confirmed\":{},\"delivery_ratio\":{},\
             \"sla_fraction\":{},\"sla_ms\":{},\"update_summary\":{},\
             \"commands_issued\":{},\"commands_actuated\":{},\
             \"view_changes\":{},\"recoveries_started\":{},\"recoveries_completed\":{},\
             \"safety_ok\":{},\"silent_seconds\":{},\
             \"auth\":{{\"sign_ops\":{},\"verify_ops\":{},\"verify_cache_hits\":{},\
             \"batch_flushes\":{},\"batched_msgs\":{},\"mac_ops\":{},\
             \"mac_auth_hits\":{},\"mac_fail\":{},\"amortization_factor\":{},\
             \"signs_per_update\":{},\"verifies_per_update\":{}}},\
             \"chaos\":{},\"health\":{},\"recovery\":{},\"shards\":[{}],\"xshard\":{},\
             \"phase_breakdown\":[{}],\"throughput_timeline\":[{}]}}",
            self.updates_sent,
            self.updates_confirmed,
            num(self.delivery_ratio()),
            num(self.sla_fraction),
            num(SLA_MS),
            summary,
            self.commands_issued,
            self.commands_actuated,
            self.view_changes,
            self.recoveries.0,
            self.recoveries.1,
            self.safety_ok,
            self.silent_seconds(),
            self.auth.sign_ops,
            self.auth.verify_ops,
            self.auth.verify_cache_hits,
            self.auth.batch_flushes,
            self.auth.batched_msgs,
            self.auth.mac_ops,
            self.auth.mac_auth_hits,
            self.auth.mac_fail,
            num(self.auth.amortization_factor()),
            num(self.signs_per_update()),
            num(self.verifies_per_update()),
            chaos,
            health,
            recovery,
            shards.join(","),
            xshard,
            phases.join(","),
            throughput.join(","),
        )
    }

    /// Like [`Report::to_json`], with run provenance spliced in as
    /// top-level fields — report JSON then carries the same
    /// `substrate`/`cores`/`threads`/`git_rev` identity as `BENCH_*.json`
    /// rows.
    pub fn to_json_with(&self, prov: &Provenance) -> String {
        let body = self.to_json();
        let fields = format!(
            "{{\"substrate\":{:?},\"cores\":{},\"threads\":{},\"git_rev\":{:?},",
            prov.substrate, prov.cores, prov.threads, prov.git_rev,
        );
        debug_assert!(body.starts_with('{'));
        format!("{fields}{}", &body[1..])
    }

    /// One-line health summary for text reports (present even when no
    /// monitor ran, so its absence is visible too).
    pub fn health_line(&self) -> String {
        let h = &self.health;
        if h.snapshots == 0 {
            return "health: no monitor installed".to_string();
        }
        format!(
            "health: windows={} breaches[lat={} del={} sil={}] alarms[slow_leader={} site_dos={} partition={}]",
            h.snapshots,
            h.latency_breaches,
            h.delivery_breaches,
            h.silence_breaches,
            h.slow_leader_alarms,
            h.site_dos_alarms,
            h.partition_alarms,
        )
    }

    /// One-line human-readable summary.
    pub fn one_line(&self) -> String {
        match &self.update_summary {
            Some(s) => format!(
                "updates {}/{} ({:.2}% <= {}ms) mean={:.1}ms p99={:.1}ms max={:.1}ms vc={} safety={}",
                self.updates_confirmed,
                self.updates_sent,
                self.sla_fraction * 100.0,
                SLA_MS,
                s.mean,
                s.p99,
                s.max,
                self.view_changes,
                if self.safety_ok { "OK" } else { "VIOLATED" },
            ),
            None => "no updates confirmed".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(timeline: Vec<(u64, u64)>, sent: u64, confirmed: u64) -> Report {
        Report {
            update_latencies_ms: vec![],
            update_timeline: vec![],
            update_summary: None,
            sla_fraction: 0.0,
            updates_sent: sent,
            updates_confirmed: confirmed,
            commands_issued: 0,
            commands_actuated: 0,
            command_latencies_ms: vec![],
            view_changes: 0,
            recoveries: (0, 0),
            safety_ok: true,
            throughput_timeline: timeline,
            phase_breakdown: vec![],
            auth: AuthStats::default(),
            chaos: ChaosStats::default(),
            health: HealthStats::default(),
            recovery: RecoveryStats::default(),
            shards: vec![],
            xshard: XShardStats::default(),
        }
    }

    #[test]
    fn delivery_ratio_handles_zero_sent() {
        assert_eq!(report_with(vec![], 0, 0).delivery_ratio(), 0.0);
        assert!((report_with(vec![], 10, 9).delivery_ratio() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn silent_seconds_counts_gaps() {
        // Confirmations in seconds 0, 1, 4: seconds 2 and 3 are silent.
        let r = report_with(vec![(0, 5), (1, 5), (4, 5)], 0, 0);
        assert_eq!(r.silent_seconds(), 2);
        // No gap.
        let r = report_with(vec![(0, 5), (1, 5), (2, 5)], 0, 0);
        assert_eq!(r.silent_seconds(), 0);
        // Degenerate timelines.
        assert_eq!(report_with(vec![], 0, 0).silent_seconds(), 0);
        assert_eq!(report_with(vec![(3, 1)], 0, 0).silent_seconds(), 0);
    }

    #[test]
    fn one_line_mentions_safety() {
        let r = report_with(vec![], 0, 0);
        assert_eq!(r.one_line(), "no updates confirmed");
    }

    #[test]
    fn phase_table_empty_without_tracing() {
        assert!(report_with(vec![], 0, 0).phase_table().is_empty());
    }

    #[test]
    fn amortization_factor_defaults_to_one() {
        assert_eq!(AuthStats::default().amortization_factor(), 1.0);
        let a = AuthStats {
            batch_flushes: 4,
            batched_msgs: 32,
            ..AuthStats::default()
        };
        assert_eq!(a.amortization_factor(), 8.0);
        assert!(report_with(vec![], 0, 0).signs_per_update().is_nan());
    }

    #[test]
    fn to_json_carries_counts_and_phases() {
        let mut r = report_with(vec![(0, 2), (1, 3)], 4, 3);
        r.phase_breakdown.push(PhaseStat {
            phase: "submit -> confirm (total)".to_string(),
            metric: "span.total_us".to_string(),
            count: 7,
            mean_ms: 12.5,
            p50_ms: 11.0,
            p99_ms: 40.0,
            max_ms: 55.0,
        });
        r.auth = AuthStats {
            sign_ops: 20,
            verify_ops: 50,
            verify_cache_hits: 30,
            batch_flushes: 5,
            batched_msgs: 40,
            mac_ops: 100,
            mac_auth_hits: 60,
            mac_fail: 1,
        };
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"sign_ops\":20"));
        assert!(json.contains("\"amortization_factor\":8"));
        assert!(json.contains("\"updates_sent\":4"));
        assert!(json.contains("\"updates_confirmed\":3"));
        assert!(json.contains("\"metric\":\"span.total_us\""));
        assert!(json.contains("\"throughput_timeline\":[[0,2],[1,3]]"));
        assert!(!r.phase_table().is_empty());
    }

    #[test]
    fn to_json_carries_chaos_section() {
        let mut r = report_with(vec![], 0, 0);
        r.chaos = ChaosStats {
            invariant_checks: 60,
            invariant_violations: 0,
            conflicting_accepts: 0,
            decode_failures: 3,
            corrupted_frames: 12,
            duplicated_frames: 40,
            mailbox_retries: 7,
            mailbox_dropped: vec![("liveness".to_string(), 2), ("ordering".to_string(), 1)],
        };
        let json = r.to_json();
        assert!(json.contains("\"chaos\":{\"invariant_checks\":60"));
        assert!(json.contains("{\"class\":\"liveness\",\"dropped\":2}"));
        assert_eq!(r.chaos.mailbox_dropped_total(), 3);
    }

    #[test]
    fn to_json_carries_health_and_schema_version() {
        let mut r = report_with(vec![], 0, 0);
        r.health = HealthStats {
            snapshots: 30,
            latency_breaches: 1,
            delivery_breaches: 0,
            silence_breaches: 0,
            slow_leader_alarms: 4,
            site_dos_alarms: 0,
            partition_alarms: 0,
            degraded_windows: 0,
        };
        let json = r.to_json();
        assert!(json.starts_with(&format!("{{\"schema_version\":{REPORT_SCHEMA_VERSION},")));
        assert!(json.contains("\"health\":{\"snapshots\":30,\"latency_breaches\":1"));
        assert!(json.contains("\"slow_leader_alarms\":4"));
        assert_eq!(r.health.breaches(), 1);
        assert_eq!(r.health.alarms(), 4);
        assert!(!r.health.quiet());
        assert!(r.health_line().contains("slow_leader=4"));
        assert_eq!(
            report_with(vec![], 0, 0).health_line(),
            "health: no monitor installed"
        );
    }

    #[test]
    fn to_json_carries_recovery_section() {
        let mut r = report_with(vec![], 0, 0);
        r.recovery = RecoveryStats {
            started: 10,
            completed: 9,
            chunks: 180,
            chunk_retries: 12,
            accums_evicted: 1,
            duration_p50_ms: 350.0,
            duration_p99_ms: 1200.0,
            compaction_runs: 40,
            compaction_evicted: 5000,
            retained_po: 48.0,
            retained_slots: 25.0,
            retained_matrices: 25.0,
        };
        let json = r.to_json();
        assert!(json.contains("\"recovery\":{\"started\":10,\"completed\":9"));
        assert!(json.contains("\"chunk_retries\":12"));
        assert!(json.contains("\"compaction_evicted\":5000"));
        assert!((r.recovery.completion_rate() - 0.9).abs() < 1e-9);
        // A run without recoveries serializes cleanly: zeros + null rate.
        let plain = report_with(vec![], 0, 0);
        assert!(plain.to_json().contains("\"recovery\":{\"started\":0"));
        assert!(plain.to_json().contains("\"completion_rate\":null"));
        assert!(plain.recovery.completion_rate().is_nan());
    }

    #[test]
    fn to_json_carries_shard_and_xshard_sections() {
        let mut r = report_with(vec![], 20, 18);
        r.shards = vec![
            ShardStat {
                shard: 0,
                sent: 12,
                confirmed: 11,
                p50_ms: 60.0,
                p99_ms: 95.0,
            },
            ShardStat {
                shard: 1,
                sent: 8,
                confirmed: 7,
                p50_ms: 58.0,
                p99_ms: 90.0,
            },
        ];
        r.xshard = XShardStats {
            commands: 10,
            committed: 8,
            aborted: 2,
            retries: 3,
            commit_p50_ms: 250.0,
            commit_p99_ms: 600.0,
        };
        let json = r.to_json();
        assert!(json.contains("\"shards\":[{\"shard\":0,\"sent\":12"));
        assert!(json.contains("{\"shard\":1,\"sent\":8"));
        assert!(json.contains("\"xshard\":{\"commands\":10,\"committed\":8,\"aborted\":2"));
        assert!(json.contains("\"commit_rate\":0.8"));
        assert!((r.xshard.commit_rate() - 0.8).abs() < 1e-9);
        // Single-group reports stay clean: empty array, NaN rate -> null.
        let plain = report_with(vec![], 0, 0);
        assert!(plain.to_json().contains("\"shards\":[]"));
        assert!(plain.to_json().contains("\"commit_rate\":null"));
        assert!(plain.xshard.commit_rate().is_nan());
    }

    #[test]
    fn to_json_with_splices_provenance_fields() {
        let r = report_with(vec![], 2, 1);
        let prov = Provenance::of("rt:4", 4, "abc123def456");
        let json = r.to_json_with(&prov);
        assert!(json.starts_with("{\"substrate\":\"rt:4\",\"cores\":"));
        assert!(json.contains("\"threads\":4"));
        assert!(json.contains("\"git_rev\":\"abc123def456\""));
        assert!(json.contains("\"updates_sent\":2"));
        assert!(json.ends_with('}'));
        assert!(prov.cores >= 1);
    }

    #[test]
    fn health_stats_quiet_requires_a_running_monitor() {
        assert!(!HealthStats::default().quiet(), "no monitor is not quiet");
        let h = HealthStats {
            snapshots: 10,
            ..HealthStats::default()
        };
        assert!(h.quiet());
        let h = HealthStats {
            snapshots: 10,
            site_dos_alarms: 1,
            ..HealthStats::default()
        };
        assert!(!h.quiet());
    }
}
