//! Multi-group sharded-system tests: N Prime groups partitioning the RTU
//! fleet, plus the cross-shard coordinator running 2PC-over-BFT
//! supervisory commands — on both substrates, with and without chaos on
//! the coordinator's links.

use spire::sharded::{ShardedConfig, ShardedDeployment};
use spire_scada::WorkloadConfig;
use spire_sim::{Span, Time};

fn quick_workload() -> WorkloadConfig {
    WorkloadConfig {
        rtus: 8,
        update_interval: Span::millis(500),
        hmis: 1,
        command_interval: Span::secs(5),
        ..Default::default()
    }
}

fn quick_cfg(shards: u32, seed: u64) -> ShardedConfig {
    let mut cfg = ShardedConfig::wide_area(shards, seed);
    cfg.base.workload = quick_workload();
    cfg
}

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

#[test]
fn two_shards_partition_the_fleet_and_both_deliver() {
    let mut system = ShardedDeployment::build(quick_cfg(2, 1));
    system.install_invariant_checker(Span::secs(1), secs(30));
    system.run_for(Span::secs(30));
    let report = system.report();
    assert!(report.safety_ok, "safety violated");
    assert!(
        report.delivery_ratio() > 0.97,
        "aggregate delivery {} ({} of {})",
        report.delivery_ratio(),
        report.updates_confirmed,
        report.updates_sent
    );
    // Every RTU landed in exactly one group and both groups carry load.
    let m = system.world.metrics();
    let s0 = m.counter("shard0.updates_confirmed");
    let s1 = m.counter("shard1.updates_confirmed");
    assert!(s0 > 0 && s1 > 0, "shard confirms {s0}/{s1}");
    assert_eq!(
        s0 + s1,
        report.updates_confirmed,
        "per-shard counters must partition the aggregate"
    );
}

#[test]
fn cross_shard_commands_commit_atomically() {
    let mut cfg = quick_cfg(2, 2);
    cfg.cross_rate = 0.3;
    let mut system = ShardedDeployment::build(cfg);
    system.install_invariant_checker(Span::secs(1), secs(40));
    system.run_for(Span::secs(40));
    let m = system.world.metrics();
    let commands = m.counter("xshard.commands");
    let commits = m.counter("xshard.commits");
    assert!(commands >= 3, "too few cross-shard commands: {commands}");
    assert!(commits >= 2, "too few commits: {commits} of {commands}");
    assert_eq!(system.ledger.violation_count(), 0, "atomicity violated");
    let report = system.report();
    assert!(report.safety_ok);
    // Both participants of each committed transaction actually executed
    // it: the ledger saw a full set of matching decisions.
    let counts = system.ledger.counts();
    assert!(
        counts.committed >= commits,
        "{} < {commits}",
        counts.committed
    );
    assert_eq!(counts.aborted, m.counter("xshard.aborts"));
}

#[test]
fn poisoned_transactions_abort_atomically() {
    let mut cfg = quick_cfg(2, 3);
    cfg.cross_rate = 0.4;
    cfg.poison_every = 2; // every other transaction is rejected at prepare
    let mut system = ShardedDeployment::build(cfg);
    system.install_invariant_checker(Span::secs(1), secs(40));
    system.run_for(Span::secs(40));
    let m = system.world.metrics();
    assert!(m.counter("xshard.commits") > 0, "no commits");
    assert!(m.counter("xshard.aborts") > 0, "no aborts");
    assert!(system.report().safety_ok);
    assert_eq!(system.ledger.violation_count(), 0);
}

#[test]
fn coordinator_chaos_never_breaks_atomicity() {
    let mut cfg = quick_cfg(2, 4);
    cfg.cross_rate = 0.4;
    let mut system = ShardedDeployment::build(cfg);
    // Drop 75% and duplicate 30% of every frame to/from the coordinator
    // for the middle of the run: prepares, certificates, commits and acks
    // all get lost or replayed. (Loss must be savage — a prepare floods to
    // all 6 replicas and only f+1 replies are needed, so mild loss never
    // even triggers a retry.)
    system.schedule_coordinator_chaos(secs(10), secs(30), 0.75, 0.3);
    system.install_invariant_checker(Span::secs(1), secs(45));
    system.run_for(Span::secs(45));
    let m = system.world.metrics();
    assert!(
        m.counter("xshard.commits") > 0,
        "2PC must make progress through chaos (blocking commit)"
    );
    assert!(m.counter("xshard.retries") > 0, "chaos never bit");
    assert_eq!(
        system.ledger.violation_count(),
        0,
        "atomicity violated under chaos"
    );
    assert!(system.report().safety_ok);
}

#[test]
fn sharded_runs_are_deterministic() {
    let run = |seed| {
        let mut cfg = quick_cfg(2, seed);
        cfg.cross_rate = 0.3;
        let mut system = ShardedDeployment::build(cfg);
        system.run_for(Span::secs(20));
        let m = system.world.metrics();
        (
            m.counter("scada.updates_confirmed"),
            m.counter("shard0.updates_confirmed"),
            m.counter("xshard.commands"),
            m.counter("xshard.commits"),
            m.counter("xshard.aborts"),
        )
    };
    assert_eq!(run(11), run(11), "same seed must reproduce exactly");
}

#[test]
fn manual_overrides_move_rtus_between_shards() {
    let mut cfg = quick_cfg(2, 5);
    // Pin every RTU to shard 0 except rtu 1.
    for r in 0..cfg.base.workload.rtus {
        cfg.overrides.insert(r, if r == 1 { 1 } else { 0 });
    }
    let mut system = ShardedDeployment::build(cfg);
    system.run_for(Span::secs(15));
    let m = system.world.metrics();
    let s0 = m.counter("shard0.updates_sent");
    let s1 = m.counter("shard1.updates_sent");
    assert!(s0 > s1 * 4, "override skew not visible: {s0} vs {s1}");
    assert!(s1 > 0, "rtu 1 must still report via shard 1");
    assert!(system.report().safety_ok);
}

#[test]
fn sharded_rt_substrate_matches_sim_semantics() {
    let mut cfg = quick_cfg(2, 6);
    cfg.cross_rate = 0.3;
    let system = ShardedDeployment::build(cfg);
    let outcome = system.into_rt(2).run_for(Span::secs(8));
    let report = &outcome.report;
    assert!(report.safety_ok, "rt safety violated");
    assert!(
        report.delivery_ratio() > 0.9,
        "rt delivery {}",
        report.delivery_ratio()
    );
    let m = &outcome.run.metrics;
    assert!(m.counter("shard0.updates_confirmed") > 0);
    assert!(m.counter("shard1.updates_confirmed") > 0);
    assert!(m.counter("xshard.commits") > 0, "no rt cross-shard commits");
}
