//! Committed-corpus regression: the wire-frame corpus lives as checked-in
//! byte files under `tests/corpus/`, pinned against the in-tree builders
//! (any encoder change shows up as drift here, never silently), and every
//! entry is replayed through a live injector -> sink process pair on both
//! substrates — the discrete-event simulator and the real-clock runtime —
//! with identical decode accounting required on each.
//!
//! To regenerate after a *deliberate* wire-format change:
//! `cargo test -p spire --test corpus_replay regenerate_corpus -- --ignored`

mod common;

use bytes::Bytes;
use spire_prime::msg::{decode_frame, decode_sealed};
use spire_rt::{RtConfig, RtHooks, Runtime};
use spire_scada::{ModbusFrame, ScadaOp};
use spire_sim::{Context, LinkConfig, Process, ProcessId, Span, World};
use spire_spines::OverlayMsg;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn file_name(category: &str, idx: usize) -> String {
    format!("{category}_{idx:02}.bin")
}

/// Reads every committed corpus file in builder order. Panics with a
/// regeneration hint if one is missing.
fn committed_corpus() -> Vec<Bytes> {
    let dir = corpus_dir();
    let mut frames = Vec::new();
    for (category, built) in common::full_corpus() {
        for idx in 0..built.len() {
            let path = dir.join(file_name(category, idx));
            let bytes = std::fs::read(&path).unwrap_or_else(|e| {
                panic!(
                    "missing corpus file {} ({e}); run the ignored \
                     regenerate_corpus test to (re)create it",
                    path.display()
                )
            });
            frames.push(Bytes::from(bytes));
        }
    }
    frames
}

/// Writes the builder corpus to `tests/corpus/`. Ignored by default:
/// regeneration must be a deliberate act after a wire-format change.
#[test]
#[ignore = "regenerates the committed corpus; run only after a deliberate wire change"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (category, built) in common::full_corpus() {
        for (idx, frame) in built.iter().enumerate() {
            std::fs::write(dir.join(file_name(category, idx)), frame).expect("write corpus file");
        }
    }
}

#[test]
fn committed_corpus_matches_builders() {
    let dir = corpus_dir();
    let mut expected_names = Vec::new();
    for (category, built) in common::full_corpus() {
        assert!(!built.is_empty(), "{category} corpus is empty");
        for (idx, frame) in built.iter().enumerate() {
            let name = file_name(category, idx);
            let path = dir.join(&name);
            let committed = std::fs::read(&path).unwrap_or_else(|e| {
                panic!(
                    "missing corpus file {} ({e}); run the ignored \
                     regenerate_corpus test to (re)create it",
                    path.display()
                )
            });
            assert_eq!(
                committed.as_slice(),
                frame.as_ref(),
                "corpus drift in {name}: the committed bytes no longer match \
                 the builder — if the wire change was deliberate, regenerate"
            );
            expected_names.push(name);
        }
    }
    // No orphans: every committed file is owned by a builder entry.
    for entry in std::fs::read_dir(&dir).expect("corpus dir readable") {
        let name = entry.expect("dir entry").file_name().into_string().unwrap();
        assert!(
            expected_names.contains(&name),
            "orphan corpus file {name}: no builder produces it"
        );
    }
}

/// Per-frame decode accounting, identical on the host and inside the
/// substrate sink: each decoder is tried independently.
fn classify(bytes: &[u8]) -> [(&'static str, bool); 4] {
    let prime_ok = matches!(decode_sealed(bytes), Ok(Some(_))) || decode_frame(bytes).is_ok();
    [
        ("corpus.prime_ok", prime_ok),
        ("corpus.overlay_ok", OverlayMsg::decode(bytes).is_ok()),
        ("corpus.scada_ok", ScadaOp::decode(bytes).is_ok()),
        ("corpus.modbus_ok", ModbusFrame::decode(bytes).is_ok()),
    ]
}

/// Sends every corpus frame to the sink, one per millisecond (the stagger
/// exercises real timer scheduling on the rt substrate).
struct Injector {
    sink: ProcessId,
    frames: Vec<Bytes>,
    next: usize,
}

impl Process for Injector {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(Span::millis(1), 1);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: ProcessId, _bytes: &Bytes) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        if let Some(frame) = self.frames.get(self.next) {
            ctx.send(self.sink, frame.clone());
            ctx.count("corpus.sent", 1);
            self.next += 1;
            ctx.set_timer(Span::millis(1), 1);
        }
    }
}

/// Runs every received frame through every decoder and counts accepts.
struct Sink;

impl Process for Sink {
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, bytes: &Bytes) {
        ctx.count("corpus.received", 1);
        for (counter, ok) in classify(bytes) {
            if ok {
                ctx.count(counter, 1);
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_>, _tag: u64) {}
}

fn corpus_world(frames: Vec<Bytes>, seed: u64) -> World {
    let mut world = World::new(seed);
    let sink = world.add_process("sink", Box::new(Sink));
    let injector = world.add_process(
        "injector",
        Box::new(Injector {
            sink,
            frames,
            next: 0,
        }),
    );
    // A loss-free local link: replay must be about decoding, not luck.
    world.add_link(injector, sink, LinkConfig::local());
    world
}

/// The expected counter values for a full replay of `frames`.
fn expectations(frames: &[Bytes]) -> Vec<(&'static str, u64)> {
    let mut prime = 0;
    let mut overlay = 0;
    let mut scada = 0;
    let mut modbus = 0;
    for frame in frames {
        let [(_, p), (_, o), (_, s), (_, m)] = classify(frame);
        prime += p as u64;
        overlay += o as u64;
        scada += s as u64;
        modbus += m as u64;
    }
    vec![
        ("corpus.received", frames.len() as u64),
        ("corpus.prime_ok", prime),
        ("corpus.overlay_ok", overlay),
        ("corpus.scada_ok", scada),
        ("corpus.modbus_ok", modbus),
    ]
}

#[test]
fn corpus_replays_identically_on_both_substrates() {
    let frames = committed_corpus();
    // Every layer's decoder must accept at least one committed frame —
    // otherwise the replay proves nothing about that layer.
    let expected = expectations(&frames);
    for (counter, count) in &expected {
        assert!(*count > 0, "no corpus frame decodes under {counter}");
    }
    let horizon = Span::millis(200 + frames.len() as u64 * 2);

    // Simulator substrate.
    let mut world = corpus_world(frames.clone(), 11);
    world.run_for(horizon);
    for (counter, count) in &expected {
        assert_eq!(
            world.metrics().counter(counter),
            *count,
            "sim substrate: {counter} mismatch"
        );
    }

    // Real-clock runtime substrate, same fabric shape.
    let world = corpus_world(frames, 11);
    let rt = Runtime::from_fabric_with(
        world.into_fabric(),
        RtConfig::with_threads(2),
        RtHooks::default(),
    );
    let run = rt.run_for(horizon);
    for (counter, count) in &expected {
        assert_eq!(
            run.metrics.counter(counter),
            *count,
            "rt substrate: {counter} mismatch"
        );
    }
}
