//! Full-system tests: the complete Spire deployment (two overlays, Prime
//! replicas running SCADA masters, proxies, devices, HMIs) under normal
//! operation and under the paper's attack scenarios.

use spire::deployment::{Deployment, DeploymentConfig};
use spire::BaselineDeployment;
use spire_prime::ByzBehavior;
use spire_scada::WorkloadConfig;
use spire_sim::{Span, Time};

fn quick_workload() -> WorkloadConfig {
    WorkloadConfig {
        rtus: 4,
        update_interval: Span::millis(500),
        hmis: 1,
        command_interval: Span::secs(5),
        ..Default::default()
    }
}

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

#[test]
fn wide_area_normal_operation_meets_sla() {
    let mut cfg = DeploymentConfig::wide_area(1);
    cfg.workload = quick_workload();
    let mut system = Deployment::build(cfg);
    system.run_for(Span::secs(30));
    let report = system.report();
    assert!(report.safety_ok, "safety violated");
    assert!(
        report.delivery_ratio() > 0.97,
        "delivery ratio {} too low ({} of {})",
        report.delivery_ratio(),
        report.updates_confirmed,
        report.updates_sent
    );
    let summary = report.update_summary.expect("has latencies");
    assert!(
        report.sla_fraction > 0.99,
        "SLA fraction {} (summary {summary})",
        report.sla_fraction
    );
    assert_eq!(report.view_changes, 0);
    // Supervisory commands flow HMI -> masters -> proxy -> device.
    assert!(report.commands_actuated > 0, "no commands actuated");
}

#[test]
fn survives_compromised_replica_and_site_disconnect() {
    let mut cfg = DeploymentConfig::wide_area(2);
    cfg.workload = quick_workload();
    cfg.byz.insert(4, ByzBehavior::AckWithhold); // a DC replica is hostile
    let mut system = Deployment::build(cfg);
    // Disconnect the *other* data center for 20 s mid-run: f=1 intrusion +
    // one site loss simultaneously, the paper's combined threat model.
    system.schedule_site_disconnect(3, secs(10), secs(30));
    system.run_for(Span::secs(45));
    let report = system.report();
    assert!(report.safety_ok);
    assert!(
        report.delivery_ratio() > 0.9,
        "delivery ratio {}",
        report.delivery_ratio()
    );
}

#[test]
fn dos_on_primary_control_center_is_tolerated() {
    let mut cfg = DeploymentConfig::wide_area(3);
    cfg.workload = quick_workload();
    let mut system = Deployment::build(cfg);
    system.schedule_site_dos(0, secs(10), secs(25), 0.7);
    system.run_for(Span::secs(40));
    let report = system.report();
    assert!(report.safety_ok);
    // Updates keep flowing through the second control center.
    assert!(
        report.delivery_ratio() > 0.9,
        "delivery ratio {} under DoS",
        report.delivery_ratio()
    );
}

#[test]
fn proactive_recovery_cycle_keeps_service_up() {
    let mut cfg = DeploymentConfig::wide_area(4);
    cfg.workload = quick_workload();
    let mut system = Deployment::build(cfg);
    // Recover a replica every 5 s, full round of 6 within the run.
    system.schedule_proactive_recovery(secs(5), Span::secs(5), secs(35));
    system.run_for(Span::secs(45));
    let report = system.report();
    assert!(report.safety_ok);
    assert!(
        report.recoveries.0 >= 6,
        "recoveries {:?}",
        report.recoveries
    );
    assert!(
        report.recoveries.1 >= 6,
        "completions {:?}",
        report.recoveries
    );
    assert!(
        report.delivery_ratio() > 0.9,
        "delivery ratio {}",
        report.delivery_ratio()
    );
}

#[test]
fn baseline_works_in_fair_weather_but_dies_under_cc_outage() {
    // Fair weather: the unreplicated master meets the SLA.
    let mut baseline = BaselineDeployment::build(5, quick_workload(), true);
    baseline.run_for(Span::secs(20));
    let confirmed = baseline.world.metrics().counter("scada.updates_confirmed");
    let sent = baseline.world.metrics().counter("scada.updates_sent");
    assert!(confirmed * 100 >= sent * 95, "{confirmed}/{sent}");

    // Under a 20 s control-center outage, the baseline confirms nothing.
    let mut baseline = BaselineDeployment::build(6, quick_workload(), true);
    baseline.schedule_cc_outage(secs(10), secs(30));
    baseline.run_for(Span::secs(30));
    let metrics = baseline.world.metrics();
    let during_outage = metrics
        .series("scada.update_latency_ms")
        .iter()
        .filter(|(t, _)| t.0 > 11_000_000 && t.0 < 29_000_000)
        .count();
    assert_eq!(during_outage, 0, "baseline should be dead during outage");
}

#[test]
fn equivalent_load_single_site_is_faster_than_wide_area() {
    let mut lan_cfg = DeploymentConfig::lan(7);
    lan_cfg.workload = quick_workload();
    let mut lan = Deployment::build(lan_cfg);
    lan.run_for(Span::secs(20));
    let lan_mean = lan.report().update_summary.unwrap().mean;

    let mut wan_cfg = DeploymentConfig::wide_area(7);
    wan_cfg.workload = quick_workload();
    let mut wan = Deployment::build(wan_cfg);
    wan.run_for(Span::secs(20));
    let wan_mean = wan.report().update_summary.unwrap().mean;

    assert!(
        lan_mean < wan_mean,
        "LAN ({lan_mean} ms) should beat WAN ({wan_mean} ms)"
    );
}

#[test]
fn hmi_polls_and_commands_roundtrip_in_wide_area() {
    let mut cfg = DeploymentConfig::wide_area(9);
    cfg.workload = WorkloadConfig {
        rtus: 3,
        update_interval: Span::millis(500),
        hmis: 1,
        command_interval: Span::secs(4),
        poll_interval: Span::secs(1),
        ..Default::default()
    };
    let mut system = Deployment::build(cfg);
    system.run_for(Span::secs(20));
    let m = system.world.metrics();
    let polls_sent = m.counter("hmi.polls_sent");
    let polls_acked = m.counter("hmi.polls_acked");
    assert!(polls_sent >= 15, "polls_sent={polls_sent}");
    assert!(
        polls_acked * 100 >= polls_sent * 95,
        "polls {polls_acked}/{polls_sent}"
    );
    // Ordered reads pay the same agreement latency as writes.
    let poll_lat = m.values("hmi.poll_latency_ms");
    assert!(!poll_lat.is_empty());
    let report = system.report();
    assert!(report.safety_ok);
    // The last command may still be in flight at the simulation cutoff.
    assert!(
        report.commands_actuated + 1 >= report.commands_issued,
        "actuated {} of {}",
        report.commands_actuated,
        report.commands_issued
    );
}

#[test]
fn compromise_injection_mid_run_is_tolerated() {
    use spire_prime::ByzBehavior;
    let mut cfg = DeploymentConfig::wide_area(10);
    cfg.workload = quick_workload();
    let mut system = Deployment::build(cfg);
    // Replica 2 falls to the attacker at t=10 s and starts diverging.
    system.schedule_compromise(2, ByzBehavior::DivergentExec, secs(10));
    // It is proactively recovered (evicting the intruder) at t=25 s.
    system.schedule_recovery(2, secs(25));
    system.run_for(Span::secs(40));
    let report = system.report();
    // Correct replicas exclude 2 only while it misbehaves; after recovery
    // it is honest again. The coarse check: service never broke.
    assert!(
        report.delivery_ratio() > 0.95,
        "delivery {}",
        report.delivery_ratio()
    );
    let correct: Vec<u32> = (0..6).filter(|r| *r != 2).collect();
    system.inspection.check_safety(&correct).expect("safety");
}

#[test]
fn sustained_recovery_churn_stays_stable() {
    // Regression test for the summary-sequence reset bug: recoveries every
    // 10 s in perfect resonance with view rotation (each one hits the
    // current leader). The system must sustain full throughput with exactly
    // one view change per recovery and no execution freezes.
    let mut cfg = DeploymentConfig::wide_area(23);
    cfg.workload = WorkloadConfig {
        rtus: 6,
        update_interval: Span::millis(500),
        ..Default::default()
    };
    let mut system = Deployment::build(cfg);
    system.schedule_proactive_recovery(secs(10), Span::secs(10), secs(110));
    system.run_for(Span::secs(120));
    let report = system.report();
    assert!(report.safety_ok);
    assert_eq!(report.recoveries.0, 11);
    assert_eq!(report.recoveries.1, 11, "all recoveries must complete");
    assert!(
        report.delivery_ratio() > 0.97,
        "delivery {}",
        report.delivery_ratio()
    );
    assert_eq!(report.silent_seconds(), 0, "no execution freezes");
    // One clean view change per leader recovery: 6 replicas each count
    // their own VC, so <= ~6 per recovery plus slack.
    assert!(
        report.view_changes <= 11 * 6 + 12,
        "view-change storm: {}",
        report.view_changes
    );
}
