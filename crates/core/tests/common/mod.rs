//! Shared wire-frame corpus: one *valid* frame set per protocol layer
//! (Prime messages, sealed session envelopes, Merkle-batched frames,
//! Spines overlay messages, SCADA ops, Modbus device frames).
//!
//! Two consumers: `fuzz_decoders.rs` mutates these frames to prove the
//! decoders total, and `corpus_replay.rs` pins their exact bytes as
//! committed files under `tests/corpus/` and replays them through live
//! processes on both substrates. Changing any encoder shows up as a
//! corpus-drift failure there — regenerate the files deliberately, never
//! silently.

// Each integration-test binary compiles this module separately and uses
// a different subset of it.
#![allow(dead_code)]

use bytes::Bytes;
use spire_crypto::batch::BatchAttestation;
use spire_prime::msg::{encode_batched, seal_frame, CheckpointMsg, Matrix, SummaryRow};
use spire_prime::{ClientId, ClientOp, PrimeMsg, ReplicaId};
use spire_scada::{CommandAction, ModbusFrame, ScadaOp};
use spire_spines::msg::DataMsg;
use spire_spines::{Dissemination, OverlayId, OverlayMsg};

pub fn prime_corpus() -> Vec<Bytes> {
    let op = ClientOp {
        client: ClientId(3),
        cseq: 17,
        payload: Bytes::from_static(b"update"),
        sig: [7u8; 64],
    };
    let row = SummaryRow {
        replica: ReplicaId(1),
        sseq: 9,
        vector: spire_prime::msg::AruVector(vec![4, 5, 6, 0, 1, 2]),
        sig: [9u8; 64],
    };
    let msgs = vec![
        PrimeMsg::Op(op.clone()),
        PrimeMsg::PoRequest {
            origin: ReplicaId(0),
            po_seq: 12,
            ops: vec![op.clone(), op.clone()],
            sig: [1u8; 64],
        },
        PrimeMsg::PoAck {
            replica: ReplicaId(2),
            origin: ReplicaId(0),
            po_seq: 12,
            digest: [3u8; 32],
            sig: [2u8; 64],
        },
        PrimeMsg::PoSummary(row.clone()),
        PrimeMsg::PrePrepare {
            view: 1,
            seq: 40,
            matrix: Matrix {
                rows: vec![row.clone(), row],
            },
            sig: [4u8; 64],
        },
        PrimeMsg::Prepare {
            replica: ReplicaId(4),
            view: 1,
            seq: 40,
            digest: [5u8; 32],
            sig: [5u8; 64],
        },
        PrimeMsg::Commit {
            replica: ReplicaId(4),
            view: 1,
            seq: 40,
            digest: [5u8; 32],
            sig: [6u8; 64],
        },
        PrimeMsg::Ping {
            replica: ReplicaId(1),
            nonce: 777,
        },
        PrimeMsg::Pong {
            replica: ReplicaId(2),
            nonce: 777,
        },
        PrimeMsg::Suspect {
            replica: ReplicaId(3),
            view: 2,
            sig: [8u8; 64],
        },
        PrimeMsg::Checkpoint(CheckpointMsg {
            replica: ReplicaId(0),
            seq: 50,
            digest: [11u8; 32],
            sig: [12u8; 64],
        }),
        PrimeMsg::StateReq {
            replica: ReplicaId(5),
            have_seq: 25,
            sig: [13u8; 64],
        },
        PrimeMsg::ReconReq {
            replica: ReplicaId(1),
            origin: ReplicaId(3),
            po_seq: 8,
        },
        PrimeMsg::Notify {
            replica: ReplicaId(0),
            client: ClientId(7),
            nseq: 3,
            payload: Bytes::from_static(b"breaker"),
            sig: [14u8; 64],
        },
        PrimeMsg::Reply {
            replica: ReplicaId(0),
            client: ClientId(7),
            cseq: 3,
            result: Bytes::from_static(b"ok"),
            sig: [15u8; 64],
        },
    ];
    let mut frames: Vec<Bytes> = msgs.iter().map(|m| m.encode()).collect();
    // Sealed session envelope and a Merkle-batched frame over a vote.
    let inner = msgs[6].encode();
    frames.push(seal_frame(ReplicaId(4), &[42u8; 32], &inner));
    let attestation = BatchAttestation {
        leaf_index: 1,
        leaf_count: 4,
        path: vec![[21u8; 32], [22u8; 32]],
        root_sig: [23u8; 64],
    };
    frames.push(encode_batched(ReplicaId(4), &attestation, &inner));
    frames
}

pub fn overlay_corpus() -> Vec<Bytes> {
    let data = DataMsg {
        src: OverlayId(0),
        src_port: 2,
        dst: OverlayId(6),
        dst_port: 1,
        seq: 55,
        mode: Dissemination::DisjointPaths(3),
        ttl: 12,
        route: vec![OverlayId(0), OverlayId(4), OverlayId(6)],
        route_idx: 1,
        reliable: true,
        payload: Bytes::from_static(b"prime frame inside"),
    };
    [
        OverlayMsg::Hello {
            from: OverlayId(3),
            seq: 10,
        },
        OverlayMsg::Lsa {
            origin: OverlayId(2),
            seq: 4,
            neighbors: vec![(OverlayId(1), 10), (OverlayId(3), 12)],
            sig: [31u8; 64],
        },
        OverlayMsg::Data {
            frame_id: 99,
            msg: data,
        },
        OverlayMsg::HopAck { frame_id: 99 },
        OverlayMsg::ClientAttach { port: 7 },
        OverlayMsg::ClientSend {
            dst: OverlayId(6),
            dst_port: 1,
            mode: Dissemination::Flood,
            reliable: false,
            payload: Bytes::from_static(b"payload"),
        },
        OverlayMsg::ClientDeliver {
            src: OverlayId(0),
            src_port: 2,
            payload: Bytes::from_static(b"payload"),
        },
    ]
    .iter()
    .map(|m| m.encode())
    .collect()
}

pub fn scada_corpus() -> Vec<Bytes> {
    [
        ScadaOp::DeviceUpdate {
            rtu: 2,
            ts_us: 1_500_000,
            registers: vec![(0, 230), (1, 49)],
            breakers: vec![(0, true), (1, false)],
        },
        ScadaOp::Command {
            rtu: 2,
            ts_us: 1_600_000,
            action: CommandAction::OpenBreaker(1),
        },
        ScadaOp::Command {
            rtu: 3,
            ts_us: 1_700_000,
            action: CommandAction::SetRegister(4, 500),
        },
        ScadaOp::ReadState { rtu: 1 },
    ]
    .iter()
    .map(|m| m.encode())
    .collect()
}

pub fn modbus_corpus() -> Vec<Bytes> {
    [
        ModbusFrame::ReadRegisters {
            txn: 1,
            addr: 0,
            count: 8,
        },
        ModbusFrame::ReadResponse {
            txn: 1,
            addr: 0,
            values: vec![230, 49, 500],
        },
        ModbusFrame::WriteCoil {
            txn: 2,
            coil: 1,
            on: false,
        },
        ModbusFrame::WriteRegister {
            txn: 3,
            addr: 4,
            value: 500,
        },
        ModbusFrame::WriteAck { txn: 3 },
        ModbusFrame::Report {
            ts_us: 1_000_000,
            registers: vec![(0, 230)],
            coils: vec![(0, true)],
        },
    ]
    .iter()
    .map(|m| m.encode())
    .collect()
}

/// `(category, frames)` for every layer, in the committed-file order.
pub fn full_corpus() -> Vec<(&'static str, Vec<Bytes>)> {
    vec![
        ("prime", prime_corpus()),
        ("overlay", overlay_corpus()),
        ("scada", scada_corpus()),
        ("modbus", modbus_corpus()),
    ]
}
