//! Chaos-soak tests: the seeded chaos adversary and the online invariant
//! checker, on both substrates.
//!
//! Tier-1 keeps the runs short (a few simulated/wall seconds); the 60 s
//! soaks and the full red-team-suite-on-rt pass are `#[ignore]`d and run
//! by the dedicated CI `chaos-soak` job with `--ignored`.

use spire::attack::Scenario;
use spire::chaos::ChaosPlan;
use spire::deployment::{Deployment, DeploymentConfig};
use spire_scada::WorkloadConfig;
use spire_sim::{Span, Time};

fn chaos_config(seed: u64) -> DeploymentConfig {
    let mut cfg = DeploymentConfig::wide_area(seed);
    cfg.workload = WorkloadConfig {
        rtus: 6,
        update_interval: Span::millis(500),
        ..Default::default()
    };
    cfg
}

/// Runs one seeded chaos plan on the simulator and returns the report.
fn chaos_run(seed: u64, duration_s: u64) -> spire::Report {
    let cfg = chaos_config(seed);
    let plan = ChaosPlan::generate(seed, &cfg.spire, Span::secs(duration_s));
    let scenario = plan.scenario();
    let mut system = Deployment::build(cfg);
    scenario.apply(&mut system);
    system.run_for(scenario.duration + Span::secs(5));
    system.report()
}

/// A short chaos run at a fixed seed must end clean: the generated fault
/// schedule stays inside the f=1/k=1 envelope, so the protocol has to
/// absorb every injected fault without a safety violation.
#[test]
fn short_chaos_run_is_clean() {
    let report = chaos_run(5, 20);
    assert!(report.safety_ok, "safety broke under the chaos schedule");
    assert_eq!(
        report.chaos.invariant_violations, 0,
        "invariant violations under seed 5: {:?}",
        report.chaos
    );
    assert!(
        report.chaos.invariant_checks > 0,
        "the online checker never ticked"
    );
    assert!(report.updates_confirmed > 0, "system made no progress");
}

/// Chaos is reproducible: the same seed yields byte-identical reports
/// (plan generation, fault application, and the simulated system are all
/// deterministic functions of the seed).
#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    let a = chaos_run(11, 15).to_json();
    let b = chaos_run(11, 15).to_json();
    assert_eq!(a, b, "same-seed chaos runs diverged");
}

/// The fault control plane crosses substrates: a kill + proactive
/// recovery scheduled through the deployment replays on the real-clock
/// runtime at wall-clock offsets, with the invariant checker ticking from
/// the control thread.
#[test]
fn chaos_control_plane_runs_on_rt() {
    let mut system = Deployment::build(chaos_config(31));
    system.schedule_kill(4, Time(500_000));
    system.schedule_recovery(4, Time(1_500_000));
    system.install_invariant_checker(Span::millis(500), Time(3_000_000));
    let outcome = system.into_rt(2).run_for(Span::secs(3));
    let m = &outcome.run.metrics;
    assert_eq!(m.counter("rt.crashed"), 1, "kill did not replay on rt");
    assert_eq!(
        m.counter("rt.restarted"),
        1,
        "recovery did not replay on rt"
    );
    assert!(
        m.counter("invariant.checks") > 0,
        "checker never ticked on the rt control thread"
    );
    let r = &outcome.report;
    assert!(r.safety_ok, "safety broke during rt kill/recover");
    assert_eq!(r.chaos.invariant_violations, 0);
    assert!(r.updates_confirmed > 0, "no progress on rt");
}

/// Negative control: an equivocation beyond the declared fault budget —
/// two *honest* replicas publishing conflicting commits for the same
/// sequence — must be caught by the online checker while the run is
/// still in flight. (Injected straight into the inspection registry: by
/// design no in-protocol path can produce this without f+1 collusion.)
#[test]
fn equivocation_beyond_budget_is_caught() {
    let mut system = Deployment::build(chaos_config(47));
    system.install_invariant_checker(Span::millis(500), Time(3_000_000));
    let inspection = system.inspection.clone();
    system.world.schedule_control(Time(1_000_000), move |_| {
        inspection.update(0, |r| r.push_commit(3, 900_000, [0xAA; 32]));
        inspection.update(1, |r| r.push_commit(3, 900_000, [0xBB; 32]));
    });
    system.run_for(Span::secs(3));
    let report = system.report();
    assert!(
        report.chaos.invariant_violations > 0,
        "planted conflicting commit was not detected"
    );
    assert!(
        system
            .checker
            .violations()
            .iter()
            .any(|v| v.kind == "conflicting-commit"),
        "violation detected but misclassified: {:?}",
        system.checker.violations()
    );
    assert!(
        report.chaos.invariant_checks > 0,
        "checker never ran, so the 'detection' is vacuous"
    );
}

/// The full 60-simulated-second chaos soak over several seeds (CI job).
#[test]
#[ignore = "multi-minute soak; run explicitly (CI chaos-soak job)"]
fn chaos_soak_sixty_seconds_sim() {
    for seed in [1u64, 2, 3] {
        let report = chaos_run(seed, 60);
        assert!(
            report.safety_ok && report.chaos.invariant_violations == 0,
            "chaos seed {seed} broke safety; reproduce with \
             run_scenario --chaos={seed} --duration=60"
        );
        assert!(report.updates_confirmed > 0, "seed {seed}: no progress");
    }
}

/// The same chaos plan on the real-clock substrate: 60 s of wall time
/// with the recorded fault plan replayed at its offsets (CI job).
#[test]
#[ignore = "60s wall-clock soak; run explicitly (CI chaos-soak job)"]
fn chaos_soak_sixty_seconds_rt() {
    let seed = 2u64;
    let cfg = chaos_config(seed);
    let plan = ChaosPlan::generate(seed, &cfg.spire, Span::secs(60));
    let scenario = plan.scenario();
    let mut system = Deployment::build(cfg);
    scenario.apply(&mut system);
    let outcome = system.into_rt(0).run_for(scenario.duration + Span::secs(5));
    let r = &outcome.report;
    assert!(
        r.safety_ok && r.chaos.invariant_violations == 0,
        "chaos seed {seed} broke safety on rt; replay with \
         run_scenario --chaos={seed} --duration=60 --substrate=sim"
    );
    assert!(r.updates_confirmed > 0, "no progress on rt under chaos");
}

/// The whole red-team suite on the real-clock runtime, time-scaled 1/4
/// so the suite stays under a few wall-clock minutes (CI job). Safety
/// must hold and the system must keep confirming updates under every
/// attack.
#[test]
#[ignore = "multi-minute wall-clock suite; run explicitly (CI chaos-soak job)"]
fn red_team_suite_on_rt() {
    for (i, scenario) in Scenario::red_team_suite().iter().enumerate() {
        let scenario = scenario.scaled(1, 4);
        let mut system = Deployment::build(chaos_config(9000 + i as u64));
        scenario.apply(&mut system);
        let outcome = system.into_rt(0).run_for(scenario.duration + Span::secs(3));
        let r = &outcome.report;
        assert!(
            r.safety_ok && r.chaos.invariant_violations == 0,
            "scenario {:?} broke safety on rt",
            scenario.name
        );
        assert!(
            r.updates_confirmed > 0,
            "scenario {:?} stalled on rt (sent {}, confirmed 0)",
            scenario.name,
            r.updates_sent
        );
    }
}
