//! Per-link HMAC session authentication: sealed frames must authenticate
//! cleanly, replace per-hop signature verifies, and leave the system's
//! behaviour (safety, delivery) intact.

use spire::{Deployment, DeploymentConfig, Report};
use spire_scada::WorkloadConfig;
use spire_sim::Span;

fn run(session_macs: bool) -> Report {
    let mut cfg = DeploymentConfig::wide_area(4242);
    cfg.workload = WorkloadConfig {
        rtus: 3,
        update_interval: Span::millis(400),
        ..Default::default()
    };
    cfg.trace = false;
    cfg.session_macs = session_macs;
    let mut system = Deployment::build(cfg);
    system.run_for(Span::secs(6));
    system.report()
}

#[test]
fn session_macs_replace_per_hop_verifies() {
    let with_macs = run(true);
    let without = run(false);

    // Both configurations must order and deliver.
    assert!(with_macs.safety_ok && without.safety_ok);
    assert!(with_macs.updates_confirmed > 0);
    assert!(without.updates_confirmed > 0);

    // With MACs on, every replica-to-replica frame is sealed and every
    // seal authenticates (honest network, honest replicas).
    assert!(with_macs.auth.mac_ops > 0, "no MACs computed");
    assert!(
        with_macs.auth.mac_auth_hits > 0,
        "no frames MAC-authenticated"
    );
    assert_eq!(with_macs.auth.mac_fail, 0, "spurious MAC failures");

    // With MACs off the counters stay at zero.
    assert_eq!(without.auth.mac_ops, 0);
    assert_eq!(without.auth.mac_auth_hits, 0);

    // The point of the exercise: MAC-authenticated links let receivers
    // skip per-hop signature verification (batch-root and embedded-sig
    // checks), so the per-update verify cost must drop.
    assert!(
        with_macs.verifies_per_update() < without.verifies_per_update(),
        "session MACs did not reduce verifies/update: {:.2} vs {:.2}",
        with_macs.verifies_per_update(),
        without.verifies_per_update()
    );
}
