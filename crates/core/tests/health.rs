//! End-to-end validation of the live health telemetry layer: the
//! detector flags injected performance attacks within one snapshot
//! interval, stays quiet across a clean multi-seed matrix, and the
//! `health.*` vocabulary reaches the report and the Prometheus export
//! on both substrates.

use spire::attack::Scenario;
use spire::deployment::{Deployment, DeploymentConfig, HealthOptions};
use spire::health::{parse_prometheus, prometheus_text, AlarmKind, HealthConfig};
use spire::report::Provenance;
use spire_sim::{Span, Time};

/// Runs one suite scenario on the simulator with a health monitor
/// installed and returns (monitor snapshot, deployment) for inspection.
fn run_sim_monitored(scenario: &Scenario) -> (spire::health::HealthMonitor, Deployment) {
    let mut system = Deployment::build(DeploymentConfig::wide_area(7));
    scenario.apply(&mut system);
    let horizon = scenario.duration + Span::secs(5);
    let monitor = system.install_health_monitor(HealthConfig::default(), Time::ZERO + horizon);
    system.run_for(horizon);
    let snapshot = monitor.lock().unwrap().clone();
    (snapshot, system)
}

fn suite_entry(name: &str) -> Scenario {
    Scenario::red_team_suite()
        .into_iter()
        .find(|s| s.name.contains(name))
        .unwrap_or_else(|| panic!("no suite scenario named {name:?}"))
}

#[test]
fn leader_delay_raises_slow_leader_within_one_interval() {
    let scenario = suite_entry("delay attack");
    let spire::attack::Attack::Compromise { at, .. } = scenario.attacks[0] else {
        panic!("expected a compromise attack");
    };
    let (mon, _) = run_sim_monitored(&scenario);
    let fired = mon
        .detector
        .first_alarm(AlarmKind::SlowLeader)
        .expect("leader delay must raise a slow-leader alarm");
    // The first window that overlaps the attack closes at most one
    // interval after onset; the alarm must come from that window.
    let interval = mon.config().interval;
    assert!(
        fired.since(at).0 <= 2 * interval.0,
        "slow-leader alarm at {fired} is more than one closed window after onset {at}"
    );
    assert_eq!(mon.verdict(), "SLOW-LEADER");
}

#[test]
fn cc_dos_raises_site_dos_within_one_interval() {
    let scenario = suite_entry("DoS on primary");
    let spire::attack::Attack::DosSite { from, .. } = scenario.attacks[0] else {
        panic!("expected a site-DoS attack");
    };
    let (mon, _) = run_sim_monitored(&scenario);
    let fired = mon
        .detector
        .first_alarm(AlarmKind::SiteDos)
        .expect("site DoS must raise a site-DoS alarm");
    let interval = mon.config().interval;
    assert!(
        fired.since(from).0 <= 2 * interval.0,
        "site-DoS alarm at {fired} is more than one closed window after onset {from}"
    );
}

#[test]
fn disconnected_cc_raises_partition_alarm() {
    let scenario = suite_entry("disconnected");
    let (mon, _) = run_sim_monitored(&scenario);
    assert!(
        mon.detector.first_alarm(AlarmKind::Partition).is_some(),
        "a disconnected control center must eventually read as a partition"
    );
}

#[test]
fn clean_multi_seed_matrix_is_quiet() {
    // Four seeds, no attacks: the detector must stay silent and the SLO
    // tracker must count zero breaches on every run.
    for seed in [1, 2, 3, 4] {
        let mut system = Deployment::build(DeploymentConfig::wide_area(seed));
        let horizon = Span::secs(60);
        let monitor = system.install_health_monitor(HealthConfig::default(), Time::ZERO + horizon);
        system.run_for(horizon);
        let mon = monitor.lock().unwrap();
        assert!(
            mon.detector.quiet(),
            "seed {seed}: clean run raised alarms {:?}",
            mon.detector.alarms
        );
        assert_eq!(
            mon.slo.breaches(),
            0,
            "seed {seed}: clean run breached SLOs"
        );
        assert!(mon.slo.windows > 50, "seed {seed}: monitor barely ran");
    }
}

#[test]
fn report_and_prometheus_carry_health_on_sim() {
    let scenario = suite_entry("no attack");
    let (mon, system) = run_sim_monitored(&scenario);
    assert!(!mon.snapshots().collect::<Vec<_>>().is_empty());

    let report = system.report();
    assert!(report.health.snapshots > 0, "report missed health counters");
    assert!(report.health.quiet());
    let line = report.health_line();
    assert!(line.contains("windows="), "{line}");

    let json = report.to_json_with(&Provenance::of("sim", 0, "deadbeef"));
    assert!(json.contains("\"schema_version\":4"), "{json}");
    assert!(json.contains("\"substrate\":\"sim\""));
    assert!(json.contains("\"git_rev\":\"deadbeef\""));
    assert!(json.contains("\"health\":{"));

    // Golden check: the Prometheus export of a real run parses and
    // carries the health vocabulary alongside the SCADA counters.
    let text = prometheus_text(system.world.metrics());
    let samples = parse_prometheus(&text).expect("prometheus export must parse");
    let get = |n: &str| {
        samples
            .iter()
            .find(|s| s.name == n && s.labels.is_empty())
            .map(|s| s.value)
    };
    assert!(get("spire_health_snapshots").unwrap_or(0.0) > 0.0);
    assert!(get("spire_scada_updates_confirmed").unwrap_or(0.0) > 0.0);
    assert_eq!(get("spire_health_alarm_site_dos"), None);
}

#[test]
fn report_and_prometheus_carry_health_on_rt() {
    let mut cfg = DeploymentConfig::wide_area(11);
    cfg.workload.rtus = 6;
    cfg.workload.update_interval = Span::millis(200);
    let system = Deployment::build(cfg);
    let prom = std::env::temp_dir().join("spire_health_rt_test.prom");
    let opts = HealthOptions {
        config: HealthConfig {
            interval: Span::millis(500),
            warmup: 1,
            ..HealthConfig::default()
        },
        watch: false,
        prom_path: Some(prom.to_string_lossy().into_owned()),
    };
    let outcome = system.into_rt(2).run_monitored(Span::secs(3), opts);

    let mon = outcome.health.expect("rt run must return its monitor");
    assert!(mon.latest().is_some(), "monitor never ticked");
    assert!(outcome.report.health.snapshots > 0);

    let json =
        outcome
            .report
            .to_json_with(&Provenance::of("rt:2", outcome.run.threads, "deadbeef"));
    assert!(json.contains("\"health\":{"), "{json}");
    assert!(json.contains("\"substrate\":\"rt:2\""));
    assert!(json.contains("\"threads\":2"));
    assert!(json.contains("\"cores\":"));

    // The exporter wrote a parseable file with live rt gauges in it.
    let text = std::fs::read_to_string(&prom).expect("prometheus file written");
    let samples = parse_prometheus(&text).expect("rt prometheus export must parse");
    assert!(samples.iter().any(|s| s.name == "spire_health_snapshots"));
    assert!(
        samples.iter().any(|s| s.name.starts_with("spire_rt_")),
        "rt gauges missing from export"
    );
    let _ = std::fs::remove_file(&prom);
}
