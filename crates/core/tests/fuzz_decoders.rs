//! Decoder-totality corpus fuzz: every wire decoder in the stack must be
//! total — malformed, truncated, extended or bit-flipped frames return
//! `Err`/`None`, never panic. The chaos wire-fault injector and a real
//! network attacker both deliver exactly these inputs.
//!
//! The corpus (shared via `common::*_corpus`, committed as bytes under
//! `tests/corpus/` — see `corpus_replay.rs`) is a set of *valid* frames
//! from every protocol layer (Prime messages, sealed session envelopes,
//! Merkle-batched frames, Spines overlay messages, SCADA ops, Modbus
//! device frames); each is run through a seeded stream of random
//! mutations and fed to every decoder. Seeded, so a failure reproduces.

mod common;

use bytes::Bytes;
use common::{modbus_corpus, overlay_corpus, prime_corpus, scada_corpus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spire_prime::{decode_enclosed, PrimeMsg};
use spire_scada::{ModbusFrame, ScadaOp};
use spire_spines::OverlayMsg;

/// One random mutation of `frame`: bit flip, truncation, extension,
/// random splice, or full replacement.
fn mutate(rng: &mut StdRng, frame: &[u8]) -> Vec<u8> {
    let mut out = frame.to_vec();
    match rng.gen_range(0u32..5) {
        // Flip 1-8 random bits.
        0 => {
            for _ in 0..rng.gen_range(1..=8) {
                if out.is_empty() {
                    break;
                }
                let i = rng.gen_range(0..out.len());
                out[i] ^= 1u8 << rng.gen_range(0..8);
            }
        }
        // Truncate to a random prefix.
        1 => out.truncate(rng.gen_range(0..=out.len())),
        // Extend with random tail bytes.
        2 => {
            for _ in 0..rng.gen_range(1..64) {
                out.push(rng.gen());
            }
        }
        // Splice random bytes over a random window.
        3 => {
            if !out.is_empty() {
                let start = rng.gen_range(0..out.len());
                let end = rng.gen_range(start..=out.len().min(start + 16));
                for b in &mut out[start..end] {
                    *b = rng.gen();
                }
            }
        }
        // Fully random frame (arbitrary length, arbitrary content).
        _ => {
            out.clear();
            for _ in 0..rng.gen_range(0..256) {
                out.push(rng.gen());
            }
        }
    }
    out
}

/// Feed a (possibly mangled) frame to every decoder in the stack. Each
/// must return without panicking; the results are irrelevant.
fn decode_everything(bytes: &[u8]) {
    let _ = PrimeMsg::decode(bytes);
    let _ = decode_enclosed(bytes);
    let _ = OverlayMsg::decode(bytes);
    let _ = ScadaOp::decode(bytes);
    let _ = ModbusFrame::decode(bytes);
    let _ = spire_spines::SpinesPort::decode_deliver(&Bytes::copy_from_slice(bytes));
}

#[test]
fn corpus_roundtrips_before_mutation() {
    // Sanity: the corpus really is valid input for its own decoder.
    for frame in prime_corpus() {
        let sealed = frame.first() == Some(&spire_prime::msg::SEALED_FRAME_TAG);
        assert!(
            if sealed {
                matches!(spire_prime::msg::decode_sealed(&frame), Ok(Some(_)))
            } else {
                decode_enclosed(&frame).is_ok()
            },
            "corpus frame failed its own decoder"
        );
    }
    for frame in overlay_corpus() {
        assert!(OverlayMsg::decode(&frame).is_ok());
    }
    for frame in scada_corpus() {
        assert!(ScadaOp::decode(&frame).is_ok());
    }
    for frame in modbus_corpus() {
        assert!(ModbusFrame::decode(&frame).is_ok());
    }
}

#[test]
fn decoders_are_total_under_mutation() {
    let corpus: Vec<Bytes> = prime_corpus()
        .into_iter()
        .chain(overlay_corpus())
        .chain(scada_corpus())
        .chain(modbus_corpus())
        .collect();
    // Fixed seed: a failing mutation reproduces. 400 mutations per corpus
    // frame, each fed to every decoder.
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    for frame in &corpus {
        decode_everything(frame);
        for _ in 0..400 {
            let mangled = mutate(&mut rng, frame);
            decode_everything(&mangled);
        }
    }
}

#[test]
fn truncated_prefixes_never_panic() {
    // Exhaustive prefix truncation of every corpus frame — the most common
    // real-world corruption (partial read) gets full coverage.
    for frame in prime_corpus()
        .into_iter()
        .chain(overlay_corpus())
        .chain(scada_corpus())
        .chain(modbus_corpus())
    {
        for len in 0..frame.len() {
            decode_everything(&frame[..len]);
        }
    }
}
