//! Decoder-totality corpus fuzz: every wire decoder in the stack must be
//! total — malformed, truncated, extended or bit-flipped frames return
//! `Err`/`None`, never panic. The chaos wire-fault injector and a real
//! network attacker both deliver exactly these inputs.
//!
//! The corpus is a set of *valid* frames from every protocol layer
//! (Prime messages, sealed session envelopes, Merkle-batched frames,
//! Spines overlay messages, SCADA ops, Modbus device frames); each is
//! run through a seeded stream of random mutations and fed to every
//! decoder. Seeded, so a failure reproduces.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spire_crypto::batch::BatchAttestation;
use spire_prime::msg::{encode_batched, seal_frame, CheckpointMsg, Matrix, SummaryRow};
use spire_prime::{decode_enclosed, ClientId, ClientOp, PrimeMsg, ReplicaId};
use spire_scada::{CommandAction, ModbusFrame, ScadaOp};
use spire_spines::msg::DataMsg;
use spire_spines::{Dissemination, OverlayId, OverlayMsg};

fn prime_corpus() -> Vec<Bytes> {
    let op = ClientOp {
        client: ClientId(3),
        cseq: 17,
        payload: Bytes::from_static(b"update"),
        sig: [7u8; 64],
    };
    let row = SummaryRow {
        replica: ReplicaId(1),
        sseq: 9,
        vector: spire_prime::msg::AruVector(vec![4, 5, 6, 0, 1, 2]),
        sig: [9u8; 64],
    };
    let msgs = vec![
        PrimeMsg::Op(op.clone()),
        PrimeMsg::PoRequest {
            origin: ReplicaId(0),
            po_seq: 12,
            ops: vec![op.clone(), op.clone()],
            sig: [1u8; 64],
        },
        PrimeMsg::PoAck {
            replica: ReplicaId(2),
            origin: ReplicaId(0),
            po_seq: 12,
            digest: [3u8; 32],
            sig: [2u8; 64],
        },
        PrimeMsg::PoSummary(row.clone()),
        PrimeMsg::PrePrepare {
            view: 1,
            seq: 40,
            matrix: Matrix {
                rows: vec![row.clone(), row],
            },
            sig: [4u8; 64],
        },
        PrimeMsg::Prepare {
            replica: ReplicaId(4),
            view: 1,
            seq: 40,
            digest: [5u8; 32],
            sig: [5u8; 64],
        },
        PrimeMsg::Commit {
            replica: ReplicaId(4),
            view: 1,
            seq: 40,
            digest: [5u8; 32],
            sig: [6u8; 64],
        },
        PrimeMsg::Ping {
            replica: ReplicaId(1),
            nonce: 777,
        },
        PrimeMsg::Pong {
            replica: ReplicaId(2),
            nonce: 777,
        },
        PrimeMsg::Suspect {
            replica: ReplicaId(3),
            view: 2,
            sig: [8u8; 64],
        },
        PrimeMsg::Checkpoint(CheckpointMsg {
            replica: ReplicaId(0),
            seq: 50,
            digest: [11u8; 32],
            sig: [12u8; 64],
        }),
        PrimeMsg::StateReq {
            replica: ReplicaId(5),
            have_seq: 25,
            sig: [13u8; 64],
        },
        PrimeMsg::ReconReq {
            replica: ReplicaId(1),
            origin: ReplicaId(3),
            po_seq: 8,
        },
        PrimeMsg::Notify {
            replica: ReplicaId(0),
            client: ClientId(7),
            nseq: 3,
            payload: Bytes::from_static(b"breaker"),
            sig: [14u8; 64],
        },
        PrimeMsg::Reply {
            replica: ReplicaId(0),
            client: ClientId(7),
            cseq: 3,
            result: Bytes::from_static(b"ok"),
            sig: [15u8; 64],
        },
    ];
    let mut frames: Vec<Bytes> = msgs.iter().map(|m| m.encode()).collect();
    // Sealed session envelope and a Merkle-batched frame over a vote.
    let inner = msgs[6].encode();
    frames.push(seal_frame(ReplicaId(4), &[42u8; 32], &inner));
    let attestation = BatchAttestation {
        leaf_index: 1,
        leaf_count: 4,
        path: vec![[21u8; 32], [22u8; 32]],
        root_sig: [23u8; 64],
    };
    frames.push(encode_batched(ReplicaId(4), &attestation, &inner));
    frames
}

fn overlay_corpus() -> Vec<Bytes> {
    let data = DataMsg {
        src: OverlayId(0),
        src_port: 2,
        dst: OverlayId(6),
        dst_port: 1,
        seq: 55,
        mode: Dissemination::DisjointPaths(3),
        ttl: 12,
        route: vec![OverlayId(0), OverlayId(4), OverlayId(6)],
        route_idx: 1,
        reliable: true,
        payload: Bytes::from_static(b"prime frame inside"),
    };
    [
        OverlayMsg::Hello {
            from: OverlayId(3),
            seq: 10,
        },
        OverlayMsg::Lsa {
            origin: OverlayId(2),
            seq: 4,
            neighbors: vec![(OverlayId(1), 10), (OverlayId(3), 12)],
            sig: [31u8; 64],
        },
        OverlayMsg::Data {
            frame_id: 99,
            msg: data,
        },
        OverlayMsg::HopAck { frame_id: 99 },
        OverlayMsg::ClientAttach { port: 7 },
        OverlayMsg::ClientSend {
            dst: OverlayId(6),
            dst_port: 1,
            mode: Dissemination::Flood,
            reliable: false,
            payload: Bytes::from_static(b"payload"),
        },
        OverlayMsg::ClientDeliver {
            src: OverlayId(0),
            src_port: 2,
            payload: Bytes::from_static(b"payload"),
        },
    ]
    .iter()
    .map(|m| m.encode())
    .collect()
}

fn scada_corpus() -> Vec<Bytes> {
    [
        ScadaOp::DeviceUpdate {
            rtu: 2,
            ts_us: 1_500_000,
            registers: vec![(0, 230), (1, 49)],
            breakers: vec![(0, true), (1, false)],
        },
        ScadaOp::Command {
            rtu: 2,
            ts_us: 1_600_000,
            action: CommandAction::OpenBreaker(1),
        },
        ScadaOp::Command {
            rtu: 3,
            ts_us: 1_700_000,
            action: CommandAction::SetRegister(4, 500),
        },
        ScadaOp::ReadState { rtu: 1 },
    ]
    .iter()
    .map(|m| m.encode())
    .collect()
}

fn modbus_corpus() -> Vec<Bytes> {
    [
        ModbusFrame::ReadRegisters {
            txn: 1,
            addr: 0,
            count: 8,
        },
        ModbusFrame::ReadResponse {
            txn: 1,
            addr: 0,
            values: vec![230, 49, 500],
        },
        ModbusFrame::WriteCoil {
            txn: 2,
            coil: 1,
            on: false,
        },
        ModbusFrame::WriteRegister {
            txn: 3,
            addr: 4,
            value: 500,
        },
        ModbusFrame::WriteAck { txn: 3 },
        ModbusFrame::Report {
            ts_us: 1_000_000,
            registers: vec![(0, 230)],
            coils: vec![(0, true)],
        },
    ]
    .iter()
    .map(|m| m.encode())
    .collect()
}

/// One random mutation of `frame`: bit flip, truncation, extension,
/// random splice, or full replacement.
fn mutate(rng: &mut StdRng, frame: &[u8]) -> Vec<u8> {
    let mut out = frame.to_vec();
    match rng.gen_range(0u32..5) {
        // Flip 1-8 random bits.
        0 => {
            for _ in 0..rng.gen_range(1..=8) {
                if out.is_empty() {
                    break;
                }
                let i = rng.gen_range(0..out.len());
                out[i] ^= 1u8 << rng.gen_range(0..8);
            }
        }
        // Truncate to a random prefix.
        1 => out.truncate(rng.gen_range(0..=out.len())),
        // Extend with random tail bytes.
        2 => {
            for _ in 0..rng.gen_range(1..64) {
                out.push(rng.gen());
            }
        }
        // Splice random bytes over a random window.
        3 => {
            if !out.is_empty() {
                let start = rng.gen_range(0..out.len());
                let end = rng.gen_range(start..=out.len().min(start + 16));
                for b in &mut out[start..end] {
                    *b = rng.gen();
                }
            }
        }
        // Fully random frame (arbitrary length, arbitrary content).
        _ => {
            out.clear();
            for _ in 0..rng.gen_range(0..256) {
                out.push(rng.gen());
            }
        }
    }
    out
}

/// Feed a (possibly mangled) frame to every decoder in the stack. Each
/// must return without panicking; the results are irrelevant.
fn decode_everything(bytes: &[u8]) {
    let _ = PrimeMsg::decode(bytes);
    let _ = decode_enclosed(bytes);
    let _ = OverlayMsg::decode(bytes);
    let _ = ScadaOp::decode(bytes);
    let _ = ModbusFrame::decode(bytes);
    let _ = spire_spines::SpinesPort::decode_deliver(&Bytes::copy_from_slice(bytes));
}

#[test]
fn corpus_roundtrips_before_mutation() {
    // Sanity: the corpus really is valid input for its own decoder.
    for frame in prime_corpus() {
        let sealed = frame.first() == Some(&spire_prime::msg::SEALED_FRAME_TAG);
        assert!(
            if sealed {
                matches!(spire_prime::msg::decode_sealed(&frame), Ok(Some(_)))
            } else {
                decode_enclosed(&frame).is_ok()
            },
            "corpus frame failed its own decoder"
        );
    }
    for frame in overlay_corpus() {
        assert!(OverlayMsg::decode(&frame).is_ok());
    }
    for frame in scada_corpus() {
        assert!(ScadaOp::decode(&frame).is_ok());
    }
    for frame in modbus_corpus() {
        assert!(ModbusFrame::decode(&frame).is_ok());
    }
}

#[test]
fn decoders_are_total_under_mutation() {
    let corpus: Vec<Bytes> = prime_corpus()
        .into_iter()
        .chain(overlay_corpus())
        .chain(scada_corpus())
        .chain(modbus_corpus())
        .collect();
    // Fixed seed: a failing mutation reproduces. 400 mutations per corpus
    // frame, each fed to every decoder.
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    for frame in &corpus {
        decode_everything(frame);
        for _ in 0..400 {
            let mangled = mutate(&mut rng, frame);
            decode_everything(&mangled);
        }
    }
}

#[test]
fn truncated_prefixes_never_panic() {
    // Exhaustive prefix truncation of every corpus frame — the most common
    // real-world corruption (partial read) gets full coverage.
    for frame in prime_corpus()
        .into_iter()
        .chain(overlay_corpus())
        .chain(scada_corpus())
        .chain(modbus_corpus())
    {
        for len in 0..frame.len() {
            decode_everything(&frame[..len]);
        }
    }
}
