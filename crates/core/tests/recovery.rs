//! Proactive-recovery scheduling tests: the round-robin rotation wraps
//! past the replica count, recoveries interleave safely with view
//! changes, and back-to-back recoveries of the same replica stack
//! cleanly (each rebuild is a fresh incarnation).

use spire::deployment::{Deployment, DeploymentConfig};
use spire_scada::WorkloadConfig;
use spire_sim::{Span, Time};

fn small_system(seed: u64) -> Deployment {
    let mut cfg = DeploymentConfig::wide_area(seed);
    cfg.workload = WorkloadConfig {
        rtus: 4,
        update_interval: Span::millis(500),
        ..Default::default()
    };
    Deployment::build(cfg)
}

/// Eight slots over six replicas: the round-robin must wrap and come
/// back to replicas 0 and 1 for a second pass.
#[test]
fn proactive_rotation_wraps_past_replica_count() {
    let mut system = small_system(61);
    // 8 recoveries at 1.5 s spacing: replicas 0..5, then 0 and 1 again.
    system.schedule_proactive_recovery(Time(1_000_000), Span::millis(1_500), Time(11_500_000));
    system.install_invariant_checker(Span::secs(1), Time(15_000_000));
    system.run_for(Span::secs(15));
    let report = system.report();
    assert_eq!(report.recoveries.0, 8, "expected 8 scheduled recoveries");
    let records = system.inspection.records();
    for id in 0u32..6 {
        let expect = if id < 2 { 2 } else { 1 };
        assert_eq!(
            records[&id].incarnation, expect,
            "replica {id}: rotation did not wrap as round-robin"
        );
    }
    assert!(report.safety_ok);
    assert_eq!(report.chaos.invariant_violations, 0);
    assert!(
        report.updates_confirmed > 0,
        "system stalled under rolling recovery"
    );
}

/// A recovery that lands in the middle of a view change: the leader is
/// killed, and while the remaining replicas elect a new one, another
/// replica is rebuilt and must rejoin against the post-view-change
/// configuration.
#[test]
fn recovery_overlapping_a_view_change() {
    let mut system = small_system(62);
    // Replica 0 leads view 0; killing it forces a view change.
    system.schedule_kill(0, Time(5_000_000));
    // Rebuild replica 2 just after the leader failure is noticed, so its
    // state transfer overlaps the election.
    system.schedule_recovery(2, Time(5_400_000));
    system.install_invariant_checker(Span::secs(1), Time(25_000_000));
    system.run_for(Span::secs(25));
    let report = system.report();
    assert!(
        report.view_changes >= 1,
        "killing the leader never produced a view change"
    );
    assert_eq!(report.recoveries.0, 1);
    assert!(report.safety_ok, "safety broke across recovery + election");
    assert_eq!(report.chaos.invariant_violations, 0);
    // Liveness after both faults: the post-election leader keeps
    // ordering and the recovered replica does not wedge the quorum.
    let confirmed_late = report.update_timeline.iter().any(|(t, _)| t.0 > 15_000_000);
    assert!(
        confirmed_late,
        "no update confirmed after the overlapping faults settled"
    );
}

/// A recovery forced through a hostile transfer path: the recovering
/// replica's site suffers ~30% frame corruption (dropped at the HMAC
/// check, so shares and chunks are lost in flight) while one responder
/// serves deliberately corrupted erasure shares. The chunked transfer
/// must route around both — per-chunk digests reject the bad shares,
/// and the retry/backoff loop re-fetches from alternate responders —
/// and still complete.
#[test]
fn recovery_completes_under_loss_and_corrupt_responder() {
    use spire_prime::ByzBehavior;
    let mut system = small_system(64);
    // Replica 1 (site 0) serves corrupted shares for the whole run.
    system.schedule_compromise(1, ByzBehavior::CorruptShares, Time(1_000_000));
    // Replica 4 is the lone replica of site 2: every share it fetches
    // crosses the noisy WAN links.
    system.schedule_site_wire_faults(
        2,
        Time(5_000_000),
        Time(20_000_000),
        0.30,
        0.0,
        Span::millis(5),
    );
    system.schedule_recovery(4, Time(6_000_000));
    system.install_invariant_checker(Span::secs(1), Time(30_000_000));
    system.run_for(Span::secs(30));
    let report = system.report();
    let rec = &report.recovery;
    assert_eq!(rec.started, 1, "recovery never started");
    // The compromise takeover also rejoins via state transfer, so
    // `completed` counts it too; replica 4's own record is the proof that
    // the scheduled recovery finished.
    assert!(
        rec.completed >= rec.started,
        "recovery did not complete under loss + corrupt responder \
         ({} chunks, {} retry rounds)",
        rec.chunks,
        rec.chunk_retries
    );
    let records = system.inspection.records();
    assert!(
        !records[&4].recovering,
        "replica 4 still recovering after {} chunks / {} retry rounds",
        rec.chunks, rec.chunk_retries
    );
    assert_eq!(records[&4].incarnation, 1, "replica 4 was never rebuilt");
    assert!(
        rec.chunks > 0,
        "state transfer did not use the chunked path"
    );
    assert!(report.safety_ok);
    assert_eq!(report.chaos.invariant_violations, 0);
    // Liveness after the window: ordering keeps confirming updates.
    let confirmed_late = report.update_timeline.iter().any(|(t, _)| t.0 > 22_000_000);
    assert!(
        confirmed_late,
        "no update confirmed after the faults cleared"
    );
}

/// Two recoveries of the same replica in quick succession: the second
/// rebuild interrupts the first incarnation's state transfer. Each
/// rebuild must bump the incarnation and the system must stay safe.
#[test]
fn back_to_back_recovery_of_same_replica() {
    let mut system = small_system(63);
    system.schedule_recovery(3, Time(4_000_000));
    system.schedule_recovery(3, Time(4_500_000));
    system.install_invariant_checker(Span::secs(1), Time(15_000_000));
    system.run_for(Span::secs(15));
    let report = system.report();
    assert_eq!(report.recoveries.0, 2);
    assert_eq!(
        system.inspection.records()[&3].incarnation,
        2,
        "second rebuild did not supersede the first"
    );
    assert!(report.safety_ok);
    assert_eq!(report.chaos.invariant_violations, 0);
    assert!(report.updates_confirmed > 0);
}
