//! Builder that instantiates a whole Spines overlay inside a simulation
//! [`World`]: one daemon process per overlay node, HMAC-keyed links between
//! neighbors, and helpers to attach client processes.

use crate::daemon::{Daemon, DaemonBehavior, DaemonConfig};
use crate::topology::{OverlayId, Topology};
use spire_crypto::{KeyMaterial, KeyStore, NodeId};
use spire_sim::{LinkConfig, ProcessId, World};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A deployed overlay network: daemon process ids and key material.
#[derive(Debug)]
pub struct OverlayNetwork {
    /// Static topology the overlay was built from.
    pub topology: Topology,
    /// Overlay node -> simulation process.
    pub daemons: BTreeMap<OverlayId, ProcessId>,
    /// Base offset of daemon crypto ids in the key store.
    pub key_base: u32,
}

impl OverlayNetwork {
    /// Builds the overlay in `world`.
    ///
    /// * `topology` — overlay graph; edge weights become routing costs.
    /// * `link_of` — maps each overlay edge to underlay link parameters.
    /// * `behavior_of` — per-daemon fault model (honest by default).
    /// * `material`/`key_base` — provisioned keys; daemon `i` signs as
    ///   crypto node `key_base + i`.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        world: &mut World,
        topology: &Topology,
        cfg: DaemonConfig,
        material: &KeyMaterial,
        keystore: &Arc<KeyStore>,
        key_base: u32,
        link_of: impl Fn(OverlayId, OverlayId) -> LinkConfig,
        behavior_of: impl Fn(OverlayId) -> DaemonBehavior,
    ) -> OverlayNetwork {
        // First pass: allocate process ids by creating placeholder entries.
        // We must know every neighbor's pid before constructing a daemon, so
        // compute the assignment up front: processes are added in ascending
        // overlay-id order and the world assigns ids sequentially.
        let nodes: Vec<OverlayId> = topology.nodes().collect();
        let first_pid = world.process_count() as u32;
        let pid_of = |node_index: usize| ProcessId(first_pid + node_index as u32);
        let index_of: BTreeMap<OverlayId, usize> =
            nodes.iter().enumerate().map(|(i, id)| (*id, i)).collect();

        let mut daemons = BTreeMap::new();
        for (i, id) in nodes.iter().enumerate() {
            let neighbors: Vec<(OverlayId, ProcessId, u32, [u8; 32])> = topology
                .neighbors(*id)
                .map(|(n, w)| {
                    let link_key = material.link_key(
                        NodeId(key_base + id.0 as u32),
                        NodeId(key_base + n.0 as u32),
                    );
                    (n, pid_of(index_of[&n]), w, link_key)
                })
                .collect();
            let daemon = Daemon::new(
                *id,
                cfg,
                behavior_of(*id),
                material.signing_key(NodeId(key_base + id.0 as u32)),
                Arc::clone(keystore),
                key_base,
                neighbors,
            );
            let pid = world.add_process(&format!("spines-{id}"), Box::new(daemon));
            assert_eq!(pid, pid_of(i), "process id assignment diverged");
            daemons.insert(*id, pid);
        }
        // Underlay links between neighboring daemons.
        for (a, b, _) in topology.edges() {
            world.add_link(daemons[&a], daemons[&b], link_of(a, b));
        }
        OverlayNetwork {
            topology: topology.clone(),
            daemons,
            key_base,
        }
    }

    /// The simulation process of a daemon.
    pub fn daemon_pid(&self, id: OverlayId) -> ProcessId {
        self.daemons[&id]
    }

    /// Connects a client process to its local daemon with an intra-host
    /// link. The client must still send `ClientAttach` (via
    /// [`crate::client::SpinesPort::attach`]) from its `on_start`.
    pub fn wire_client(&self, world: &mut World, daemon: OverlayId, client: ProcessId) {
        world.add_link(self.daemon_pid(daemon), client, LinkConfig::local());
    }

    /// Takes the underlay link between two neighboring daemons down or up
    /// (link-level attack/repair injection).
    pub fn set_overlay_link_up(&self, world: &mut World, a: OverlayId, b: OverlayId, up: bool) {
        world.set_link_up(self.daemon_pid(a), self.daemon_pid(b), up);
    }
}
