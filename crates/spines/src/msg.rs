//! Wire messages of the Spines overlay protocol.
//!
//! Daemon-to-daemon frames are authenticated with a per-link HMAC (see
//! [`crate::daemon`]); link-state advertisements are additionally signed by
//! their origin so a daemon cannot forge another daemon's adjacency.

use crate::topology::OverlayId;
use bytes::Bytes;
use spire_sim::{WireError, WireReader, WireWriter};

/// How a data message is disseminated through the overlay.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dissemination {
    /// Single copy along the shortest path.
    Shortest,
    /// One copy along each of up to `k` edge-disjoint paths (source routed).
    DisjointPaths(u8),
    /// Constrained flooding: resilient to any set of failures that leaves
    /// the graph connected; subject to per-source fair rate limits.
    Flood,
}

impl Dissemination {
    fn encode(self) -> (u8, u8) {
        match self {
            Dissemination::Shortest => (0, 0),
            Dissemination::DisjointPaths(k) => (1, k),
            Dissemination::Flood => (2, 0),
        }
    }

    fn decode(tag: u8, arg: u8) -> Result<Dissemination, WireError> {
        match tag {
            0 => Ok(Dissemination::Shortest),
            1 => Ok(Dissemination::DisjointPaths(arg)),
            2 => Ok(Dissemination::Flood),
            other => Err(WireError::BadTag(other)),
        }
    }
}

/// An application payload travelling through the overlay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataMsg {
    /// Originating daemon.
    pub src: OverlayId,
    /// Originating client port on that daemon.
    pub src_port: u16,
    /// Destination daemon.
    pub dst: OverlayId,
    /// Destination client port.
    pub dst_port: u16,
    /// Per-(src, src_port) sequence number for end-to-end deduplication.
    pub seq: u64,
    /// Dissemination mode.
    pub mode: Dissemination,
    /// Remaining hop budget.
    pub ttl: u8,
    /// Source route for [`Dissemination::DisjointPaths`] (empty otherwise).
    pub route: Vec<OverlayId>,
    /// Position of the *next* hop within `route`.
    pub route_idx: u8,
    /// Whether hop-by-hop reliability (ack + retransmit) is requested.
    pub reliable: bool,
    /// Application bytes.
    pub payload: Bytes,
}

/// A daemon-to-daemon or client-to-daemon protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum OverlayMsg {
    /// Link liveness probe.
    Hello {
        /// Sender.
        from: OverlayId,
        /// Monotone sequence.
        seq: u64,
    },
    /// Signed link-state advertisement.
    Lsa {
        /// The daemon whose adjacency this describes.
        origin: OverlayId,
        /// Monotone LSA sequence for `origin`.
        seq: u64,
        /// `origin`'s live neighbors and link weights.
        neighbors: Vec<(OverlayId, u32)>,
        /// Ed25519 signature by `origin` over (origin, seq, neighbors).
        sig: [u8; 64],
    },
    /// Hop-scoped data frame carrying an application payload.
    Data {
        /// Hop-unique frame id (for the reliable link protocol).
        frame_id: u64,
        /// The payload and its end-to-end headers.
        msg: DataMsg,
    },
    /// Acknowledgement of a reliable data frame on a link.
    HopAck {
        /// The frame being acknowledged.
        frame_id: u64,
    },
    /// Client -> daemon: bind a local port.
    ClientAttach {
        /// Port to bind.
        port: u16,
    },
    /// Client -> daemon: send a payload through the overlay.
    ClientSend {
        /// Destination daemon.
        dst: OverlayId,
        /// Destination port.
        dst_port: u16,
        /// Dissemination mode.
        mode: Dissemination,
        /// Request hop-by-hop reliability.
        reliable: bool,
        /// Application bytes.
        payload: Bytes,
    },
    /// Daemon -> client: deliver a payload.
    ClientDeliver {
        /// Originating daemon.
        src: OverlayId,
        /// Originating port.
        src_port: u16,
        /// Application bytes.
        payload: Bytes,
    },
    /// Cumulative acknowledgement of several reliable data frames on a link.
    HopAckMulti {
        /// The frames being acknowledged.
        frame_ids: Vec<u64>,
    },
    /// A hop-level batch: several encoded messages for the same neighbor,
    /// authenticated by a single link HMAC. Batches do not nest.
    Batch {
        /// Each element is one encoded non-`Batch` [`OverlayMsg`].
        frames: Vec<Bytes>,
    },
}

impl OverlayMsg {
    /// Canonical byte encoding.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(64);
        match self {
            OverlayMsg::Hello { from, seq } => {
                w.u8(1).u16(from.0).u64(*seq);
            }
            OverlayMsg::Lsa {
                origin,
                seq,
                neighbors,
                sig,
            } => {
                w.u8(2).u16(origin.0).u64(*seq).u16(neighbors.len() as u16);
                for (n, weight) in neighbors {
                    w.u16(n.0).u32(*weight);
                }
                w.raw(sig);
            }
            OverlayMsg::Data { frame_id, msg } => {
                let (mode_tag, mode_arg) = msg.mode.encode();
                w.u8(3)
                    .u64(*frame_id)
                    .u16(msg.src.0)
                    .u16(msg.src_port)
                    .u16(msg.dst.0)
                    .u16(msg.dst_port)
                    .u64(msg.seq)
                    .u8(mode_tag)
                    .u8(mode_arg)
                    .u8(msg.ttl)
                    .u8(msg.route.len() as u8);
                for hop in &msg.route {
                    w.u16(hop.0);
                }
                w.u8(msg.route_idx).bool(msg.reliable).bytes(&msg.payload);
            }
            OverlayMsg::HopAck { frame_id } => {
                w.u8(4).u64(*frame_id);
            }
            OverlayMsg::ClientAttach { port } => {
                w.u8(5).u16(*port);
            }
            OverlayMsg::ClientSend {
                dst,
                dst_port,
                mode,
                reliable,
                payload,
            } => {
                let (mode_tag, mode_arg) = mode.encode();
                w.u8(6)
                    .u16(dst.0)
                    .u16(*dst_port)
                    .u8(mode_tag)
                    .u8(mode_arg)
                    .bool(*reliable)
                    .bytes(payload);
            }
            OverlayMsg::ClientDeliver {
                src,
                src_port,
                payload,
            } => {
                w.u8(7).u16(src.0).u16(*src_port).bytes(payload);
            }
            OverlayMsg::HopAckMulti { frame_ids } => {
                w.u8(8).u16(frame_ids.len() as u16);
                for id in frame_ids {
                    w.u64(*id);
                }
            }
            OverlayMsg::Batch { frames } => {
                w.u8(9).u16(frames.len() as u16);
                for frame in frames {
                    w.bytes(frame);
                }
            }
        }
        w.finish()
    }

    /// Decodes a message, verifying the buffer is fully consumed.
    pub fn decode(bytes: &[u8]) -> Result<OverlayMsg, WireError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            1 => OverlayMsg::Hello {
                from: OverlayId(r.u16()?),
                seq: r.u64()?,
            },
            2 => {
                let origin = OverlayId(r.u16()?);
                let seq = r.u64()?;
                let n = r.u16()? as usize;
                let mut neighbors = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    neighbors.push((OverlayId(r.u16()?), r.u32()?));
                }
                let sig: [u8; 64] = r.array()?;
                OverlayMsg::Lsa {
                    origin,
                    seq,
                    neighbors,
                    sig,
                }
            }
            3 => {
                let frame_id = r.u64()?;
                let src = OverlayId(r.u16()?);
                let src_port = r.u16()?;
                let dst = OverlayId(r.u16()?);
                let dst_port = r.u16()?;
                let seq = r.u64()?;
                let mode_tag = r.u8()?;
                let mode_arg = r.u8()?;
                let ttl = r.u8()?;
                let route_len = r.u8()? as usize;
                let mut route = Vec::with_capacity(route_len);
                for _ in 0..route_len {
                    route.push(OverlayId(r.u16()?));
                }
                let route_idx = r.u8()?;
                let reliable = r.bool()?;
                let payload = Bytes::copy_from_slice(r.bytes()?);
                OverlayMsg::Data {
                    frame_id,
                    msg: DataMsg {
                        src,
                        src_port,
                        dst,
                        dst_port,
                        seq,
                        mode: Dissemination::decode(mode_tag, mode_arg)?,
                        ttl,
                        route,
                        route_idx,
                        reliable,
                        payload,
                    },
                }
            }
            4 => OverlayMsg::HopAck { frame_id: r.u64()? },
            5 => OverlayMsg::ClientAttach { port: r.u16()? },
            6 => {
                let dst = OverlayId(r.u16()?);
                let dst_port = r.u16()?;
                let mode_tag = r.u8()?;
                let mode_arg = r.u8()?;
                let reliable = r.bool()?;
                let payload = Bytes::copy_from_slice(r.bytes()?);
                OverlayMsg::ClientSend {
                    dst,
                    dst_port,
                    mode: Dissemination::decode(mode_tag, mode_arg)?,
                    reliable,
                    payload,
                }
            }
            7 => {
                let src = OverlayId(r.u16()?);
                let src_port = r.u16()?;
                let payload = Bytes::copy_from_slice(r.bytes()?);
                OverlayMsg::ClientDeliver {
                    src,
                    src_port,
                    payload,
                }
            }
            8 => {
                let n = r.u16()? as usize;
                let mut frame_ids = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    frame_ids.push(r.u64()?);
                }
                OverlayMsg::HopAckMulti { frame_ids }
            }
            9 => {
                let n = r.u16()? as usize;
                let mut frames = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    frames.push(Bytes::copy_from_slice(r.bytes()?));
                }
                OverlayMsg::Batch { frames }
            }
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(msg)
    }
}

/// The canonical bytes signed in an LSA (everything except the signature).
pub fn lsa_signing_bytes(origin: OverlayId, seq: u64, neighbors: &[(OverlayId, u32)]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.raw(b"spines-lsa").u16(origin.0).u64(seq);
    for (n, weight) in neighbors {
        w.u16(n.0).u32(*weight);
    }
    w.finish().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: OverlayMsg) {
        let bytes = msg.encode();
        let decoded = OverlayMsg::decode(&bytes).expect("decode");
        assert_eq!(decoded, msg);
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(OverlayMsg::Hello {
            from: OverlayId(3),
            seq: 99,
        });
        roundtrip(OverlayMsg::Lsa {
            origin: OverlayId(1),
            seq: 5,
            neighbors: vec![(OverlayId(2), 10), (OverlayId(3), 20)],
            sig: [7u8; 64],
        });
        roundtrip(OverlayMsg::Data {
            frame_id: 42,
            msg: DataMsg {
                src: OverlayId(0),
                src_port: 10,
                dst: OverlayId(5),
                dst_port: 20,
                seq: 1234,
                mode: Dissemination::DisjointPaths(3),
                ttl: 16,
                route: vec![OverlayId(0), OverlayId(2), OverlayId(5)],
                route_idx: 1,
                reliable: true,
                payload: Bytes::from_static(b"payload"),
            },
        });
        roundtrip(OverlayMsg::HopAck { frame_id: 7 });
        roundtrip(OverlayMsg::ClientAttach { port: 80 });
        roundtrip(OverlayMsg::ClientSend {
            dst: OverlayId(9),
            dst_port: 443,
            mode: Dissemination::Flood,
            reliable: false,
            payload: Bytes::from_static(b"x"),
        });
        roundtrip(OverlayMsg::ClientDeliver {
            src: OverlayId(2),
            src_port: 7,
            payload: Bytes::new(),
        });
        roundtrip(OverlayMsg::HopAckMulti {
            frame_ids: vec![1, 99, u64::MAX],
        });
        roundtrip(OverlayMsg::Batch {
            frames: vec![
                OverlayMsg::HopAck { frame_id: 7 }.encode(),
                OverlayMsg::Hello {
                    from: OverlayId(3),
                    seq: 99,
                }
                .encode(),
            ],
        });
    }

    #[test]
    fn decode_rejects_bad_tag() {
        assert_eq!(OverlayMsg::decode(&[99]), Err(WireError::BadTag(99)));
    }

    #[test]
    fn decode_rejects_trailing() {
        let mut bytes = OverlayMsg::Hello {
            from: OverlayId(0),
            seq: 0,
        }
        .encode()
        .to_vec();
        bytes.push(0);
        assert_eq!(OverlayMsg::decode(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn decode_rejects_truncated() {
        let bytes = OverlayMsg::Hello {
            from: OverlayId(0),
            seq: 0,
        }
        .encode();
        assert_eq!(
            OverlayMsg::decode(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn lsa_signing_bytes_depend_on_content() {
        let a = lsa_signing_bytes(OverlayId(1), 1, &[(OverlayId(2), 3)]);
        let b = lsa_signing_bytes(OverlayId(1), 2, &[(OverlayId(2), 3)]);
        let c = lsa_signing_bytes(OverlayId(1), 1, &[(OverlayId(2), 4)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
