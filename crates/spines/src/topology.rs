//! Overlay topology descriptions and path computation.
//!
//! Spines daemons form an overlay graph; routing decisions (shortest path,
//! k edge-disjoint paths) are computed over it. The same structure is used
//! statically by the deployment builder and dynamically by daemons from
//! their link-state databases.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Identifies a daemon in the overlay.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct OverlayId(pub u16);

impl std::fmt::Display for OverlayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ov{}", self.0)
    }
}

/// An undirected weighted overlay graph.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    /// Adjacency: node -> (neighbor -> weight).
    adjacency: BTreeMap<OverlayId, BTreeMap<OverlayId, u32>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a node with no edges (idempotent).
    pub fn add_node(&mut self, node: OverlayId) {
        self.adjacency.entry(node).or_default();
    }

    /// Adds an undirected edge with the given weight.
    pub fn add_edge(&mut self, a: OverlayId, b: OverlayId, weight: u32) {
        assert_ne!(a, b, "self loops are not allowed");
        self.adjacency.entry(a).or_default().insert(b, weight);
        self.adjacency.entry(b).or_default().insert(a, weight);
    }

    /// Removes an undirected edge if present.
    pub fn remove_edge(&mut self, a: OverlayId, b: OverlayId) {
        if let Some(n) = self.adjacency.get_mut(&a) {
            n.remove(&b);
        }
        if let Some(n) = self.adjacency.get_mut(&b) {
            n.remove(&a);
        }
    }

    /// All nodes, sorted.
    pub fn nodes(&self) -> impl Iterator<Item = OverlayId> + '_ {
        self.adjacency.keys().copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// All undirected edges (each reported once, `a < b`).
    pub fn edges(&self) -> Vec<(OverlayId, OverlayId, u32)> {
        let mut out = Vec::new();
        for (a, neighbors) in &self.adjacency {
            for (b, w) in neighbors {
                if a < b {
                    out.push((*a, *b, *w));
                }
            }
        }
        out
    }

    /// Neighbors of a node with edge weights.
    pub fn neighbors(&self, node: OverlayId) -> impl Iterator<Item = (OverlayId, u32)> + '_ {
        self.adjacency
            .get(&node)
            .into_iter()
            .flat_map(|m| m.iter().map(|(n, w)| (*n, *w)))
    }

    /// True if the edge exists.
    pub fn has_edge(&self, a: OverlayId, b: OverlayId) -> bool {
        self.adjacency
            .get(&a)
            .map(|m| m.contains_key(&b))
            .unwrap_or(false)
    }

    /// Shortest path from `src` to `dst` (Dijkstra), including both
    /// endpoints; `None` if unreachable.
    pub fn shortest_path(&self, src: OverlayId, dst: OverlayId) -> Option<Vec<OverlayId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut dist: BTreeMap<OverlayId, u64> = BTreeMap::new();
        let mut prev: BTreeMap<OverlayId, OverlayId> = BTreeMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, OverlayId)>> = BinaryHeap::new();
        dist.insert(src, 0);
        heap.push(std::cmp::Reverse((0, src)));
        while let Some(std::cmp::Reverse((d, node))) = heap.pop() {
            if dist.get(&node).copied().unwrap_or(u64::MAX) < d {
                continue;
            }
            if node == dst {
                break;
            }
            for (next, w) in self.neighbors(node) {
                let nd = d + w as u64;
                if nd < dist.get(&next).copied().unwrap_or(u64::MAX) {
                    dist.insert(next, nd);
                    prev.insert(next, node);
                    heap.push(std::cmp::Reverse((nd, next)));
                }
            }
        }
        if !prev.contains_key(&dst) {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = prev[&cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// The next hop on the shortest path from `src` to `dst`.
    pub fn next_hop(&self, src: OverlayId, dst: OverlayId) -> Option<OverlayId> {
        let path = self.shortest_path(src, dst)?;
        path.get(1).copied()
    }

    /// Up to `k` edge-disjoint paths from `src` to `dst`, greedily removing
    /// the edges of each shortest path found (a standard approximation of a
    /// maximally disjoint dissemination graph).
    pub fn disjoint_paths(&self, src: OverlayId, dst: OverlayId, k: usize) -> Vec<Vec<OverlayId>> {
        let mut scratch = self.clone();
        let mut paths = Vec::new();
        for _ in 0..k {
            let Some(path) = scratch.shortest_path(src, dst) else {
                break;
            };
            for pair in path.windows(2) {
                scratch.remove_edge(pair[0], pair[1]);
            }
            paths.push(path);
        }
        paths
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        let Some(start) = self.nodes().next() else {
            return true;
        };
        let mut seen: BTreeSet<OverlayId> = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            if !seen.insert(node) {
                continue;
            }
            for (next, _) in self.neighbors(node) {
                if !seen.contains(&next) {
                    stack.push(next);
                }
            }
        }
        seen.len() == self.node_count()
    }

    /// Builds a fully connected mesh over `n` nodes with uniform weight.
    pub fn full_mesh(n: u16, weight: u32) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(OverlayId(i));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                t.add_edge(OverlayId(i), OverlayId(j), weight);
            }
        }
        t
    }

    /// Builds a ring over `n` nodes.
    pub fn ring(n: u16, weight: u32) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(OverlayId(i));
        }
        for i in 0..n {
            t.add_edge(OverlayId(i), OverlayId((i + 1) % n), weight);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ov(n: u16) -> OverlayId {
        OverlayId(n)
    }

    #[test]
    fn shortest_path_simple_line() {
        let mut t = Topology::new();
        t.add_edge(ov(0), ov(1), 1);
        t.add_edge(ov(1), ov(2), 1);
        assert_eq!(
            t.shortest_path(ov(0), ov(2)),
            Some(vec![ov(0), ov(1), ov(2)])
        );
        assert_eq!(t.next_hop(ov(0), ov(2)), Some(ov(1)));
        assert_eq!(t.shortest_path(ov(0), ov(0)), Some(vec![ov(0)]));
    }

    #[test]
    fn shortest_path_prefers_lower_weight() {
        let mut t = Topology::new();
        t.add_edge(ov(0), ov(1), 10);
        t.add_edge(ov(0), ov(2), 1);
        t.add_edge(ov(2), ov(1), 1);
        assert_eq!(
            t.shortest_path(ov(0), ov(1)),
            Some(vec![ov(0), ov(2), ov(1)])
        );
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        t.add_node(ov(0));
        t.add_node(ov(1));
        assert_eq!(t.shortest_path(ov(0), ov(1)), None);
        assert!(!t.is_connected());
    }

    #[test]
    fn disjoint_paths_in_mesh() {
        let t = Topology::full_mesh(5, 1);
        let paths = t.disjoint_paths(ov(0), ov(4), 3);
        assert_eq!(paths.len(), 3);
        // Paths must be pairwise edge-disjoint.
        let mut used = std::collections::HashSet::new();
        for p in &paths {
            for w in p.windows(2) {
                let e = if w[0] < w[1] {
                    (w[0], w[1])
                } else {
                    (w[1], w[0])
                };
                assert!(used.insert(e), "edge reused across paths");
            }
        }
    }

    #[test]
    fn disjoint_paths_limited_by_cuts() {
        // A line has exactly one path.
        let mut t = Topology::new();
        t.add_edge(ov(0), ov(1), 1);
        t.add_edge(ov(1), ov(2), 1);
        let paths = t.disjoint_paths(ov(0), ov(2), 3);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn remove_edge_disconnects() {
        let mut t = Topology::ring(4, 1);
        assert!(t.is_connected());
        t.remove_edge(ov(0), ov(1));
        assert!(t.is_connected()); // ring minus one edge is a line
        t.remove_edge(ov(2), ov(3));
        assert!(!t.is_connected());
    }

    #[test]
    fn edges_reported_once() {
        let t = Topology::full_mesh(4, 2);
        assert_eq!(t.edges().len(), 6);
        assert!(t.has_edge(ov(1), ov(3)));
    }
}
