//! Spines: the intrusion-tolerant overlay network of the Spire system,
//! reproduced from scratch.
//!
//! Spire (Babay et al., DSN 2018) routes all SCADA traffic over the Spines
//! overlay-messaging system so that the *network itself* tolerates attacks:
//! links are authenticated, routing survives node and link failures, and
//! resource allocation is fair per source so flooding denial-of-service
//! cannot starve legitimate traffic. This crate reproduces those mechanisms
//! as simulation processes:
//!
//! * [`topology`] — the overlay graph and path computation (shortest paths,
//!   k edge-disjoint paths).
//! * [`msg`] — the overlay wire protocol.
//! * [`daemon`] — the overlay daemon: authenticated links (HMAC), signed
//!   link-state routing, three dissemination modes, hop-by-hop reliability,
//!   and per-source fair rate limiting.
//! * [`client`] — the client library applications use to reach their local
//!   daemon.
//! * [`network`] — a builder that deploys a whole overlay into a
//!   [`spire_sim::World`].
//!
//! Two separate overlay instances are used by a Spire deployment, exactly as
//! in the paper: an *internal* network connecting SCADA-master replicas
//! across control centers and data centers, and an *external* network
//! connecting substation proxies and HMIs to the control centers.

pub mod client;
pub mod daemon;
pub mod msg;
pub mod network;
pub mod topology;

pub use client::{OverlayAddr, SpinesPort};
pub use daemon::{Daemon, DaemonBehavior, DaemonConfig};
pub use msg::{DataMsg, Dissemination, OverlayMsg};
pub use network::OverlayNetwork;
pub use topology::{OverlayId, Topology};
