//! The Spines overlay daemon.
//!
//! Each daemon maintains authenticated links to its overlay neighbors,
//! floods signed link-state advertisements, and forwards application
//! traffic under three dissemination modes (shortest path, k edge-disjoint
//! paths, constrained flooding). Two mechanisms provide the paper's
//! *network-attack resilience*:
//!
//! 1. **Authentication** — every daemon-to-daemon frame carries an HMAC
//!    keyed per link, and every LSA is signed by its origin; injected or
//!    corrupted traffic is dropped at the first hop.
//! 2. **Per-source fairness** — flooded traffic is rate-limited per source
//!    with a token bucket, so a single compromised client or daemon cannot
//!    starve other sources (Spines' fair resource allocation).
//!
//! Hop-by-hop reliability (ack + retransmit) recovers from lossy links.
//! Data frames and hop acks bound for the same neighbor coalesce into
//! link-level batches sealed by one HMAC per flush window (see
//! [`DaemonConfig::batch_window`]) — constrained flooding otherwise
//! amplifies every application message into one authenticated frame and
//! one ack per overlay edge.

use crate::msg::{lsa_signing_bytes, DataMsg, Dissemination, OverlayMsg};
use crate::topology::{OverlayId, Topology};
use bytes::Bytes;
use spire_crypto::ed25519::Signature;
use spire_crypto::hmac::{hmac_sha256, verify_hmac_sha256};
use spire_crypto::{KeyStore, NodeId, SigningKey};
use spire_sim::{Context, Process, ProcessId, Span, Time, TraceKind};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

const TIMER_HELLO: u64 = 1;
const TIMER_LSA: u64 = 2;
const TIMER_RETX: u64 = 3;
const TIMER_FLUSH: u64 = 4;

/// Tuning knobs for a daemon.
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Interval between hello probes.
    pub hello_interval: Span,
    /// A neighbor is declared dead if silent for this long.
    pub dead_after: Span,
    /// Interval between periodic LSA refreshes.
    pub lsa_interval: Span,
    /// Link-state advertisements older than this are aged out of the
    /// database (a crashed daemon's stale adjacency must not linger).
    pub lsa_max_age: Span,
    /// Retransmission scan interval for reliable frames.
    pub retransmit_interval: Span,
    /// Retransmission timeout for a reliable frame.
    pub retransmit_timeout: Span,
    /// Give up after this many retransmissions.
    pub max_retries: u32,
    /// Initial TTL for data messages.
    pub default_ttl: u8,
    /// Sustained flood forwarding rate allowed per source (messages/sec).
    pub flood_rate_per_source: f64,
    /// Burst allowance per source (messages).
    pub flood_burst: f64,
    /// Hop-level link batching: data frames and hop acks bound for the same
    /// neighbor are staged for up to this window and flushed as one
    /// [`OverlayMsg::Batch`] under a single link HMAC. Real Spines packs
    /// messages into link-level packets the same way; without it, flooding
    /// amplifies every application message into one authenticated frame per
    /// overlay edge *plus* one ack per frame. `Span::ZERO` disables
    /// batching (every message is framed and acked individually).
    pub batch_window: Span,
    /// Flush a neighbor's stage early once this many frames are queued,
    /// bounding batch size and staging memory under load.
    pub batch_max_frames: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            hello_interval: Span::millis(500),
            dead_after: Span::millis(1_800),
            lsa_interval: Span::secs(5),
            lsa_max_age: Span::secs(16),
            retransmit_interval: Span::millis(20),
            retransmit_timeout: Span::millis(60),
            // With exponential backoff (60 ms doubling, 2 s cap) twelve
            // retries span roughly ten seconds: enough for liveness
            // detection to update routes and the re-route path to kick in.
            max_retries: 12,
            default_ttl: 32,
            flood_rate_per_source: 5_000.0,
            flood_burst: 500.0,
            batch_window: Span::millis(1),
            batch_max_frames: 32,
        }
    }
}

/// Fault model of a daemon, for attack-injection experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DaemonBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Forwards control traffic but silently drops all data (blackhole).
    Blackhole,
    /// Flips a byte in every forwarded data payload (detected end-to-end by
    /// the application's signatures, and at the hop by HMAC only if the
    /// corruption happens before authentication — a compromised daemon
    /// re-MACs, so end-to-end protection is what catches it).
    Corrupting,
}

struct NeighborState {
    pid: ProcessId,
    link_key: [u8; 32],
    weight: u32,
    last_heard: Time,
    alive: bool,
}

struct LsaEntry {
    seq: u64,
    neighbors: Vec<(OverlayId, u32)>,
    /// When this advertisement was accepted (for aging).
    received_at: Time,
}

struct PendingFrame {
    to_pid: ProcessId,
    to_overlay: OverlayId,
    msg: DataMsg,
    /// Encoded wire body, *without* the link HMAC: the first transmission
    /// rides a batch (one HMAC per batch), so retransmissions — the rare
    /// path — re-seal individually from this.
    body: Bytes,
    retries: u32,
    next_at: Time,
    /// Current retransmission timeout (doubles per retry, capped).
    rto: Span,
}

struct TokenBucket {
    tokens: f64,
    last: Time,
}

/// A Spines overlay daemon (a [`Process`] in the simulation).
pub struct Daemon {
    me: OverlayId,
    cfg: DaemonConfig,
    behavior: DaemonBehavior,
    signing: SigningKey,
    keystore: Arc<KeyStore>,
    /// crypto NodeId of overlay node i is `key_base + i`.
    key_base: u32,
    neighbors: BTreeMap<OverlayId, NeighborState>,
    pid_to_overlay: BTreeMap<ProcessId, OverlayId>,
    clients: BTreeMap<u16, ProcessId>,
    lsa_db: BTreeMap<OverlayId, LsaEntry>,
    my_lsa_seq: u64,
    routes: Option<Topology>,
    flood_seen: HashSet<(u16, u16, u64)>,
    flood_seen_order: VecDeque<(u16, u16, u64)>,
    frame_seen: HashSet<u64>,
    frame_seen_order: VecDeque<u64>,
    pending: BTreeMap<u64, PendingFrame>,
    next_frame: u64,
    send_seq: BTreeMap<u16, u64>,
    buckets: BTreeMap<OverlayId, TokenBucket>,
    hello_seq: u64,
    /// Per-neighbor staged frames awaiting the next batch flush.
    stage: BTreeMap<OverlayId, Vec<Bytes>>,
    /// Per-neighbor staged hop acks, flushed as one cumulative ack.
    staged_acks: BTreeMap<OverlayId, Vec<u64>>,
    /// Whether a TIMER_FLUSH is already pending.
    flush_scheduled: bool,
}

const SEEN_CAP: usize = 100_000;

impl Daemon {
    /// Creates a daemon.
    ///
    /// `neighbors` maps each overlay neighbor to its simulation process and
    /// link weight; `link_keys` carries the shared per-link HMAC keys.
    /// `key_base` maps overlay ids into the [`KeyStore`] id space.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: OverlayId,
        cfg: DaemonConfig,
        behavior: DaemonBehavior,
        signing: SigningKey,
        keystore: Arc<KeyStore>,
        key_base: u32,
        neighbors: Vec<(OverlayId, ProcessId, u32, [u8; 32])>,
    ) -> Daemon {
        let mut neighbor_map = BTreeMap::new();
        let mut pid_to_overlay = BTreeMap::new();
        for (id, pid, weight, link_key) in neighbors {
            pid_to_overlay.insert(pid, id);
            neighbor_map.insert(
                id,
                NeighborState {
                    pid,
                    link_key,
                    weight,
                    last_heard: Time::ZERO,
                    alive: true,
                },
            );
        }
        Daemon {
            me,
            cfg,
            behavior,
            signing,
            keystore,
            key_base,
            neighbors: neighbor_map,
            pid_to_overlay,
            clients: BTreeMap::new(),
            lsa_db: BTreeMap::new(),
            my_lsa_seq: 0,
            routes: None,
            flood_seen: HashSet::new(),
            flood_seen_order: VecDeque::new(),
            frame_seen: HashSet::new(),
            frame_seen_order: VecDeque::new(),
            pending: BTreeMap::new(),
            next_frame: 0,
            send_seq: BTreeMap::new(),
            buckets: BTreeMap::new(),
            hello_seq: 0,
            stage: BTreeMap::new(),
            staged_acks: BTreeMap::new(),
            flush_scheduled: false,
        }
    }

    fn crypto_id(&self, overlay: OverlayId) -> NodeId {
        NodeId(self.key_base + overlay.0 as u32)
    }

    /// Seals an encoded body with the neighbor's link HMAC and sends it.
    fn seal_to(&mut self, ctx: &mut Context<'_>, neighbor: OverlayId, body: &[u8]) {
        let Some(state) = self.neighbors.get(&neighbor) else {
            return;
        };
        let tag = hmac_sha256(&state.link_key, body);
        let mut framed = Vec::with_capacity(body.len() + 32);
        framed.extend_from_slice(body);
        framed.extend_from_slice(&tag);
        ctx.send(state.pid, Bytes::from(framed));
    }

    fn frame_to(&mut self, ctx: &mut Context<'_>, neighbor: OverlayId, msg: &OverlayMsg) {
        let body = msg.encode();
        self.seal_to(ctx, neighbor, &body);
    }

    fn batching(&self) -> bool {
        self.cfg.batch_window.0 > 0
    }

    /// Queues an encoded frame for the neighbor's next batch flush.
    fn stage_frame(&mut self, ctx: &mut Context<'_>, neighbor: OverlayId, body: Bytes) {
        let queued = {
            let stage = self.stage.entry(neighbor).or_default();
            stage.push(body);
            stage.len()
        };
        if queued >= self.cfg.batch_max_frames {
            self.flush_neighbor(ctx, neighbor);
        } else {
            self.schedule_flush(ctx);
        }
    }

    fn schedule_flush(&mut self, ctx: &mut Context<'_>) {
        if !self.flush_scheduled {
            self.flush_scheduled = true;
            ctx.set_timer(self.cfg.batch_window, TIMER_FLUSH);
        }
    }

    /// Flushes one neighbor's staged acks + frames as a single sealed batch.
    /// Acks go first so the sender's retransmission table drains promptly.
    fn flush_neighbor(&mut self, ctx: &mut Context<'_>, neighbor: OverlayId) {
        let acks = self.staged_acks.remove(&neighbor).unwrap_or_default();
        let mut frames = self.stage.remove(&neighbor).unwrap_or_default();
        if !acks.is_empty() {
            let ack = if acks.len() == 1 {
                OverlayMsg::HopAck { frame_id: acks[0] }
            } else {
                OverlayMsg::HopAckMulti { frame_ids: acks }
            };
            frames.insert(0, ack.encode());
        }
        match frames.len() {
            0 => {}
            1 => self.seal_to(ctx, neighbor, &frames[0]),
            n => {
                ctx.count("spines.link_batches", 1);
                ctx.count("spines.link_batched_frames", n as u64);
                let body = OverlayMsg::Batch { frames }.encode();
                self.seal_to(ctx, neighbor, &body);
            }
        }
    }

    fn flush_stages(&mut self, ctx: &mut Context<'_>) {
        if self.stage.is_empty() && self.staged_acks.is_empty() {
            return;
        }
        let mut targets: Vec<OverlayId> = self.stage.keys().copied().collect();
        for n in self.staged_acks.keys() {
            if !targets.contains(n) {
                targets.push(*n);
            }
        }
        for n in targets {
            self.flush_neighbor(ctx, n);
        }
    }

    /// Sends a data frame to a neighbor, registering it for retransmission
    /// if reliability was requested.
    fn send_data_frame(&mut self, ctx: &mut Context<'_>, neighbor: OverlayId, msg: DataMsg) {
        if self.behavior == DaemonBehavior::Blackhole && msg.src != self.me {
            ctx.count("spines.blackholed", 1);
            return;
        }
        let mut msg = msg;
        if self.behavior == DaemonBehavior::Corrupting && !msg.payload.is_empty() {
            let mut corrupted = msg.payload.to_vec();
            corrupted[0] ^= 0xff;
            msg.payload = Bytes::from(corrupted);
            ctx.count("spines.corrupted", 1);
        }
        if ctx.tracing_enabled() {
            ctx.trace(TraceKind::OverlayHop {
                daemon: ctx.id().0,
                src: msg.src.0,
                dst: msg.dst.0,
                ttl: msg.ttl,
            });
        }
        let frame_id = ((self.me.0 as u64) << 40) | self.next_frame;
        self.next_frame += 1;
        let reliable = msg.reliable;
        if reliable {
            let Some(state) = self.neighbors.get(&neighbor) else {
                return;
            };
            let to_pid = state.pid;
            let wire = OverlayMsg::Data {
                frame_id,
                msg: msg.clone(),
            };
            let body = wire.encode();
            self.pending.insert(
                frame_id,
                PendingFrame {
                    to_pid,
                    to_overlay: neighbor,
                    msg,
                    body: body.clone(),
                    retries: 0,
                    next_at: ctx.now() + self.cfg.retransmit_timeout,
                    rto: self.cfg.retransmit_timeout,
                },
            );
            if self.batching() {
                self.stage_frame(ctx, neighbor, body);
            } else {
                self.seal_to(ctx, neighbor, &body);
            }
        } else {
            let wire = OverlayMsg::Data { frame_id, msg };
            if self.batching() {
                let body = wire.encode();
                self.stage_frame(ctx, neighbor, body);
            } else {
                self.frame_to(ctx, neighbor, &wire);
            }
        }
    }

    fn regenerate_lsa(&mut self, ctx: &mut Context<'_>) {
        self.my_lsa_seq += 1;
        let neighbors: Vec<(OverlayId, u32)> = self
            .neighbors
            .iter()
            .filter(|(_, s)| s.alive)
            .map(|(id, s)| (*id, s.weight))
            .collect();
        let bytes = lsa_signing_bytes(self.me, self.my_lsa_seq, &neighbors);
        let sig = self.signing.sign(&bytes);
        let lsa = OverlayMsg::Lsa {
            origin: self.me,
            seq: self.my_lsa_seq,
            neighbors: neighbors.clone(),
            sig: sig.to_bytes(),
        };
        self.lsa_db.insert(
            self.me,
            LsaEntry {
                seq: self.my_lsa_seq,
                neighbors,
                received_at: ctx.now(),
            },
        );
        self.routes = None;
        let targets: Vec<OverlayId> = self.alive_neighbors();
        for n in targets {
            self.frame_to(ctx, n, &lsa);
        }
    }

    fn alive_neighbors(&self) -> Vec<OverlayId> {
        self.neighbors
            .iter()
            .filter(|(_, s)| s.alive)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Builds the routing topology from the LSA database. An edge is used
    /// only if *both* endpoints advertise it, so a single lying daemon
    /// cannot fabricate adjacencies to attract traffic.
    fn topology(&mut self) -> &Topology {
        if self.routes.is_none() {
            let mut t = Topology::new();
            t.add_node(self.me);
            for origin in self.lsa_db.keys() {
                t.add_node(*origin);
            }
            let claims: Vec<(OverlayId, OverlayId, u32)> = self
                .lsa_db
                .iter()
                .flat_map(|(origin, entry)| {
                    entry.neighbors.iter().map(move |(n, w)| (*origin, *n, *w))
                })
                .collect();
            for (a, b, w) in &claims {
                if a < b {
                    let reverse = self
                        .lsa_db
                        .get(b)
                        .map(|e| e.neighbors.iter().any(|(n, _)| n == a))
                        .unwrap_or(false);
                    if reverse {
                        t.add_edge(*a, *b, *w);
                    }
                }
            }
            self.routes = Some(t);
        }
        self.routes.as_ref().unwrap()
    }

    fn mark_flood_seen(&mut self, key: (u16, u16, u64)) -> bool {
        if self.flood_seen.contains(&key) {
            return false;
        }
        self.flood_seen.insert(key);
        self.flood_seen_order.push_back(key);
        if self.flood_seen_order.len() > SEEN_CAP {
            if let Some(old) = self.flood_seen_order.pop_front() {
                self.flood_seen.remove(&old);
            }
        }
        true
    }

    fn mark_frame_seen(&mut self, frame_id: u64) -> bool {
        if self.frame_seen.contains(&frame_id) {
            return false;
        }
        self.frame_seen.insert(frame_id);
        self.frame_seen_order.push_back(frame_id);
        if self.frame_seen_order.len() > SEEN_CAP {
            if let Some(old) = self.frame_seen_order.pop_front() {
                self.frame_seen.remove(&old);
            }
        }
        true
    }

    fn take_flood_token(&mut self, now: Time, source: OverlayId) -> bool {
        let bucket = self.buckets.entry(source).or_insert(TokenBucket {
            tokens: self.cfg.flood_burst,
            last: now,
        });
        let dt = now.since(bucket.last).as_secs_f64();
        bucket.last = now;
        bucket.tokens =
            (bucket.tokens + dt * self.cfg.flood_rate_per_source).min(self.cfg.flood_burst);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    fn deliver_local(&mut self, ctx: &mut Context<'_>, msg: &DataMsg) {
        let Some(client) = self.clients.get(&msg.dst_port).copied() else {
            ctx.count("spines.no_client_drop", 1);
            return;
        };
        let deliver = OverlayMsg::ClientDeliver {
            src: msg.src,
            src_port: msg.src_port,
            payload: msg.payload.clone(),
        };
        ctx.send(client, deliver.encode());
        ctx.count("spines.delivered", 1);
    }

    /// Core forwarding logic shared by locally originated and transit data.
    fn route_data(&mut self, ctx: &mut Context<'_>, mut msg: DataMsg, from_hop: Option<OverlayId>) {
        match msg.mode {
            Dissemination::Flood => {
                let key = (msg.src.0, msg.src_port, msg.seq);
                if !self.mark_flood_seen(key) {
                    return;
                }
                if msg.dst == self.me {
                    self.deliver_local(ctx, &msg);
                    return;
                }
                // Per-source fairness: a flooding source cannot consume more
                // than its token rate at this daemon.
                if !self.take_flood_token(ctx.now(), msg.src) {
                    ctx.count("spines.flood_rate_limited", 1);
                    return;
                }
                if msg.ttl == 0 {
                    ctx.count("spines.ttl_drop", 1);
                    return;
                }
                msg.ttl -= 1;
                for n in self.alive_neighbors() {
                    if Some(n) != from_hop {
                        self.send_data_frame(ctx, n, msg.clone());
                    }
                }
            }
            Dissemination::Shortest => {
                if msg.dst == self.me {
                    let key = (msg.src.0, msg.src_port, msg.seq);
                    if self.mark_flood_seen(key) {
                        self.deliver_local(ctx, &msg);
                    }
                    return;
                }
                if msg.ttl == 0 {
                    ctx.count("spines.ttl_drop", 1);
                    return;
                }
                msg.ttl -= 1;
                let me = self.me;
                let dst = msg.dst;
                let next = self.topology().next_hop(me, dst);
                match next {
                    Some(n) => self.send_data_frame(ctx, n, msg),
                    None => ctx.count("spines.no_route_drop", 1),
                }
            }
            Dissemination::DisjointPaths(_) => {
                if msg.dst == self.me {
                    let key = (msg.src.0, msg.src_port, msg.seq);
                    if self.mark_flood_seen(key) {
                        self.deliver_local(ctx, &msg);
                    }
                    return;
                }
                if msg.ttl == 0 {
                    ctx.count("spines.ttl_drop", 1);
                    return;
                }
                msg.ttl -= 1;
                let idx = msg.route_idx as usize;
                if idx < msg.route.len() {
                    let next = msg.route[idx];
                    msg.route_idx += 1;
                    self.send_data_frame(ctx, next, msg);
                } else {
                    ctx.count("spines.bad_route_drop", 1);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn originate(
        &mut self,
        ctx: &mut Context<'_>,
        src_port: u16,
        dst: OverlayId,
        dst_port: u16,
        mode: Dissemination,
        reliable: bool,
        payload: Bytes,
    ) {
        let seq = {
            let counter = self.send_seq.entry(src_port).or_insert(0);
            *counter += 1;
            *counter
        };
        let base = DataMsg {
            src: self.me,
            src_port,
            dst,
            dst_port,
            seq,
            mode,
            ttl: self.cfg.default_ttl,
            route: Vec::new(),
            route_idx: 0,
            reliable,
            payload,
        };
        match mode {
            Dissemination::DisjointPaths(k) => {
                if dst == self.me {
                    let mut msg = base;
                    msg.mode = Dissemination::Shortest;
                    self.route_data(ctx, msg, None);
                    return;
                }
                let me = self.me;
                let paths = self.topology().disjoint_paths(me, dst, k.max(1) as usize);
                if paths.is_empty() {
                    ctx.count("spines.no_route_drop", 1);
                    return;
                }
                for path in paths {
                    let mut msg = base.clone();
                    msg.route = path;
                    msg.route_idx = 1; // position of the hop after us
                    let next = msg.route[1];
                    msg.route_idx = 2;
                    msg.ttl = self.cfg.default_ttl;
                    self.send_data_frame(ctx, next, msg);
                }
            }
            _ => self.route_data(ctx, base, None),
        }
    }

    fn on_neighbor_msg(&mut self, ctx: &mut Context<'_>, from: OverlayId, msg: OverlayMsg) {
        match msg {
            OverlayMsg::Hello {
                from: h_from,
                seq: _,
            } => {
                if h_from != from {
                    ctx.count("spines.hello_spoof_drop", 1);
                    return;
                }
                let hello_interval = self.cfg.hello_interval;
                let newly_alive = {
                    let Some(state) = self.neighbors.get_mut(&from) else {
                        return;
                    };
                    let previous = state.last_heard;
                    state.last_heard = ctx.now();
                    if state.alive {
                        false
                    } else {
                        // Damping: a congested link leaking the occasional
                        // hello must not flap alive; require two hellos in
                        // quick succession before reviving.
                        let stable = ctx.now().since(previous) <= hello_interval.times(2);
                        if stable {
                            state.alive = true;
                        }
                        stable
                    }
                };
                if newly_alive {
                    self.regenerate_lsa(ctx);
                }
            }
            OverlayMsg::Lsa {
                origin,
                seq,
                neighbors,
                sig,
            } => {
                if origin == self.me {
                    return;
                }
                let known = self.lsa_db.get(&origin).map(|e| e.seq).unwrap_or(0);
                if seq <= known {
                    return;
                }
                let bytes = lsa_signing_bytes(origin, seq, &neighbors);
                let signature = Signature::from_bytes(sig);
                if !self
                    .keystore
                    .verify(self.crypto_id(origin), &bytes, &signature)
                {
                    ctx.count("spines.lsa_bad_sig", 1);
                    return;
                }
                self.lsa_db.insert(
                    origin,
                    LsaEntry {
                        seq,
                        neighbors,
                        received_at: ctx.now(),
                    },
                );
                self.routes = None;
                // Flood onward.
                let lsa = OverlayMsg::Lsa {
                    origin,
                    seq,
                    neighbors: self.lsa_db[&origin].neighbors.clone(),
                    sig,
                };
                for n in self.alive_neighbors() {
                    if n != from {
                        self.frame_to(ctx, n, &lsa);
                    }
                }
            }
            OverlayMsg::Data { frame_id, msg } => {
                if msg.reliable {
                    if self.batching() {
                        // Cumulative ack: all reliable frames of one batch
                        // (or window) are acknowledged in a single
                        // HopAckMulti on the next flush.
                        self.staged_acks.entry(from).or_default().push(frame_id);
                        self.schedule_flush(ctx);
                    } else {
                        self.frame_to(ctx, from, &OverlayMsg::HopAck { frame_id });
                    }
                    if !self.mark_frame_seen(frame_id) {
                        return; // duplicate retransmission
                    }
                }
                self.route_data(ctx, msg, Some(from));
            }
            OverlayMsg::HopAck { frame_id } => {
                self.pending.remove(&frame_id);
            }
            OverlayMsg::HopAckMulti { frame_ids } => {
                for frame_id in frame_ids {
                    self.pending.remove(&frame_id);
                }
            }
            OverlayMsg::Batch { frames } => {
                for body in frames {
                    match OverlayMsg::decode(&body) {
                        // Refuse nesting: a forwarded batch-of-batches could
                        // otherwise recurse unboundedly.
                        Ok(OverlayMsg::Batch { .. }) => {
                            ctx.count("spines.nested_batch_drop", 1);
                        }
                        Ok(sub) => self.on_neighbor_msg(ctx, from, sub),
                        Err(_) => ctx.count("spines.decode_fail", 1),
                    }
                }
            }
            _ => ctx.count("spines.unexpected_neighbor_msg", 1),
        }
    }

    fn on_client_msg(&mut self, ctx: &mut Context<'_>, from: ProcessId, msg: OverlayMsg) {
        match msg {
            OverlayMsg::ClientAttach { port } => {
                self.clients.insert(port, from);
            }
            OverlayMsg::ClientSend {
                dst,
                dst_port,
                mode,
                reliable,
                payload,
            } => {
                // Identify the sending client's port (must be attached).
                let Some(src_port) = self
                    .clients
                    .iter()
                    .find(|(_, pid)| **pid == from)
                    .map(|(port, _)| *port)
                else {
                    ctx.count("spines.unattached_client_drop", 1);
                    return;
                };
                self.originate(ctx, src_port, dst, dst_port, mode, reliable, payload);
            }
            _ => ctx.count("spines.unexpected_client_msg", 1),
        }
    }
}

impl Process for Daemon {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for (_, state) in self.neighbors.iter_mut() {
            state.last_heard = ctx.now();
        }
        ctx.set_timer(self.cfg.hello_interval, TIMER_HELLO);
        ctx.set_timer(self.cfg.lsa_interval, TIMER_LSA);
        ctx.set_timer(self.cfg.retransmit_interval, TIMER_RETX);
        self.regenerate_lsa(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, bytes: &Bytes) {
        if let Some(overlay_from) = self.pid_to_overlay.get(&from).copied() {
            // Neighbor daemon: verify the link HMAC.
            if bytes.len() < 32 {
                ctx.count("spines.short_frame_drop", 1);
                return;
            }
            let (body, tag_bytes) = bytes.split_at(bytes.len() - 32);
            let tag: [u8; 32] = tag_bytes.try_into().unwrap();
            let key = self.neighbors[&overlay_from].link_key;
            if !verify_hmac_sha256(&key, body, &tag) {
                ctx.count("spines.hmac_fail", 1);
                return;
            }
            match OverlayMsg::decode(body) {
                Ok(msg) => self.on_neighbor_msg(ctx, overlay_from, msg),
                Err(_) => ctx.count("spines.decode_fail", 1),
            }
            // Acks are latency-critical — a delayed ack fires the sender's
            // retransmission timer and multiplies traffic — so they flush at
            // the end of the activation that received the data (one
            // cumulative ack per incoming batch), while forwarded data keeps
            // riding the coalescing window.
            if !self.staged_acks.is_empty() {
                let targets: Vec<OverlayId> = self.staged_acks.keys().copied().collect();
                for n in targets {
                    self.flush_neighbor(ctx, n);
                }
            }
        } else {
            // Local client.
            match OverlayMsg::decode(bytes) {
                Ok(msg) => self.on_client_msg(ctx, from, msg),
                Err(_) => ctx.count("spines.client_decode_fail", 1),
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        match tag {
            TIMER_HELLO => {
                self.hello_seq += 1;
                let hello = OverlayMsg::Hello {
                    from: self.me,
                    seq: self.hello_seq,
                };
                let all: Vec<OverlayId> = self.neighbors.keys().copied().collect();
                for n in all {
                    self.frame_to(ctx, n, &hello);
                }
                // Death detection.
                let now = ctx.now();
                let dead_after = self.cfg.dead_after;
                let mut changed = false;
                for (_, state) in self.neighbors.iter_mut() {
                    if state.alive && now.since(state.last_heard) > dead_after {
                        state.alive = false;
                        changed = true;
                    }
                }
                if changed {
                    self.regenerate_lsa(ctx);
                }
                ctx.set_timer(self.cfg.hello_interval, TIMER_HELLO);
            }
            TIMER_LSA => {
                // Age out stale advertisements (their origin stopped
                // refreshing: crashed, partitioned, or compromised-and-
                // silenced). Our own entry is refreshed just below.
                let now = ctx.now();
                let max_age = self.cfg.lsa_max_age;
                let me = self.me;
                let before = self.lsa_db.len();
                self.lsa_db
                    .retain(|origin, e| *origin == me || now.since(e.received_at) <= max_age);
                if self.lsa_db.len() != before {
                    self.routes = None;
                    ctx.count("spines.lsa_aged_out", 1);
                }
                self.regenerate_lsa(ctx);
                ctx.set_timer(self.cfg.lsa_interval, TIMER_LSA);
            }
            TIMER_RETX => {
                let now = ctx.now();
                let mut to_resend: Vec<u64> = Vec::new();
                let mut to_drop: Vec<u64> = Vec::new();
                let mut to_reroute: Vec<u64> = Vec::new();
                let expired: Vec<u64> = self
                    .pending
                    .iter()
                    .filter(|(_, f)| f.next_at <= now)
                    .map(|(id, _)| *id)
                    .collect();
                for id in expired {
                    let (mode, dst, to_overlay, retries) = {
                        let f = &self.pending[&id];
                        (f.msg.mode, f.msg.dst, f.to_overlay, f.retries)
                    };
                    // If routing has moved away from the pending next hop
                    // (e.g. the neighbor was declared dead), re-route the
                    // payload along the new path instead of retrying a dead
                    // link forever.
                    if mode == Dissemination::Shortest {
                        let me = self.me;
                        let current = self.topology().next_hop(me, dst);
                        if current.is_some() && current != Some(to_overlay) {
                            to_reroute.push(id);
                            continue;
                        }
                    }
                    // Frames bound for a dead neighbor are dropped: flooded
                    // and disjoint-path traffic has redundant copies, and
                    // retransmitting into a black hole only feeds congestion
                    // collapse under DoS.
                    let neighbor_dead = self
                        .neighbors
                        .get(&to_overlay)
                        .map(|s| !s.alive)
                        .unwrap_or(true);
                    if neighbor_dead && mode != Dissemination::Shortest {
                        to_drop.push(id);
                        continue;
                    }
                    if retries >= self.cfg.max_retries {
                        to_drop.push(id);
                    } else {
                        to_resend.push(id);
                    }
                }
                for id in to_drop {
                    self.pending.remove(&id);
                    ctx.count("spines.retx_give_up", 1);
                }
                for id in to_reroute {
                    if let Some(frame) = self.pending.remove(&id) {
                        ctx.count("spines.rerouted", 1);
                        self.route_data(ctx, frame.msg, None);
                    }
                }
                for id in to_resend {
                    if let Some(frame) = self.pending.get_mut(&id) {
                        frame.retries += 1;
                        // Exponential backoff, capped: persistent loss must
                        // not multiply traffic.
                        frame.rto = Span::micros((frame.rto.0 * 2).min(2_000_000));
                        frame.next_at = now + frame.rto;
                        // Retransmissions bypass the batch stage and are
                        // sealed individually: the rare path pays the
                        // per-frame HMAC so the common path doesn't.
                        let Some(state) = self.neighbors.get(&frame.to_overlay) else {
                            continue;
                        };
                        let tag = hmac_sha256(&state.link_key, &frame.body);
                        let mut framed = Vec::with_capacity(frame.body.len() + 32);
                        framed.extend_from_slice(&frame.body);
                        framed.extend_from_slice(&tag);
                        ctx.send(frame.to_pid, Bytes::from(framed));
                        ctx.count("spines.retx", 1);
                    }
                }
                ctx.set_timer(self.cfg.retransmit_interval, TIMER_RETX);
            }
            TIMER_FLUSH => {
                self.flush_scheduled = false;
                self.flush_stages(ctx);
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("me", &self.me)
            .field("neighbors", &self.neighbors.len())
            .field("clients", &self.clients.len())
            .finish()
    }
}
