//! Client-side helper for talking to a co-located Spines daemon.
//!
//! An application process (Prime replica, SCADA proxy, HMI) attaches to a
//! port on its local daemon, then sends and receives overlay messages
//! through it — mirroring the Spines client library the paper's components
//! link against.

use crate::msg::{Dissemination, OverlayMsg};
use crate::topology::OverlayId;
use bytes::Bytes;
use spire_sim::{Context, ProcessId};

/// An overlay address: daemon + client port.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OverlayAddr {
    /// The daemon the client sits behind.
    pub node: OverlayId,
    /// The client port on that daemon.
    pub port: u16,
}

impl std::fmt::Display for OverlayAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// Handle used by an application process to use its local daemon.
#[derive(Clone, Copy, Debug)]
pub struct SpinesPort {
    /// Simulation process id of the local daemon.
    pub daemon_pid: ProcessId,
    /// This client's address.
    pub addr: OverlayAddr,
}

impl SpinesPort {
    /// Creates a handle (the caller must also have a sim link between the
    /// client process and the daemon process).
    pub fn new(daemon_pid: ProcessId, addr: OverlayAddr) -> SpinesPort {
        SpinesPort { daemon_pid, addr }
    }

    /// Binds this client's port on the daemon. Call from `on_start`.
    pub fn attach(&self, ctx: &mut Context<'_>) {
        let msg = OverlayMsg::ClientAttach {
            port: self.addr.port,
        };
        ctx.send(self.daemon_pid, msg.encode());
    }

    /// Sends `payload` to `dst` through the overlay.
    pub fn send(
        &self,
        ctx: &mut Context<'_>,
        dst: OverlayAddr,
        mode: Dissemination,
        reliable: bool,
        payload: Bytes,
    ) {
        let msg = OverlayMsg::ClientSend {
            dst: dst.node,
            dst_port: dst.port,
            mode,
            reliable,
            payload,
        };
        ctx.send(self.daemon_pid, msg.encode());
    }

    /// Parses an incoming daemon message; returns `(source, payload)` for
    /// data deliveries and `None` for anything else.
    pub fn decode_deliver(bytes: &Bytes) -> Option<(OverlayAddr, Bytes)> {
        match OverlayMsg::decode(bytes) {
            Ok(OverlayMsg::ClientDeliver {
                src,
                src_port,
                payload,
            }) => Some((
                OverlayAddr {
                    node: src,
                    port: src_port,
                },
                payload,
            )),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_deliver_roundtrip() {
        let msg = OverlayMsg::ClientDeliver {
            src: OverlayId(3),
            src_port: 9,
            payload: Bytes::from_static(b"hi"),
        };
        let (addr, payload) = SpinesPort::decode_deliver(&msg.encode()).unwrap();
        assert_eq!(
            addr,
            OverlayAddr {
                node: OverlayId(3),
                port: 9
            }
        );
        assert_eq!(payload, Bytes::from_static(b"hi"));
    }

    #[test]
    fn decode_deliver_rejects_other_messages() {
        let msg = OverlayMsg::Hello {
            from: OverlayId(0),
            seq: 1,
        };
        assert!(SpinesPort::decode_deliver(&msg.encode()).is_none());
        assert!(SpinesPort::decode_deliver(&Bytes::from_static(b"junk")).is_none());
    }

    #[test]
    fn addr_display() {
        let addr = OverlayAddr {
            node: OverlayId(2),
            port: 80,
        };
        assert_eq!(format!("{addr}"), "ov2:80");
    }
}
