//! End-to-end tests of the Spines overlay inside the simulator: delivery
//! under each dissemination mode, resilience to node/link failures, link
//! authentication, and per-source flooding fairness.

use bytes::Bytes;
use spire_crypto::{KeyMaterial, KeyStore};
use spire_sim::{Context, LinkConfig, Process, ProcessId, Span, World};
use spire_spines::{
    DaemonBehavior, DaemonConfig, Dissemination, OverlayAddr, OverlayId, OverlayNetwork,
    SpinesPort, Topology,
};
use std::sync::Arc;

const APP_PORT: u16 = 100;

/// A client that sends `count` messages to `dst` at a fixed interval and
/// records deliveries it receives.
struct App {
    port: SpinesPort,
    dst: Option<OverlayAddr>,
    mode: Dissemination,
    reliable: bool,
    count: u32,
    interval: Span,
    sent: u32,
    label: String,
}

impl App {
    fn sender(
        port: SpinesPort,
        dst: OverlayAddr,
        mode: Dissemination,
        reliable: bool,
        count: u32,
        interval: Span,
        label: &str,
    ) -> App {
        App {
            port,
            dst: Some(dst),
            mode,
            reliable,
            count,
            interval,
            sent: 0,
            label: label.to_string(),
        }
    }

    fn receiver(port: SpinesPort, label: &str) -> App {
        App {
            port,
            dst: None,
            mode: Dissemination::Shortest,
            reliable: false,
            count: 0,
            interval: Span::millis(100),
            sent: 0,
            label: label.to_string(),
        }
    }
}

impl Process for App {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.port.attach(ctx);
        if self.dst.is_some() && self.count > 0 {
            ctx.set_timer(Span::millis(100), 1);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, bytes: &Bytes) {
        if let Some((_, payload)) = SpinesPort::decode_deliver(bytes) {
            ctx.count(&format!("{}.rx", self.label), 1);
            // Record latency embedded as the send timestamp.
            if payload.len() >= 8 {
                let sent_us = u64::from_le_bytes(payload[..8].try_into().unwrap());
                let latency_ms = (ctx.now().0.saturating_sub(sent_us)) as f64 / 1000.0;
                ctx.record(&format!("{}.latency_ms", self.label), latency_ms);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        if self.sent < self.count {
            let dst = self.dst.unwrap();
            let mut payload = ctx.now().0.to_le_bytes().to_vec();
            payload.extend_from_slice(&[0u8; 56]); // pad to a realistic size
            self.port
                .send(ctx, dst, self.mode, self.reliable, Bytes::from(payload));
            self.sent += 1;
            ctx.count("app.sent", 1);
            ctx.set_timer(self.interval, 1);
        }
    }
}

struct Harness {
    world: World,
    net: OverlayNetwork,
}

/// Builds a 6-node ring-with-chords overlay (two disjoint paths between any
/// pair) with 10 ms WAN links.
fn build(seed: u64, behavior_of: impl Fn(OverlayId) -> DaemonBehavior) -> Harness {
    let mut topology = Topology::ring(6, 10);
    topology.add_edge(OverlayId(0), OverlayId(3), 10);
    let mut world = World::new(seed);
    let material = KeyMaterial::new([9u8; 32]);
    let keystore = Arc::new(KeyStore::for_nodes(&material, 64));
    let net = OverlayNetwork::build(
        &mut world,
        &topology,
        DaemonConfig::default(),
        &material,
        &keystore,
        0,
        |_, _| LinkConfig::wan(10),
        behavior_of,
    );
    Harness { world, net }
}

fn add_app(h: &mut Harness, overlay: OverlayId, app: impl FnOnce(SpinesPort) -> App) -> ProcessId {
    let daemon_pid = h.net.daemon_pid(overlay);
    let port = SpinesPort::new(
        daemon_pid,
        OverlayAddr {
            node: overlay,
            port: APP_PORT,
        },
    );
    let app = app(port);
    let label = app.label.clone();
    let pid = h.world.add_process(&label, Box::new(app));
    h.net.wire_client(&mut h.world, overlay, pid);
    pid
}

fn dst_addr(node: u16) -> OverlayAddr {
    OverlayAddr {
        node: OverlayId(node),
        port: APP_PORT,
    }
}

#[test]
fn shortest_path_delivery() {
    let mut h = build(1, |_| DaemonBehavior::Honest);
    add_app(&mut h, OverlayId(5), |p| App::receiver(p, "rx"));
    add_app(&mut h, OverlayId(2), |p| {
        App::sender(
            p,
            dst_addr(5),
            Dissemination::Shortest,
            false,
            20,
            Span::millis(50),
            "tx",
        )
    });
    h.world.run_for(Span::secs(10));
    assert_eq!(h.world.metrics().counter("rx.rx"), 20);
    // 2 -> 5 is 3 hops of 10 ms plus jitter; well under 60 ms.
    let lats = h.world.metrics().values("rx.latency_ms");
    assert!(lats.iter().all(|l| *l < 60.0), "latencies: {lats:?}");
}

#[test]
fn flood_delivers_exactly_once() {
    let mut h = build(2, |_| DaemonBehavior::Honest);
    add_app(&mut h, OverlayId(4), |p| App::receiver(p, "rx"));
    add_app(&mut h, OverlayId(0), |p| {
        App::sender(
            p,
            dst_addr(4),
            Dissemination::Flood,
            false,
            25,
            Span::millis(40),
            "tx",
        )
    });
    h.world.run_for(Span::secs(10));
    // Flooding produces many copies in the network but exactly one delivery
    // per message at the destination.
    assert_eq!(h.world.metrics().counter("rx.rx"), 25);
}

#[test]
fn disjoint_paths_survive_single_node_failure() {
    let mut h = build(3, |_| DaemonBehavior::Honest);
    add_app(&mut h, OverlayId(3), |p| App::receiver(p, "rx"));
    add_app(&mut h, OverlayId(0), |p| {
        App::sender(
            p,
            dst_addr(3),
            Dissemination::DisjointPaths(3),
            false,
            50,
            Span::millis(100),
            "tx",
        )
    });
    // Kill overlay node 1 (on one of the paths) after 1 s, before most
    // messages are sent.
    let victim = h.net.daemon_pid(OverlayId(1));
    h.world
        .schedule_control(spire_sim::Time(1_000_000), move |w| w.crash(victim));
    h.world.run_for(Span::secs(10));
    // Every message still arrives via the surviving disjoint path(s).
    assert_eq!(h.world.metrics().counter("rx.rx"), 50);
}

#[test]
fn flood_survives_any_single_failure_and_reroutes() {
    let mut h = build(4, |_| DaemonBehavior::Honest);
    add_app(&mut h, OverlayId(3), |p| App::receiver(p, "rx"));
    add_app(&mut h, OverlayId(0), |p| {
        App::sender(
            p,
            dst_addr(3),
            Dissemination::Flood,
            false,
            50,
            Span::millis(100),
            "tx",
        )
    });
    let victim = h.net.daemon_pid(OverlayId(4));
    h.world
        .schedule_control(spire_sim::Time(500_000), move |w| w.crash(victim));
    h.world.run_for(Span::secs(10));
    assert_eq!(h.world.metrics().counter("rx.rx"), 50);
}

#[test]
fn shortest_path_reroutes_after_link_failure() {
    let mut h = build(5, |_| DaemonBehavior::Honest);
    add_app(&mut h, OverlayId(2), |p| App::receiver(p, "rx"));
    add_app(&mut h, OverlayId(0), |p| {
        App::sender(
            p,
            dst_addr(2),
            Dissemination::Shortest,
            true,
            60,
            Span::millis(100),
            "tx",
        )
    });
    // Cut the 0-1 link at t=2 s: routing must fail over to the other side
    // of the ring once liveness detection fires.
    let net_a = h.net.daemon_pid(OverlayId(0));
    let net_b = h.net.daemon_pid(OverlayId(1));
    h.world
        .schedule_control(spire_sim::Time(2_000_000), move |w| {
            w.set_link_up(net_a, net_b, false)
        });
    h.world.run_for(Span::secs(15));
    let delivered = h.world.metrics().counter("rx.rx");
    // A brief outage window is allowed while the failure is detected; the
    // vast majority of messages must be delivered.
    assert!(delivered >= 50, "delivered={delivered}");
}

#[test]
fn forged_frames_are_dropped_by_hmac() {
    let mut h = build(6, |_| DaemonBehavior::Honest);
    add_app(&mut h, OverlayId(1), |p| App::receiver(p, "rx"));
    // Inject garbage "from" daemon 0's pid to daemon 1: since it is not
    // HMAC'd with the link key, daemon 1 must drop it.
    let d0 = h.net.daemon_pid(OverlayId(0));
    let d1 = h.net.daemon_pid(OverlayId(1));
    let forged = Bytes::from(vec![3u8; 200]);
    h.world
        .inject_message(spire_sim::Time(1_000_000), d0, d1, forged);
    h.world.run_for(Span::secs(3));
    assert_eq!(h.world.metrics().counter("spines.hmac_fail"), 1);
    assert_eq!(h.world.metrics().counter("rx.rx"), 0);
}

#[test]
fn blackhole_on_shortest_path_defeated_by_flooding() {
    // Daemon 1 is compromised and blackholes data. Shortest-path traffic
    // 0 -> 2 crossing node 1 is lost, but flooding still delivers.
    let behavior = |id: OverlayId| {
        if id == OverlayId(1) {
            DaemonBehavior::Blackhole
        } else {
            DaemonBehavior::Honest
        }
    };
    let mut h = build(7, behavior);
    add_app(&mut h, OverlayId(2), |p| App::receiver(p, "rx_short"));
    add_app(&mut h, OverlayId(0), |p| {
        App::sender(
            p,
            OverlayAddr {
                node: OverlayId(2),
                port: APP_PORT,
            },
            Dissemination::Shortest,
            false,
            20,
            Span::millis(50),
            "tx1",
        )
    });
    h.world.run_for(Span::secs(5));
    let via_shortest = h.world.metrics().counter("rx_short.rx");
    assert_eq!(
        via_shortest, 0,
        "blackhole should eat shortest-path traffic"
    );

    let mut h = build(8, behavior);
    add_app(&mut h, OverlayId(2), |p| App::receiver(p, "rx_flood"));
    add_app(&mut h, OverlayId(0), |p| {
        App::sender(
            p,
            OverlayAddr {
                node: OverlayId(2),
                port: APP_PORT,
            },
            Dissemination::Flood,
            false,
            20,
            Span::millis(50),
            "tx2",
        )
    });
    h.world.run_for(Span::secs(5));
    assert_eq!(h.world.metrics().counter("rx_flood.rx"), 20);
}

#[test]
fn flooding_attacker_cannot_starve_other_sources() {
    // Node 5 floods aggressively; a legitimate sender at node 0 must still
    // get its traffic through thanks to per-source fair rate limiting.
    let mut h = build(9, |_| DaemonBehavior::Honest);
    add_app(&mut h, OverlayId(3), |p| App::receiver(p, "rx"));
    add_app(&mut h, OverlayId(0), |p| {
        App::sender(
            p,
            dst_addr(3),
            Dissemination::Flood,
            false,
            30,
            Span::millis(100),
            "legit",
        )
    });
    // Attacker: 5000 msgs at 0.5 ms intervals (2000/s sustained).
    add_app(&mut h, OverlayId(5), |p| {
        App::sender(
            p,
            OverlayAddr {
                node: OverlayId(2),
                port: APP_PORT,
            },
            Dissemination::Flood,
            false,
            5_000,
            Span::micros(500),
            "attacker",
        )
    });
    h.world.run_for(Span::secs(10));
    assert_eq!(
        h.world.metrics().counter("rx.rx"),
        30,
        "legitimate traffic starved; rate-limited drops: {}",
        h.world.metrics().counter("spines.flood_rate_limited")
    );
}

#[test]
fn reliable_mode_survives_heavy_loss() {
    // 20% loss on every link; hop-by-hop retransmission must recover.
    let mut topology = Topology::ring(4, 10);
    topology.add_edge(OverlayId(0), OverlayId(2), 10);
    let mut world = World::new(11);
    let material = KeyMaterial::new([9u8; 32]);
    let keystore = Arc::new(KeyStore::for_nodes(&material, 64));
    let net = OverlayNetwork::build(
        &mut world,
        &topology,
        DaemonConfig::default(),
        &material,
        &keystore,
        0,
        |_, _| LinkConfig::wan(5).with_loss(0.2),
        |_| DaemonBehavior::Honest,
    );
    let mut h = Harness { world, net };
    add_app(&mut h, OverlayId(2), |p| App::receiver(p, "rx"));
    add_app(&mut h, OverlayId(0), |p| {
        App::sender(
            p,
            dst_addr(2),
            Dissemination::Shortest,
            true,
            100,
            Span::millis(50),
            "tx",
        )
    });
    h.world.run_for(Span::secs(20));
    let delivered = h.world.metrics().counter("rx.rx");
    assert!(
        delivered >= 97,
        "delivered={delivered}, retx={}",
        h.world.metrics().counter("spines.retx")
    );
    assert!(h.world.metrics().counter("spines.retx") > 0);
}

#[test]
fn corrupted_frames_are_detected_and_recovered_by_retransmission() {
    // 10% of frames get a flipped byte in transit: the HMAC check drops
    // them at the receiving hop and hop-by-hop reliability retransmits.
    let mut topology = Topology::ring(4, 10);
    topology.add_edge(OverlayId(0), OverlayId(2), 10);
    let mut world = World::new(77);
    let material = KeyMaterial::new([9u8; 32]);
    let keystore = Arc::new(KeyStore::for_nodes(&material, 64));
    let net = OverlayNetwork::build(
        &mut world,
        &topology,
        DaemonConfig::default(),
        &material,
        &keystore,
        0,
        |_, _| LinkConfig::wan(5).with_corruption(0.1),
        |_| DaemonBehavior::Honest,
    );
    let mut h = Harness { world, net };
    add_app(&mut h, OverlayId(2), |p| App::receiver(p, "rx"));
    add_app(&mut h, OverlayId(0), |p| {
        App::sender(
            p,
            dst_addr(2),
            Dissemination::Shortest,
            true,
            80,
            Span::millis(50),
            "tx",
        )
    });
    h.world.run_for(Span::secs(20));
    let delivered = h.world.metrics().counter("rx.rx");
    let hmac_fail = h.world.metrics().counter("spines.hmac_fail");
    assert!(hmac_fail > 0, "corruption never hit a frame");
    assert!(
        delivered >= 78,
        "delivered={delivered} despite reliability (hmac_fail={hmac_fail})"
    );
}

#[test]
fn unattached_client_sends_are_dropped() {
    struct Rogue {
        port: SpinesPort,
    }
    impl Process for Rogue {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            // Deliberately no attach: the daemon must not route for us.
            self.port.send(
                ctx,
                OverlayAddr {
                    node: OverlayId(1),
                    port: APP_PORT,
                },
                Dissemination::Shortest,
                false,
                Bytes::from_static(b"spoof"),
            );
        }
        fn on_message(&mut self, _: &mut Context<'_>, _: ProcessId, _: &Bytes) {}
    }
    let mut h = build(31, |_| DaemonBehavior::Honest);
    add_app(&mut h, OverlayId(1), |p| App::receiver(p, "rx"));
    let daemon = h.net.daemon_pid(OverlayId(0));
    let port = SpinesPort::new(
        daemon,
        OverlayAddr {
            node: OverlayId(0),
            port: 999,
        },
    );
    let rogue = h.world.add_process("rogue", Box::new(Rogue { port }));
    h.net.wire_client(&mut h.world, OverlayId(0), rogue);
    h.world.run_for(Span::secs(3));
    assert_eq!(
        h.world.metrics().counter("spines.unattached_client_drop"),
        1
    );
    assert_eq!(h.world.metrics().counter("rx.rx"), 0);
}

#[test]
fn ttl_bounds_forwarding() {
    // A TTL smaller than the path length must prevent delivery (and the
    // drop is accounted), while flooding in a connected graph with ample
    // TTL always arrives.
    let mut topology = Topology::new();
    for i in 0..5 {
        topology.add_node(OverlayId(i));
    }
    for i in 0..4 {
        topology.add_edge(OverlayId(i), OverlayId(i + 1), 10);
    }
    let mut world = World::new(41);
    let material = KeyMaterial::new([9u8; 32]);
    let keystore = Arc::new(KeyStore::for_nodes(&material, 64));
    let cfg = DaemonConfig {
        default_ttl: 2, // path 0 -> 4 needs 4 hops
        ..DaemonConfig::default()
    };
    let net = OverlayNetwork::build(
        &mut world,
        &topology,
        cfg,
        &material,
        &keystore,
        0,
        |_, _| LinkConfig::wan(5),
        |_| DaemonBehavior::Honest,
    );
    let mut h = Harness { world, net };
    add_app(&mut h, OverlayId(4), |p| App::receiver(p, "rx"));
    add_app(&mut h, OverlayId(0), |p| {
        App::sender(
            p,
            dst_addr(4),
            Dissemination::Shortest,
            false,
            5,
            Span::millis(50),
            "tx",
        )
    });
    h.world.run_for(Span::secs(5));
    assert_eq!(h.world.metrics().counter("rx.rx"), 0);
    assert!(h.world.metrics().counter("spines.ttl_drop") >= 5);
}

#[test]
fn stale_lsas_age_out_after_daemon_death() {
    // Kill a daemon and verify the rest of the overlay eventually ages its
    // advertisement out of their link-state databases (observable as an
    // aging metric plus continued correct routing).
    let mut h = build(51, |_| DaemonBehavior::Honest);
    add_app(&mut h, OverlayId(3), |p| App::receiver(p, "rx"));
    add_app(&mut h, OverlayId(0), |p| {
        App::sender(
            p,
            dst_addr(3),
            Dissemination::Shortest,
            true,
            90,
            Span::millis(500),
            "tx",
        )
    });
    let victim = h.net.daemon_pid(OverlayId(1));
    h.world
        .schedule_control(spire_sim::Time(5_000_000), move |w| w.crash(victim));
    h.world.run_for(Span::secs(50));
    assert!(
        h.world.metrics().counter("spines.lsa_aged_out") > 0,
        "dead daemon's LSA never aged out"
    );
    // Routing kept working around the death.
    let delivered = h.world.metrics().counter("rx.rx");
    assert!(delivered >= 85, "delivered={delivered}");
}
