//! Property-based tests of the overlay: codec roundtrips and routing
//! invariants over randomly generated topologies.

use proptest::prelude::*;
use spire_spines::{DataMsg, Dissemination, OverlayId, OverlayMsg, Topology};

fn arb_dissemination() -> impl Strategy<Value = Dissemination> {
    prop_oneof![
        Just(Dissemination::Shortest),
        (1u8..5).prop_map(Dissemination::DisjointPaths),
        Just(Dissemination::Flood),
    ]
}

fn arb_data_msg() -> impl Strategy<Value = DataMsg> {
    (
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
        any::<u64>(),
        arb_dissemination(),
        any::<u8>(),
        proptest::collection::vec(any::<u16>(), 0..8),
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..128),
    )
        .prop_map(
            |(src, sp, dst, dp, seq, mode, ttl, route, reliable, payload)| DataMsg {
                src: OverlayId(src),
                src_port: sp,
                dst: OverlayId(dst),
                dst_port: dp,
                seq,
                mode,
                ttl,
                route: route.into_iter().map(OverlayId).collect(),
                route_idx: 0,
                reliable,
                payload: bytes::Bytes::from(payload),
            },
        )
}

/// Random connected topology: a spanning tree plus random extra edges.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (
        2u16..12,
        proptest::collection::vec((any::<u16>(), any::<u16>(), 1u32..20), 0..20),
    )
        .prop_map(|(n, extras)| {
            let mut t = Topology::new();
            for i in 0..n {
                t.add_node(OverlayId(i));
            }
            for i in 1..n {
                // Deterministic spanning tree: parent = i / 2.
                t.add_edge(OverlayId(i), OverlayId(i / 2), 1 + (i as u32 % 7));
            }
            for (a, b, w) in extras {
                let a = a % n;
                let b = b % n;
                if a != b {
                    t.add_edge(OverlayId(a), OverlayId(b), w);
                }
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn data_msg_roundtrip(msg in arb_data_msg()) {
        let wire = OverlayMsg::Data { frame_id: 42, msg };
        let decoded = OverlayMsg::decode(&wire.encode()).unwrap();
        prop_assert_eq!(decoded, wire);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = OverlayMsg::decode(&bytes);
    }

    #[test]
    fn shortest_paths_are_valid_walks(t in arb_topology(), a in any::<u16>(), b in any::<u16>()) {
        let n = t.node_count() as u16;
        let (a, b) = (OverlayId(a % n), OverlayId(b % n));
        if let Some(path) = t.shortest_path(a, b) {
            prop_assert_eq!(path.first(), Some(&a));
            prop_assert_eq!(path.last(), Some(&b));
            for w in path.windows(2) {
                prop_assert!(t.has_edge(w[0], w[1]), "non-edge in path");
            }
            // No repeated nodes (it is a simple path).
            let unique: std::collections::BTreeSet<_> = path.iter().collect();
            prop_assert_eq!(unique.len(), path.len());
        }
    }

    #[test]
    fn spanning_tree_construction_is_connected(t in arb_topology()) {
        prop_assert!(t.is_connected());
    }

    #[test]
    fn disjoint_paths_share_no_edges(t in arb_topology(), a in any::<u16>(), b in any::<u16>(), k in 1usize..4) {
        let n = t.node_count() as u16;
        let (a, b) = (OverlayId(a % n), OverlayId(b % n));
        prop_assume!(a != b);
        let paths = t.disjoint_paths(a, b, k);
        let mut used = std::collections::BTreeSet::new();
        for path in &paths {
            prop_assert_eq!(path.first(), Some(&a));
            prop_assert_eq!(path.last(), Some(&b));
            for w in path.windows(2) {
                let e = if w[0] < w[1] { (w[0], w[1]) } else { (w[1], w[0]) };
                prop_assert!(used.insert(e), "edge shared between disjoint paths");
            }
        }
    }

    #[test]
    fn removing_a_path_still_leaves_shortest_if_disjoint_exists(
        t in arb_topology(), a in any::<u16>(), b in any::<u16>()) {
        let n = t.node_count() as u16;
        let (a, b) = (OverlayId(a % n), OverlayId(b % n));
        prop_assume!(a != b);
        let paths = t.disjoint_paths(a, b, 2);
        if paths.len() == 2 {
            // Remove every edge of the first path; the second must remain.
            let mut t2 = t.clone();
            for w in paths[0].windows(2) {
                t2.remove_edge(w[0], w[1]);
            }
            prop_assert!(t2.shortest_path(a, b).is_some());
        }
    }
}
