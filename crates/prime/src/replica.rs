//! The Prime replica: pre-ordering, ordering, suspect-leader monitoring,
//! view changes, checkpointing, reconciliation and state transfer.
//!
//! # Protocol summary
//!
//! *Pre-ordering.* Client ops reach any replica, which batches them into
//! signed `PO-Request(origin, po_seq)` broadcasts. Replicas acknowledge
//! with `PO-Ack`; a request is **pre-ordered** once `2f + k + 1` distinct
//! replicas (counting the originator and the acker itself) vouch for one
//! digest. Each replica tracks, per originator, the highest contiguously
//! pre-ordered sequence (its *ARU vector*) and broadcasts it as a signed
//! `PO-Summary` whenever it advances.
//!
//! *Ordering.* The leader periodically proposes a **matrix** of the latest
//! signed summary rows (`Pre-Prepare`), which is ordered with PBFT-style
//! `Prepare`/`Commit` rounds under quorum `2f + k + 1`. Executing a matrix
//! means executing every pre-ordered request newly covered by at least
//! `f + k + 1` rows, in deterministic `(origin, po_seq)` order — so a
//! malicious leader cannot reorder or starve any originator's requests; at
//! most it can delay the whole batch, which the next mechanism bounds.
//!
//! *Suspect-leader.* Replicas measure the leader's **turnaround time**
//! (from sending a summary until a proposal covers it) and compare it with
//! what a correct leader could achieve given measured round-trip times. A
//! leader that delays beyond `tat_allowance * (rtt + 2·Δpp)` is suspected;
//! `f + k + 1` suspicions trigger a view change. In
//! [`ProtocolMode::PbftLike`] this monitoring is disabled and only the
//! coarse progress timeout remains — reproducing the attack Prime defends
//! against.
//!
//! *Recovery.* Replicas checkpoint every `checkpoint_interval` matrices;
//! a (re)starting replica state-transfers from a checkpoint proven by
//! `f + 1` signed attestations, then rejoins the protocol.

use crate::application::Application;
use crate::behavior::ByzBehavior;
use crate::config::{ClientId, PrimeConfig, ProtocolMode, ReplicaId};
use crate::inspect::Inspection;
use crate::msg::{
    self, AruVector, CheckpointMsg, ClientOp, Frame, Matrix, PreparedClaim, PrimeMsg, SummaryRow,
    ViewStateMsg,
};
use crate::net::ReplicaNet;
use bytes::Bytes;
use spire_crypto::batch::{self, BatchAttestation, BatchSigner, DigestCache};
use spire_crypto::keys::{verify64, Signer};
use spire_crypto::{Digest, KeyStore, NodeId};
use spire_sim::{
    span_key, Context, Process, ProcessId, Span, SpanPhase, Time, TraceKind, WireWriter,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Timer tags. Public so the schedule explorer (`crates/explore`) can
/// name timer-firing choices symbolically.
pub const TIMER_PO_FLUSH: u64 = 1;
pub const TIMER_SUMMARY: u64 = 2;
pub const TIMER_PRE_PREPARE: u64 = 3;
pub const TIMER_PING: u64 = 4;
pub const TIMER_PROGRESS: u64 = 5;
pub const TIMER_RECON: u64 = 6;
pub const TIMER_STATE_REQ: u64 = 7;
pub const TIMER_BATCH: u64 = 8;
pub const TIMER_CHUNK: u64 = 9;

/// Messages accumulated in one signing batch before the Merkle root is
/// signed: bounds both memory and the inclusion-proof length (log2(64) = 6
/// path digests).
const BATCH_CAP: usize = 64;

/// Every metric name a replica emits. Keys are prefixed with the instance
/// label once, at construction, because several fire per message delivery —
/// a `format!` there dominated the metrics path.
const METRIC_NAMES: [&str; 61] = [
    "bad_client_sig",
    "bad_po_sig",
    "bad_op_in_batch",
    "bad_ack_sig",
    "summaries_sent",
    "bad_summary_sig",
    "propose_window_stall",
    "bad_matrix_row",
    "dup_matrix_row",
    "equivocation_detected",
    "bad_prepare_sig",
    "bad_commit_sig",
    "committed",
    "recon_requested",
    "po_retries",
    "po_gap_recon",
    "matrices_executed",
    "ops_executed",
    "bad_ckpt_sig",
    "checkpoints_stable",
    "bad_state_req_sig",
    "bad_state_proof",
    "state_reconstruct_pending",
    "bad_state_snapshot",
    "recovery_completed",
    "recovery_from_genesis",
    "tat_ms",
    "preprepares_sent",
    "leader_gap_us",
    "suspects_sent",
    "vc_rebroadcasts",
    "bad_new_view",
    "view_changes",
    "views_installed",
    "decode_fail",
    "bad_preprepare_sig",
    "sign_ops",
    "verify_ops",
    "verify_cache_hits",
    "batch_flushes",
    "batched_msgs",
    "bad_batch_auth",
    "mac_ops",
    "mac_auth_hits",
    "mac_fail",
    "link_batches",
    "link_batched_frames",
    "eager_proposals",
    "multi_acks",
    "multi_commits",
    "bad_state_meta",
    "state_accums_evicted",
    "recovery_chunks",
    "recovery_chunk_retries",
    "recovery_duration_us",
    "compaction.runs",
    "compaction.evicted",
    "compaction.po_retained",
    "compaction.slots_retained",
    "compaction.matrices_retained",
    "compaction.suffix_retained",
];

/// Label-prefixed metric keys, computed once per replica.
struct MetricNames {
    prefixed: BTreeMap<&'static str, String>,
}

impl MetricNames {
    fn new(label: &str) -> MetricNames {
        MetricNames {
            prefixed: METRIC_NAMES
                .iter()
                .map(|name| (*name, format!("{label}.{name}")))
                .collect(),
        }
    }

    fn get(&self, name: &'static str) -> &str {
        self.prefixed.get(name).map(String::as_str).unwrap_or(name)
    }
}

/// Exactly-once tracking of a client's operation sequence numbers that
/// tolerates out-of-order arrival/execution: a contiguous floor plus the
/// sparse set of numbers seen above it. (A plain high-water mark would
/// wrongly treat an op overtaken in the network by a later one from the
/// same client as a duplicate.)
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CseqWindow {
    floor: u64,
    above: BTreeSet<u64>,
}

impl CseqWindow {
    /// Marks `cseq` as seen; returns false if it was already seen.
    pub fn try_mark(&mut self, cseq: u64) -> bool {
        if cseq <= self.floor || self.above.contains(&cseq) {
            return false;
        }
        self.above.insert(cseq);
        while self.above.remove(&(self.floor + 1)) {
            self.floor += 1;
        }
        true
    }

    /// The contiguous floor (every cseq `<= floor` was seen).
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Sparse entries above the floor.
    pub fn sparse(&self) -> impl Iterator<Item = u64> + '_ {
        self.above.iter().copied()
    }

    /// Rebuilds from snapshot parts.
    pub fn from_parts(floor: u64, above: impl IntoIterator<Item = u64>) -> CseqWindow {
        CseqWindow {
            floor,
            above: above.into_iter().collect(),
        }
    }
}

#[derive(Default)]
struct OrderingSlot {
    /// (view, matrix, digest) of the accepted pre-prepare.
    pre_prepare: Option<(u64, Matrix, Digest)>,
    prepares: BTreeMap<u32, Digest>,
    commits: BTreeMap<u32, Digest>,
    prepared: bool,
    committed: bool,
}

/// A state-transfer manifest observed from one or more responders, keyed
/// by a digest over its full layout so a lying responder cannot split the
/// vote. Pinned (promoted to a [`ChunkTransfer`]) once `f + 1` distinct
/// responders vouch for byte-identical layouts: at least one is correct,
/// and the embedded checkpoint proof carries its own `f + 1` signatures.
struct MetaCandidate {
    checkpoint_seq: u64,
    snapshot_digest: Digest,
    erasure_k: u8,
    chunk_size: u32,
    total_len: u64,
    chunk_digests: Vec<Digest>,
    proof: Vec<CheckpointMsg>,
    po_high: u64,
    sseq_high: u64,
    voters: BTreeSet<u32>,
}

/// The pinned in-flight chunked state transfer: per-chunk shares
/// accumulate until any `erasure_k` of them reconstruct to the pinned
/// chunk digest; missing chunks are re-requested from rotating alternate
/// responders with exponential backoff.
struct ChunkTransfer {
    checkpoint_seq: u64,
    snapshot_digest: Digest,
    erasure_k: u8,
    chunk_size: u32,
    total_len: u64,
    chunk_digests: Vec<Digest>,
    proof: Vec<CheckpointMsg>,
    po_high: u64,
    sseq_high: u64,
    /// Reconstructed chunks by index.
    chunks: BTreeMap<u32, Vec<u8>>,
    /// Collected shares for not-yet-reconstructed chunks.
    shares: BTreeMap<u32, BTreeMap<u8, Vec<u8>>>,
    /// Current retry delay (doubles per round, capped).
    backoff: Span,
    /// Rotates the alternate responders asked on each retry round.
    retry_rotor: u32,
    /// Retry rounds issued for this transfer (reported on completion).
    retries: u64,
}

/// Manifest candidates retained at once (superseded ones are evicted).
const META_CANDIDATE_CAP: usize = 8;
/// Shares stashed before a manifest pins (links reorder the manifest and
/// the share stream); hard bound on pre-pin memory.
const EARLY_SHARE_CAP: usize = 4096;

#[derive(Default)]
struct PoEntry {
    /// Ops by digest actually held (origin equivocation can give us content
    /// that never certifies; we only execute certified content).
    content: Option<(Digest, Vec<ClientOp>, Bytes)>,
    /// Signed PO-Ack messages per digest, keyed by acking replica. The
    /// origin's vote is implicit in the signed request itself. Storing the
    /// full messages lets reconciliation forward the *certificate*, so a
    /// replica that lost its pre-ordering state (recovery, long partition)
    /// can re-certify historical requests.
    acks: BTreeMap<Digest, BTreeMap<u32, Bytes>>,
    /// Digest that reached the pre-order quorum, if any.
    certified: Option<Digest>,
    /// Whether we have already broadcast our own ack.
    acked: Option<Digest>,
}

/// Where a queued batch-signed message goes at flush time.
enum OutboxDest {
    /// Broadcast to every other replica (votes).
    Replicas,
    /// Sent to one client (replies and notifications).
    Client(ClientId),
}

/// What to keep of a queued message once its attested frame exists at
/// flush time. Reconciliation later forwards retained frames verbatim, so
/// they must be self-contained (attestation included).
enum Retain {
    /// Nothing to retain.
    None,
    /// Our own PO-Ack: certificate material under `(origin, po_seq)`.
    Ack {
        origin: u32,
        po_seq: u64,
        digest: Digest,
    },
    /// Our own cumulative PO-Ack: the one frame is certificate material
    /// under every covered `(origin, po_seq)`.
    AckMulti(Vec<(ReplicaId, u64, Digest)>),
    /// Our own PO-Request: the stored content bytes under
    /// `(me, po_seq)` are replaced with the attested frame.
    Request { po_seq: u64, digest: Digest },
}

/// A message queued for the next amortized-signature flush.
struct OutboxItem {
    /// The encoded message, signature field all-zero.
    payload: Bytes,
    /// Recipient set.
    dest: OutboxDest,
    /// Certificate-material retention at flush time.
    retain: Retain,
}

/// The Prime replica process.
pub struct Replica {
    cfg: PrimeConfig,
    me: ReplicaId,
    behavior: ByzBehavior,
    keystore: Arc<KeyStore>,
    signer: Signer,
    net: Box<dyn ReplicaNet>,
    app: Box<dyn Application>,
    /// Per-peer symmetric link keys (indexed by replica id). When present,
    /// every replica-to-replica frame is sealed in an HMAC envelope and
    /// MAC-authenticated frames skip per-hop signature verification.
    session_keys: Option<Vec<[u8; 32]>>,
    /// Metric-name prefix, so several Prime instances can coexist.
    label: String,
    /// Prefixed metric keys derived from `label`.
    metric_names: MetricNames,

    // ---- pre-ordering ----
    pending_ops: Vec<ClientOp>,
    seen_ops: BTreeMap<u32, CseqWindow>, // per-client batching dedup
    my_po_seq: u64,
    po: BTreeMap<(u32, u64), PoEntry>,
    /// Highest PO sequence ever seen per origin (for post-recovery resume).
    po_high: Vec<u64>,
    /// Highest summary sequence ever seen per replica (for post-recovery
    /// resume: peers discard summaries with non-increasing sseq).
    sseq_high: Vec<u64>,
    po_aru: Vec<u64>,
    exec_cover: Vec<u64>,

    // ---- summaries ----
    latest_rows: BTreeMap<u32, SummaryRow>,
    my_sseq: u64,
    last_summary_vector: AruVector,

    // ---- ordering ----
    view: u64,
    in_view_change: bool,
    /// When the current view was entered (for view-change timeouts).
    view_entered_at: Time,
    /// Doubles on every view change without intervening progress (capped),
    /// multiplying the progress timeout so cascades of failed view changes
    /// damp out instead of thrashing (standard PBFT-style backoff).
    timeout_backoff: u64,
    slots: BTreeMap<u64, OrderingSlot>,
    commit_aru: u64,
    committed_matrices: BTreeMap<u64, Matrix>,
    last_executed: u64,
    executed_cseq: BTreeMap<u32, CseqWindow>,
    last_proposed: u64,

    // ---- view change ----
    suspects: BTreeMap<u64, BTreeSet<u32>>,
    suspected_views: BTreeSet<u64>,
    view_states: BTreeMap<u64, BTreeMap<u32, ViewStateMsg>>,
    /// Highest view each replica has claimed in any signed message; a
    /// replica that fell behind joins view `v` once `f + k + 1` replicas
    /// claim `>= v` (at least one of them is correct).
    claimed_views: BTreeMap<u32, u64>,

    // ---- suspect-leader ----
    rtt_us: BTreeMap<u32, f64>,
    ping_nonce: u64,
    outstanding_pings: BTreeMap<u64, (u32, Time)>,
    outstanding_summary: Option<(u64, Time)>,
    last_progress: Time,
    /// When this replica, as leader, last sent a pre-prepare — feeds the
    /// `leader_gap_us` ordering-cadence histogram the health layer's
    /// slow-leader detector reads.
    last_preprepare_at: Option<Time>,

    // ---- checkpoints / recovery ----
    recovery_started: Time,
    checkpoint_votes: BTreeMap<u64, BTreeMap<u32, CheckpointMsg>>,
    stable_checkpoint: Option<(u64, Bytes, Vec<CheckpointMsg>)>,
    stable_exec_cover: Vec<u64>,
    recovering: bool,
    suffix_votes: BTreeMap<(u64, Digest), (Matrix, BTreeSet<u32>)>,
    /// Manifest candidates observed during state transfer, keyed by a
    /// digest of the full layout (see [`MetaCandidate`]).
    meta_votes: BTreeMap<Digest, MetaCandidate>,
    /// Chunk shares that arrived before a manifest pinned, keyed by
    /// (checkpoint_seq, chunk, share index); bounded by [`EARLY_SHARE_CAP`].
    early_shares: BTreeMap<(u64, u32, u8), Vec<u8>>,
    /// The pinned in-flight chunked transfer, if any.
    transfer: Option<ChunkTransfer>,
    /// Last time any state-transfer accumulator made progress; stale
    /// accumulators are evicted after `cfg.state_accum_deadline`.
    accum_touched: Time,
    /// Whether a `TIMER_CHUNK` retry tick is already pending.
    chunk_timer_armed: bool,

    /// Verified pre-prepares for the current/future view that arrived while
    /// a view change was still in progress. A fresh leader broadcasts its
    /// NewView and first pre-prepares back to back, and flood paths plus
    /// link batching give no cross-message FIFO, so the first pre-prepare of
    /// a view can overtake the NewView that installs it. Dropping it would
    /// leave a permanent hole in the sequence space (pre-prepares are never
    /// retransmitted); instead it is stashed here and replayed on install.
    stashed_pps: BTreeMap<(u64, u64), Matrix>,

    // ---- reconciliation ----
    missing: BTreeSet<(u32, u64)>,
    recon_rotor: u32,
    max_seen_commit: u64,
    /// `po_aru` snapshot from the previous recon tick: a per-origin
    /// certification aru that sits below `po_high` across two ticks is a
    /// hole (lost request or lost acks), not in-flight traffic, and gets
    /// actively repaired (see `retry_uncertified_po`).
    po_gap_snapshot: Vec<u64>,

    // ---- amortized authentication ----
    /// Votes/replies queued for the amortized flush (when `batch_sign`):
    /// all messages queued within one `batch_interval` window share one
    /// batch-root signature.
    outbox: Vec<OutboxItem>,
    /// Whether a `TIMER_BATCH` flush is already pending.
    batch_timer_armed: bool,
    batcher: BatchSigner,
    /// Verified batch roots, keyed by digest(signer || root || root_sig).
    root_cache: DigestCache,
    /// Verified client ops, keyed by digest over the full signed encoding.
    op_cache: DigestCache,
    /// Verified summary rows, keyed by [`SummaryRow::cache_key`].
    row_cache: DigestCache,
    /// Reusable encoding buffer for sign/verify signing bytes.
    scratch: WireWriter,

    // ---- link batching / vote coalescing ----
    /// Frames staged per peer (index = replica id) during the current
    /// activation; flushed as one (sealed) multi-frame container per peer
    /// at the activation boundary when `cfg.link_batch` is on.
    link_stage: Vec<Vec<Bytes>>,
    /// Peers with staged frames, in first-touch order (deterministic).
    link_stage_order: Vec<u32>,
    /// PO-Acks produced during the current activation; one arrival can
    /// carry many PO-Requests (a coalesced container), and flushing them
    /// as a single cumulative vote amortizes the signature, the frame
    /// and the receiver-side verification.
    pending_acks: Vec<(ReplicaId, u64, Digest)>,
    /// Commit votes `(view, seq, digest)` produced during the current
    /// activation; a wide proposal window prepares several sequences per
    /// arrival, flushed as one cumulative commit per view.
    pending_commits: Vec<(u64, u64, Digest)>,

    // ---- attack modelling ----
    delayed_proposals: Vec<(Time, Bytes)>,

    // ---- checkpoint snapshots awaiting stability ----
    pending_snapshots: BTreeMap<u64, Bytes>,

    // ---- white-box inspection ----
    inspection: Option<Inspection>,
    exec_chain_head: Digest,
    total_ops: u64,
}

impl Replica {
    /// Creates a replica.
    ///
    /// `recovering` starts the replica in state-transfer mode (used after a
    /// proactive recovery): it requests a checkpoint before participating.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: PrimeConfig,
        me: ReplicaId,
        behavior: ByzBehavior,
        keystore: Arc<KeyStore>,
        signer: Signer,
        net: Box<dyn ReplicaNet>,
        app: Box<dyn Application>,
        recovering: bool,
    ) -> Replica {
        let n = cfg.n as usize;
        let cache = cfg.verify_cache;
        Replica {
            cfg,
            me,
            behavior,
            keystore,
            signer,
            net,
            app,
            session_keys: None,
            label: "prime".to_string(),
            metric_names: MetricNames::new("prime"),
            pending_ops: Vec::new(),
            seen_ops: BTreeMap::new(),
            my_po_seq: 0,
            po: BTreeMap::new(),
            po_high: vec![0; n],
            sseq_high: vec![0; n],
            po_aru: vec![0; n],
            exec_cover: vec![0; n],
            latest_rows: BTreeMap::new(),
            my_sseq: 0,
            last_summary_vector: AruVector::zeros(n),
            view: 0,
            in_view_change: false,
            view_entered_at: Time::ZERO,
            timeout_backoff: 1,
            slots: BTreeMap::new(),
            commit_aru: 0,
            committed_matrices: BTreeMap::new(),
            last_executed: 0,
            executed_cseq: BTreeMap::new(),
            last_proposed: 0,
            suspects: BTreeMap::new(),
            suspected_views: BTreeSet::new(),
            view_states: BTreeMap::new(),
            claimed_views: BTreeMap::new(),
            rtt_us: BTreeMap::new(),
            ping_nonce: 0,
            outstanding_pings: BTreeMap::new(),
            outstanding_summary: None,
            last_progress: Time::ZERO,
            last_preprepare_at: None,
            recovery_started: Time::ZERO,
            checkpoint_votes: BTreeMap::new(),
            stable_checkpoint: None,
            stable_exec_cover: vec![0; n],
            recovering,
            suffix_votes: BTreeMap::new(),
            meta_votes: BTreeMap::new(),
            early_shares: BTreeMap::new(),
            transfer: None,
            accum_touched: Time::ZERO,
            chunk_timer_armed: false,
            stashed_pps: BTreeMap::new(),
            missing: BTreeSet::new(),
            recon_rotor: 0,
            max_seen_commit: 0,
            po_gap_snapshot: vec![0; n],
            outbox: Vec::new(),
            batch_timer_armed: false,
            batcher: BatchSigner::new(),
            root_cache: DigestCache::new(cache),
            op_cache: DigestCache::new(cache),
            row_cache: DigestCache::new(cache),
            scratch: WireWriter::with_capacity(256),
            link_stage: (0..n).map(|_| Vec::new()).collect(),
            link_stage_order: Vec::new(),
            pending_acks: Vec::new(),
            pending_commits: Vec::new(),
            delayed_proposals: Vec::new(),
            pending_snapshots: BTreeMap::new(),
            inspection: None,
            exec_chain_head: [0; 32],
            total_ops: 0,
        }
    }

    /// Attaches a shared inspection registry (for invariant checking).
    pub fn with_inspection(mut self, inspection: Inspection) -> Replica {
        self.inspection = Some(inspection);
        self
    }

    /// Installs per-peer link session keys (index = peer replica id, one
    /// entry per replica; the self slot is unused). Every outgoing
    /// replica-to-replica frame is then sealed under the pair's symmetric
    /// key, and incoming MAC-authenticated frames skip per-hop signature
    /// verification — the paper's Spines-level session authentication.
    pub fn with_session_keys(mut self, keys: Vec<[u8; 32]>) -> Replica {
        self.session_keys = Some(keys);
        self
    }

    /// Overrides the metric label (default `"prime"`).
    pub fn with_label(mut self, label: &str) -> Replica {
        self.label = label.to_string();
        self.metric_names = MetricNames::new(label);
        self
    }

    fn n(&self) -> usize {
        self.cfg.n as usize
    }

    fn mock(&self) -> bool {
        self.signer.is_mock()
    }

    fn replica_node(&self, r: ReplicaId) -> NodeId {
        NodeId(self.cfg.replica_key_base + r.0)
    }

    fn is_leader(&self) -> bool {
        self.cfg.leader_of(self.view) == self.me
    }

    fn metric(&self, name: &'static str) -> &str {
        self.metric_names.get(name)
    }

    /// Sends an encoded frame to a peer, sealed under the pair's link key
    /// when session MACs are on. Retained certificate material must stay
    /// unsealed (a seal is per-recipient), so sealing happens here — at the
    /// last moment before the transport — and nowhere else.
    ///
    /// With `cfg.link_batch` on, the frame is *staged* instead: every
    /// frame bound for the same peer within one activation travels in one
    /// multi-frame container, sealed once and pushed through the overlay
    /// once (see [`Replica::flush_links`]). Dissemination order per peer
    /// is preserved.
    fn net_send(&mut self, ctx: &mut Context<'_>, to: ReplicaId, bytes: Bytes) {
        if self.cfg.link_batch && (to.0 as usize) < self.link_stage.len() {
            let stage = &mut self.link_stage[to.0 as usize];
            if stage.is_empty() {
                self.link_stage_order.push(to.0);
            }
            stage.push(bytes);
            return;
        }
        let sealed = self.seal_for(ctx, to, &bytes).unwrap_or(bytes);
        self.net.send_replica(ctx, to, sealed);
    }

    /// Seals `inner` for `to` when session MACs are on; `None` = unsealed.
    fn seal_for(&mut self, ctx: &mut Context<'_>, to: ReplicaId, inner: &[u8]) -> Option<Bytes> {
        let key = self
            .session_keys
            .as_ref()
            .and_then(|k| k.get(to.0 as usize))?;
        ctx.count(self.metric("mac_ops"), 1);
        Some(msg::seal_frame(self.me, key, inner))
    }

    /// Ships every staged frame: per peer, a lone frame goes out as-is
    /// and several coalesce into one multi-frame container — one seal,
    /// one overlay dissemination, one hop-acknowledgement chain for the
    /// lot. Runs at each activation boundary, so batching adds zero
    /// latency; it only removes per-frame overhead.
    fn flush_links(&mut self, ctx: &mut Context<'_>) {
        if self.link_stage_order.is_empty() {
            return;
        }
        let order = std::mem::take(&mut self.link_stage_order);
        for &peer in &order {
            let frames = std::mem::take(&mut self.link_stage[peer as usize]);
            debug_assert!(!frames.is_empty());
            let wire = if frames.len() == 1 {
                frames.into_iter().next().expect("one frame")
            } else {
                ctx.count(self.metric("link_batches"), 1);
                ctx.count(self.metric("link_batched_frames"), frames.len() as u64);
                msg::encode_multi(&frames)
            };
            let to = ReplicaId(peer);
            let sealed = self.seal_for(ctx, to, &wire).unwrap_or(wire);
            self.net.send_replica(ctx, to, sealed);
        }
    }

    /// Strips and checks a link-MAC envelope. Returns the inner frame
    /// bytes plus the MAC-authenticated sender, `(payload, None)` when the
    /// frame is not sealed (client traffic, or session MACs off), or
    /// `None` for a frame whose envelope fails authentication (dropped).
    fn unseal(
        &mut self,
        ctx: &mut Context<'_>,
        payload: Bytes,
    ) -> Option<(Bytes, Option<ReplicaId>)> {
        if payload.first() != Some(&msg::SEALED_FRAME_TAG) {
            return Some((payload, None));
        }
        let Ok(Some(sealed)) = msg::decode_sealed(&payload) else {
            ctx.count(self.metric("mac_fail"), 1);
            return None;
        };
        let key = self
            .session_keys
            .as_ref()
            .and_then(|keys| keys.get(sealed.sender.0 as usize))
            .copied();
        // A sealed frame from an unknown sender, or arriving at a replica
        // with no session keys, cannot be authenticated: drop it.
        let Some(key) = key else {
            ctx.count(self.metric("mac_fail"), 1);
            return None;
        };
        ctx.count(self.metric("mac_ops"), 1);
        if !sealed.verify(&key) {
            ctx.count(self.metric("mac_fail"), 1);
            return None;
        }
        ctx.count(self.metric("mac_auth_hits"), 1);
        // Zero-copy: the inner frame is a subslice of the sealed buffer,
        // so reslicing the shared `Bytes` is a refcount bump, not a copy.
        let start = sealed.inner.as_ptr() as usize - payload.as_ptr() as usize;
        let len = sealed.inner.len();
        let sender = sealed.sender;
        Some((payload.slice(start..start + len), Some(sender)))
    }

    fn broadcast(&mut self, ctx: &mut Context<'_>, msg: &PrimeMsg) {
        let bytes = msg.encode();
        for r in 0..self.cfg.n {
            if r != self.me.0 {
                self.net_send(ctx, ReplicaId(r), bytes.clone());
            }
        }
    }

    fn send_to(&mut self, ctx: &mut Context<'_>, to: ReplicaId, msg: &PrimeMsg) {
        if to == self.me {
            return;
        }
        let bytes = msg.encode();
        self.net_send(ctx, to, bytes);
    }

    /// Sends `a` to even-numbered replicas and `b` to odd ones (the
    /// equivocation attack split), sharing each encoding across recipients.
    fn broadcast_split(&mut self, ctx: &mut Context<'_>, a: Bytes, b: Bytes) {
        for r in 0..self.cfg.n {
            if r == self.me.0 {
                continue;
            }
            let bytes = if r % 2 == 0 { a.clone() } else { b.clone() };
            self.net_send(ctx, ReplicaId(r), bytes);
        }
    }

    // ================= amortized authentication =================

    /// Signs a message in place, metered and buffer-reusing.
    fn sign_msg(&mut self, ctx: &mut Context<'_>, msg: &mut PrimeMsg) {
        ctx.count(self.metric("sign_ops"), 1);
        msg.sign_with(&self.signer, &mut self.scratch);
    }

    /// Verifies a replica-signed message, metered. `env_auth` is the
    /// replica whose batch attestation already authenticated the enclosing
    /// frame, if any: when it matches the claimed sender, the (zeroed)
    /// embedded signature needs no further checking.
    fn verify_replica_msg(
        &mut self,
        ctx: &mut Context<'_>,
        msg: &PrimeMsg,
        claimed: ReplicaId,
        env_auth: Option<ReplicaId>,
    ) -> bool {
        if env_auth == Some(claimed) {
            return true;
        }
        ctx.count(self.metric("verify_ops"), 1);
        let node = NodeId(self.cfg.replica_key_base + claimed.0);
        let mock = self.signer.is_mock();
        msg.verify_sig_with(&self.keystore, node, mock, &mut self.scratch)
    }

    /// Verifies a client op through the bounded cache: ops re-arrive inside
    /// every PO-Request rebroadcast and reconciliation, so each distinct
    /// signed op is checked against the client key at most once per cache
    /// lifetime.
    fn verify_client_op(&mut self, ctx: &mut Context<'_>, op: &ClientOp) -> bool {
        let key = op.digest();
        if self.op_cache.contains(&key) {
            ctx.count(self.metric("verify_cache_hits"), 1);
            return true;
        }
        ctx.count(self.metric("verify_ops"), 1);
        if op.verify(&self.keystore, self.cfg.client_key_base, self.mock()) {
            self.op_cache.insert(key);
            true
        } else {
            false
        }
    }

    /// Verifies a summary row through the bounded cache: the same signed
    /// rows recur across PO-Summary broadcasts and every Pre-Prepare matrix
    /// that embeds them.
    fn verify_summary_row(&mut self, ctx: &mut Context<'_>, row: &SummaryRow) -> bool {
        if row.replica.0 >= self.cfg.n {
            return false;
        }
        let key = row.cache_key();
        if self.row_cache.contains(&key) {
            ctx.count(self.metric("verify_cache_hits"), 1);
            return true;
        }
        ctx.count(self.metric("verify_ops"), 1);
        if row.verify(&self.keystore, self.cfg.replica_key_base, self.mock()) {
            self.row_cache.insert(key);
            true
        } else {
            false
        }
    }

    /// Verifies a batch attestation (inclusion proof + root signature).
    /// All messages of one batch share the signed root, so the signature
    /// check is cached and later messages cost only hashing.
    fn verify_batch_attestation(
        &mut self,
        ctx: &mut Context<'_>,
        signer: ReplicaId,
        attestation: &BatchAttestation,
        msg_digest: &Digest,
    ) -> bool {
        let Some(root) = attestation.compute_root(msg_digest) else {
            return false;
        };
        let key =
            spire_crypto::digest_parts(&[&signer.0.to_le_bytes(), &root, &attestation.root_sig]);
        if self.root_cache.contains(&key) {
            ctx.count(self.metric("verify_cache_hits"), 1);
            return true;
        }
        ctx.count(self.metric("verify_ops"), 1);
        let ok = verify64(
            &self.keystore,
            self.replica_node(signer),
            &batch::root_signing_bytes(&root),
            &attestation.root_sig,
            self.mock(),
        );
        if ok {
            self.root_cache.insert(key);
        }
        ok
    }

    /// Queues a zero-signature encoding for the amortized flush. The batch
    /// flushes `batch_interval` after its first message (or immediately at
    /// [`BATCH_CAP`]); authenticity comes from the batch attestation
    /// attached at flush time.
    fn queue_outbox(&mut self, ctx: &mut Context<'_>, item: OutboxItem) {
        self.outbox.push(item);
        if self.outbox.len() >= BATCH_CAP {
            self.flush_outbox(ctx);
        } else if !self.batch_timer_armed {
            self.batch_timer_armed = true;
            ctx.set_timer(self.cfg.batch_interval, TIMER_BATCH);
        }
    }

    /// Queues a vote broadcast (PO-Ack / Prepare / Commit) for the
    /// amortized flush, or signs and broadcasts it immediately when batch
    /// signing is off. `retain` marks our own PO-Acks for certificate
    /// retention (see [`OutboxItem`]).
    fn send_vote(&mut self, ctx: &mut Context<'_>, mut msg: PrimeMsg, retain: Retain) {
        if self.cfg.batch_sign {
            self.queue_outbox(
                ctx,
                OutboxItem {
                    payload: msg.encode(),
                    dest: OutboxDest::Replicas,
                    retain,
                },
            );
            return;
        }
        self.sign_msg(ctx, &mut msg);
        let bytes = msg.encode();
        self.retain_vote(ctx, retain, &bytes);
        for r in 0..self.cfg.n {
            if r != self.me.0 {
                self.net_send(ctx, ReplicaId(r), bytes.clone());
            }
        }
    }

    /// Stores our own vote frame as certificate material and re-checks the
    /// pre-order quorums it may have completed.
    fn retain_vote(&mut self, ctx: &mut Context<'_>, retain: Retain, frame: &Bytes) {
        match retain {
            Retain::None | Retain::Request { .. } => {}
            Retain::Ack {
                origin,
                po_seq,
                digest,
            } => {
                if let Some(entry) = self.po.get_mut(&(origin, po_seq)) {
                    entry
                        .acks
                        .entry(digest)
                        .or_default()
                        .insert(self.me.0, frame.clone());
                }
                self.check_certified(ctx, origin, po_seq);
            }
            Retain::AckMulti(entries) => {
                for (origin, po_seq, digest) in entries {
                    if let Some(entry) = self.po.get_mut(&(origin.0, po_seq)) {
                        entry
                            .acks
                            .entry(digest)
                            .or_default()
                            .insert(self.me.0, frame.clone());
                    }
                    self.check_certified(ctx, origin.0, po_seq);
                }
            }
        }
    }

    /// Converts the activation's staged votes into wire messages: a lone
    /// PO-Ack or commit goes out in its classic form, while several
    /// coalesce into one cumulative multi-vote — one signature (or Merkle
    /// leaf), one frame, one receiver-side verification for the lot.
    fn flush_pending_votes(&mut self, ctx: &mut Context<'_>) {
        if !self.pending_acks.is_empty() {
            let acks = std::mem::take(&mut self.pending_acks);
            if acks.len() == 1 {
                let (origin, po_seq, digest) = acks[0];
                let ack = PrimeMsg::PoAck {
                    replica: self.me,
                    origin,
                    po_seq,
                    digest,
                    sig: [0; 64],
                };
                self.send_vote(
                    ctx,
                    ack,
                    Retain::Ack {
                        origin: origin.0,
                        po_seq,
                        digest,
                    },
                );
            } else {
                ctx.count(self.metric("multi_acks"), 1);
                let msg = PrimeMsg::PoAckMulti {
                    replica: self.me,
                    entries: acks.clone(),
                    sig: [0; 64],
                };
                self.send_vote(ctx, msg, Retain::AckMulti(acks));
            }
        }
        if !self.pending_commits.is_empty() {
            let commits = std::mem::take(&mut self.pending_commits);
            // Group by view: a view change mid-activation can split them.
            let mut by_view: BTreeMap<u64, Vec<(u64, Digest)>> = BTreeMap::new();
            for (view, seq, digest) in commits {
                by_view.entry(view).or_default().push((seq, digest));
            }
            for (view, entries) in by_view {
                if entries.len() == 1 {
                    let (seq, digest) = entries[0];
                    let commit = PrimeMsg::Commit {
                        replica: self.me,
                        view,
                        seq,
                        digest,
                        sig: [0; 64],
                    };
                    self.send_vote(ctx, commit, Retain::None);
                } else {
                    ctx.count(self.metric("multi_commits"), 1);
                    let msg = PrimeMsg::CommitMulti {
                        replica: self.me,
                        view,
                        entries,
                        sig: [0; 64],
                    };
                    self.send_vote(ctx, msg, Retain::None);
                }
            }
        }
    }

    /// Sends a signed message to a client (Reply / Notify), through the
    /// amortized batch when batch signing is on.
    fn send_client_signed(&mut self, ctx: &mut Context<'_>, client: ClientId, mut msg: PrimeMsg) {
        if self.cfg.batch_sign {
            self.queue_outbox(
                ctx,
                OutboxItem {
                    payload: msg.encode(),
                    dest: OutboxDest::Client(client),
                    retain: Retain::None,
                },
            );
            return;
        }
        self.sign_msg(ctx, &mut msg);
        self.net.send_client(ctx, client, msg.encode());
    }

    /// Signs one Merkle root over every queued message and sends each with
    /// its inclusion attestation, so everything queued during one
    /// `batch_interval` window shares a single signature.
    fn flush_outbox(&mut self, ctx: &mut Context<'_>) {
        if self.outbox.is_empty() {
            return;
        }
        let items = std::mem::take(&mut self.outbox);
        for item in &items {
            self.batcher.push(spire_crypto::digest(&item.payload));
        }
        ctx.count(self.metric("sign_ops"), 1);
        ctx.count(self.metric("batch_flushes"), 1);
        ctx.count(self.metric("batched_msgs"), items.len() as u64);
        let signed = self.batcher.flush(&self.signer).expect("non-empty batch");
        for (i, item) in items.into_iter().enumerate() {
            let frame = msg::encode_batched(self.me, &signed.attestation(i), &item.payload);
            match item.dest {
                OutboxDest::Replicas => {
                    for r in 0..self.cfg.n {
                        if r != self.me.0 {
                            self.net_send(ctx, ReplicaId(r), frame.clone());
                        }
                    }
                }
                OutboxDest::Client(client) => {
                    self.net.send_client(ctx, client, frame.clone());
                }
            }
            match item.retain {
                Retain::Request { po_seq, digest } => {
                    // Swap the zero-signature encoding stored at queue time
                    // for the attested frame reconciliation will forward.
                    if let Some(entry) = self.po.get_mut(&(self.me.0, po_seq)) {
                        if let Some((stored, _, raw)) = &mut entry.content {
                            if *stored == digest {
                                *raw = frame;
                            }
                        }
                    }
                }
                retain => self.retain_vote(ctx, retain, &frame),
            }
        }
    }

    // ================= pre-ordering =================

    fn on_client_op(&mut self, ctx: &mut Context<'_>, op: ClientOp) {
        if !self.verify_client_op(ctx, &op) {
            ctx.count(self.metric("bad_client_sig"), 1);
            return;
        }
        let seen = self.seen_ops.entry(op.client.0).or_default();
        if !seen.try_mark(op.cseq) {
            return; // duplicate submission
        }
        ctx.span_mark(span_key(op.client.0, op.cseq), SpanPhase::Recv);
        self.pending_ops.push(op);
        if self.pending_ops.len() >= self.cfg.po_batch {
            self.flush_po_batch(ctx);
        }
    }

    fn flush_po_batch(&mut self, ctx: &mut Context<'_>) {
        if self.pending_ops.is_empty() || self.recovering {
            return;
        }
        self.my_po_seq += 1;
        let ops = std::mem::take(&mut self.pending_ops);
        if self.behavior == ByzBehavior::EquivocatePo && ops.len() >= 2 {
            // Same po_seq, different contents to the two halves.
            let half = ops.len() / 2;
            let mut msg_a = PrimeMsg::PoRequest {
                origin: self.me,
                po_seq: self.my_po_seq,
                ops: ops[..half].to_vec(),
                sig: [0; 64],
            };
            self.sign_msg(ctx, &mut msg_a);
            let mut msg_b = PrimeMsg::PoRequest {
                origin: self.me,
                po_seq: self.my_po_seq,
                ops: ops[half..].to_vec(),
                sig: [0; 64],
            };
            self.sign_msg(ctx, &mut msg_b);
            self.broadcast_split(ctx, msg_a.encode(), msg_b.encode());
            return;
        }
        let mut msg = PrimeMsg::PoRequest {
            origin: self.me,
            po_seq: self.my_po_seq,
            ops,
            sig: [0; 64],
        };
        if self.cfg.batch_sign {
            // Our own zero-signature encoding is accepted directly (we
            // trivially authenticated ourselves); the attested frame
            // replaces the stored bytes at flush time.
            let digest = spire_crypto::digest(&msg.signing_bytes());
            let po_seq = self.my_po_seq;
            self.accept_po_request(ctx, &msg, Some(self.me), None);
            self.queue_outbox(
                ctx,
                OutboxItem {
                    payload: msg.encode(),
                    dest: OutboxDest::Replicas,
                    retain: Retain::Request { po_seq, digest },
                },
            );
            return;
        }
        self.sign_msg(ctx, &mut msg);
        // Record our own request locally (we are origin and first acker).
        self.accept_po_request(ctx, &msg, None, None);
        self.broadcast(ctx, &msg);
    }

    /// Handles a PO-Request (from the origin, from our own flush, or
    /// re-broadcast through reconciliation). `frame` is the self-contained
    /// wire form the request arrived in (attested when batched); it is
    /// what reconciliation stores and forwards.
    fn accept_po_request(
        &mut self,
        ctx: &mut Context<'_>,
        msg: &PrimeMsg,
        env_auth: Option<ReplicaId>,
        frame: Option<&Bytes>,
    ) {
        let PrimeMsg::PoRequest {
            origin,
            po_seq,
            ops,
            ..
        } = msg
        else {
            return;
        };
        let (origin, po_seq) = (*origin, *po_seq);
        if origin.0 >= self.cfg.n {
            return;
        }
        if !self.verify_replica_msg(ctx, msg, origin, env_auth) {
            ctx.count(self.metric("bad_po_sig"), 1);
            return;
        }
        let ops_ok = ops.iter().all(|op| self.verify_client_op(ctx, op));
        if !ops_ok {
            ctx.count(self.metric("bad_op_in_batch"), 1);
            return;
        }
        let digest = spire_crypto::digest(&msg.signing_bytes());
        self.po_high[origin.0 as usize] = self.po_high[origin.0 as usize].max(po_seq);
        let entry = self.po.entry((origin.0, po_seq)).or_default();
        let replace = match (&entry.content, &entry.certified) {
            (None, _) => true,
            // An equivocating origin gave us content that never certified;
            // adopt the certified version fetched via reconciliation.
            (Some((held, _, _)), Some(cert)) => held != cert && *cert == digest,
            _ => false,
        };
        if replace {
            let raw = frame.cloned().unwrap_or_else(|| msg.encode());
            entry.content = Some((digest, ops.clone(), raw));
        }
        // Vouch: the origin implicitly acks via its signed request; we ack
        // once (unless we are the origin, whose request is its vote).
        let ack_now = entry.acked.is_none() && origin != self.me;
        if ack_now {
            entry.acked = Some(digest);
        }
        // A duplicate of a still-uncertified request is a retry: our first
        // ack may have been lost (links give up after bounded
        // retransmission), so vote again. Acks are idempotent at the
        // receiver, and the re-ack stops once the entry certifies.
        let re_ack = !ack_now
            && origin != self.me
            && entry.certified.is_none()
            && entry.acked == Some(digest);
        if (ack_now || re_ack) && self.behavior != ByzBehavior::AckWithhold {
            // Staged, not sent: every request acknowledged within this
            // activation (a coalesced arrival can carry many) shares one
            // cumulative vote at the activation boundary.
            self.pending_acks.push((origin, po_seq, digest));
        }
        self.missing.remove(&(origin.0, po_seq));
        self.check_certified(ctx, origin.0, po_seq);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_po_ack(
        &mut self,
        ctx: &mut Context<'_>,
        msg: &PrimeMsg,
        replica: ReplicaId,
        origin: ReplicaId,
        po_seq: u64,
        digest: Digest,
        env_auth: Option<ReplicaId>,
        frame: &Bytes,
    ) {
        if replica.0 >= self.cfg.n || origin.0 >= self.cfg.n {
            return;
        }
        if !self.verify_replica_msg(ctx, msg, replica, env_auth) {
            ctx.count(self.metric("bad_ack_sig"), 1);
            return;
        }
        if replica == origin {
            return; // the origin's vote is its signed request, not an ack
        }
        // Store the frame as received (plain or batch-attested): it is
        // self-contained certificate material for reconciliation.
        let entry = self.po.entry((origin.0, po_seq)).or_default();
        entry
            .acks
            .entry(digest)
            .or_default()
            .insert(replica.0, frame.clone());
        self.check_certified(ctx, origin.0, po_seq);
    }

    /// A cumulative PO-Ack: one signature vouches for every `(origin,
    /// po_seq, digest)` entry. The whole frame is stored per entry as
    /// certificate material — forwarded verbatim during reconciliation it
    /// re-verifies and re-derives each entry at the receiver, exactly like
    /// a stored single ack.
    fn on_po_ack_multi(
        &mut self,
        ctx: &mut Context<'_>,
        msg: &PrimeMsg,
        replica: ReplicaId,
        entries: &[(ReplicaId, u64, Digest)],
        env_auth: Option<ReplicaId>,
        frame: &Bytes,
    ) {
        if replica.0 >= self.cfg.n || entries.iter().any(|(origin, _, _)| origin.0 >= self.cfg.n) {
            return;
        }
        if !self.verify_replica_msg(ctx, msg, replica, env_auth) {
            ctx.count(self.metric("bad_ack_sig"), 1);
            return;
        }
        for (origin, po_seq, digest) in entries {
            if replica == *origin {
                continue; // the origin's vote is its signed request
            }
            let entry = self.po.entry((origin.0, *po_seq)).or_default();
            entry
                .acks
                .entry(*digest)
                .or_default()
                .insert(replica.0, frame.clone());
            self.check_certified(ctx, origin.0, *po_seq);
        }
    }

    fn check_certified(&mut self, ctx: &mut Context<'_>, origin: u32, po_seq: u64) {
        let quorum = self.cfg.ordering_quorum(); // 2f + k + 1 vouchers
        let entry = self.po.entry((origin, po_seq)).or_default();
        if entry.certified.is_none() {
            let content_digest = entry.content.as_ref().map(|(d, _, _)| *d);
            let winner = entry
                .acks
                .iter()
                .find(|(digest, votes)| {
                    // Count distinct non-origin ackers plus the origin's
                    // implicit vote when we hold matching content.
                    let origin_vote = (content_digest == Some(**digest)) as usize;
                    votes.keys().filter(|r| **r != origin).count() + origin_vote >= quorum
                })
                .map(|(digest, _)| *digest);
            entry.certified = winner;
            if winner.is_some() {
                ctx.count("prime_certified", 1);
                if ctx.tracing_enabled() {
                    if let Some((digest, ops, _)) = &entry.content {
                        if Some(*digest) == winner {
                            for op in ops {
                                ctx.span_mark(span_key(op.client.0, op.cseq), SpanPhase::Preorder);
                            }
                        }
                    }
                }
            }
        }
        if entry.certified.is_some() {
            self.advance_po_aru(ctx, origin);
        }
    }

    fn advance_po_aru(&mut self, _ctx: &mut Context<'_>, origin: u32) {
        loop {
            let next = self.po_aru[origin as usize] + 1;
            let certified = self
                .po
                .get(&(origin, next))
                .map(|e| e.certified.is_some())
                .unwrap_or(false);
            if certified {
                self.po_aru[origin as usize] = next;
            } else {
                break;
            }
        }
    }

    fn maybe_send_summary(&mut self, ctx: &mut Context<'_>) {
        if self.recovering || self.behavior == ByzBehavior::AckWithhold {
            return;
        }
        let vector = AruVector(self.po_aru.clone());
        if vector == self.last_summary_vector {
            return;
        }
        self.my_sseq += 1;
        ctx.count(self.metric("summaries_sent"), 1);
        ctx.count(self.metric("sign_ops"), 1);
        let row = SummaryRow::signed(self.me, self.my_sseq, vector.clone(), &self.signer);
        self.last_summary_vector = vector;
        self.latest_rows.insert(self.me.0, row.clone());
        if self.outstanding_summary.is_none() && !self.is_leader() {
            self.outstanding_summary = Some((self.my_sseq, ctx.now()));
        }
        let msg = PrimeMsg::PoSummary(row);
        self.broadcast(ctx, &msg);
        self.maybe_eager_propose(ctx);
    }

    fn on_summary(&mut self, ctx: &mut Context<'_>, row: SummaryRow) {
        if !self.verify_summary_row(ctx, &row) {
            ctx.count(self.metric("bad_summary_sig"), 1);
            return;
        }
        self.observe_row_sseq(&row);
        let current = self
            .latest_rows
            .get(&row.replica.0)
            .map(|r| r.sseq)
            .unwrap_or(0);
        if row.sseq > current {
            self.latest_rows.insert(row.replica.0, row);
            self.maybe_eager_propose(ctx);
        }
    }

    /// Tracks the highest summary sequence seen per replica; observing our
    /// *own* pre-recovery rows bumps our counter past them so our fresh
    /// summaries are not discarded as stale replays.
    fn observe_row_sseq(&mut self, row: &SummaryRow) {
        let idx = row.replica.0 as usize;
        if idx < self.sseq_high.len() {
            self.sseq_high[idx] = self.sseq_high[idx].max(row.sseq);
        }
        if row.replica == self.me && row.sseq >= self.my_sseq {
            self.my_sseq = row.sseq;
        }
    }

    // ================= ordering =================

    /// Event-driven proposing: fresh summary rows (or a reopened proposal
    /// window) trigger a pre-prepare immediately instead of waiting for
    /// the next `pre_prepare_interval` tick, so ordering latency tracks
    /// message arrival rather than the timer quantum. Rate-limited by
    /// `eager_propose_gap`; the periodic timer stays on as a backstop.
    fn maybe_eager_propose(&mut self, ctx: &mut Context<'_>) {
        if !self.cfg.eager_propose || !self.is_leader() || self.in_view_change || self.recovering {
            return;
        }
        if let Some(prev) = self.last_preprepare_at {
            if ctx.now().since(prev).0 < self.cfg.eager_propose_gap.0 {
                return;
            }
        }
        let before = self.last_proposed;
        self.propose(ctx);
        if self.last_proposed > before {
            ctx.count(self.metric("eager_proposals"), 1);
        }
    }

    fn propose(&mut self, ctx: &mut Context<'_>) {
        if !self.is_leader() || self.in_view_change || self.recovering {
            return;
        }
        if self.behavior == ByzBehavior::Mute {
            return;
        }
        if self.last_proposed >= self.commit_aru + self.cfg.proposal_window {
            ctx.count(self.metric("propose_window_stall"), 1);
            return;
        }
        let matrix = Matrix {
            rows: self.latest_rows.values().cloned().collect(),
        };
        // Skip proposals that cannot make progress: identical to the last
        // proposed matrix.
        if let Some(slot) = self.slots.get(&self.last_proposed) {
            if let Some((_, last_matrix, _)) = &slot.pre_prepare {
                if *last_matrix == matrix {
                    return;
                }
            }
        }
        if matrix.rows.is_empty() {
            return;
        }
        let seq = self.last_proposed + 1;
        self.last_proposed = seq;
        // Ordering-cadence instrumentation: the gap between consecutive
        // pre-prepares from this leader. A performance-attacking leader
        // (LeaderDelay) stretches this without tripping crash timeouts.
        let now = ctx.now();
        if let Some(prev) = self.last_preprepare_at {
            ctx.observe(self.metric("leader_gap_us"), now.since(prev).0);
        }
        self.last_preprepare_at = Some(now);
        ctx.count(self.metric("preprepares_sent"), 1);
        if self.behavior == ByzBehavior::Equivocate {
            // Send conflicting proposals to the two halves of the cluster.
            let mut alt = matrix.clone();
            if !alt.rows.is_empty() {
                alt.rows.remove(0);
            }
            let mut msg_a = PrimeMsg::PrePrepare {
                view: self.view,
                seq,
                matrix: matrix.clone(),
                sig: [0; 64],
            };
            self.sign_msg(ctx, &mut msg_a);
            let mut msg_b = PrimeMsg::PrePrepare {
                view: self.view,
                seq,
                matrix: alt,
                sig: [0; 64],
            };
            self.sign_msg(ctx, &mut msg_b);
            self.broadcast_split(ctx, msg_a.encode(), msg_b.encode());
            return;
        }
        let mut msg = PrimeMsg::PrePrepare {
            view: self.view,
            seq,
            matrix,
            sig: [0; 64],
        };
        self.sign_msg(ctx, &mut msg);
        // A delaying leader (performance attack) postpones the broadcast;
        // deferred frames are released from the pre-prepare timer.
        if let ByzBehavior::LeaderDelay(extra) = self.behavior {
            self.delayed_proposals
                .push((ctx.now() + extra, msg.encode()));
            return;
        }
        self.accept_pre_prepare(ctx, self.view, seq, {
            if let PrimeMsg::PrePrepare { matrix, .. } = &msg {
                matrix.clone()
            } else {
                unreachable!()
            }
        });
        self.broadcast(ctx, &msg);
    }

    fn accept_pre_prepare(&mut self, ctx: &mut Context<'_>, view: u64, seq: u64, matrix: Matrix) {
        if view != self.view || self.in_view_change || seq <= self.commit_aru {
            // Not installable right now — but if it belongs to the view we
            // are changing into (or a later one), keep it for replay; see
            // `stashed_pps`. Stale ones (old view / already committed) drop.
            let pending = view >= self.view
                && seq > self.commit_aru
                && (self.in_view_change || view > self.view);
            if pending && self.stashed_pps.len() < 64 {
                ctx.count(self.metric("preprepares_stashed"), 1);
                self.stashed_pps.insert((view, seq), matrix);
            }
            return;
        }
        // Validate every row signature so a lying leader cannot fabricate
        // other replicas' summaries. Rows recur across proposals, so the
        // bounded cache makes re-validation a hash lookup.
        let rows_ok = matrix
            .rows
            .iter()
            .all(|row| self.verify_summary_row(ctx, row));
        if !rows_ok {
            ctx.count(self.metric("bad_matrix_row"), 1);
            return;
        }
        // At most one row per replica.
        let mut seen = BTreeSet::new();
        if !matrix.rows.iter().all(|row| seen.insert(row.replica.0)) {
            ctx.count(self.metric("dup_matrix_row"), 1);
            return;
        }
        for row in &matrix.rows {
            self.observe_row_sseq(row);
        }
        let digest = matrix.digest();
        let slot = self.slots.entry(seq).or_default();
        if let Some((v, _, existing)) = &slot.pre_prepare {
            if *v == view && *existing != digest {
                // Leader equivocation detected locally.
                ctx.count(self.metric("equivocation_detected"), 1);
                return;
            }
            if *v >= view {
                return;
            }
        }
        slot.pre_prepare = Some((view, matrix, digest));
        // TAT measurement: does this proposal cover our outstanding summary?
        if let Some((sseq, sent)) = self.outstanding_summary {
            let covered = self.slots[&seq]
                .pre_prepare
                .as_ref()
                .map(|(_, m, _)| {
                    m.rows
                        .iter()
                        .any(|row| row.replica == self.me && row.sseq >= sseq)
                })
                .unwrap_or(false);
            if covered {
                let tat_us = ctx.now().since(sent).0 as f64;
                self.outstanding_summary = None;
                self.check_turnaround(ctx, tat_us);
            }
        }
        if self.behavior != ByzBehavior::AckWithhold {
            self.slots
                .get_mut(&seq)
                .unwrap()
                .prepares
                .insert(self.me.0, digest);
            let prepare = PrimeMsg::Prepare {
                replica: self.me,
                view,
                seq,
                digest,
                sig: [0; 64],
            };
            self.send_vote(ctx, prepare, Retain::None);
        }
        self.try_prepare_commit(ctx, seq);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_prepare(
        &mut self,
        ctx: &mut Context<'_>,
        msg: &PrimeMsg,
        replica: ReplicaId,
        view: u64,
        seq: u64,
        digest: Digest,
        env_auth: Option<ReplicaId>,
    ) {
        if replica.0 >= self.cfg.n || seq <= self.commit_aru {
            return;
        }
        if !self.verify_replica_msg(ctx, msg, replica, env_auth) {
            ctx.count(self.metric("bad_prepare_sig"), 1);
            return;
        }
        self.note_claimed_view(ctx, replica, view);
        if view != self.view {
            return;
        }
        let slot = self.slots.entry(seq).or_default();
        slot.prepares.insert(replica.0, digest);
        self.try_prepare_commit(ctx, seq);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_commit(
        &mut self,
        ctx: &mut Context<'_>,
        msg: &PrimeMsg,
        replica: ReplicaId,
        view: u64,
        seq: u64,
        digest: Digest,
        env_auth: Option<ReplicaId>,
    ) {
        if replica.0 >= self.cfg.n || seq <= self.commit_aru {
            return;
        }
        if !self.verify_replica_msg(ctx, msg, replica, env_auth) {
            ctx.count(self.metric("bad_commit_sig"), 1);
            return;
        }
        self.note_claimed_view(ctx, replica, view);
        self.max_seen_commit = self.max_seen_commit.max(seq);
        if view != self.view {
            return;
        }
        let slot = self.slots.entry(seq).or_default();
        slot.commits.insert(replica.0, digest);
        self.try_prepare_commit(ctx, seq);
    }

    /// A cumulative commit: one verification covers a replica's commit
    /// votes for every pipelined sequence it prepared this activation.
    fn on_commit_multi(
        &mut self,
        ctx: &mut Context<'_>,
        msg: &PrimeMsg,
        replica: ReplicaId,
        view: u64,
        entries: &[(u64, Digest)],
        env_auth: Option<ReplicaId>,
    ) {
        if replica.0 >= self.cfg.n {
            return;
        }
        if !self.verify_replica_msg(ctx, msg, replica, env_auth) {
            ctx.count(self.metric("bad_commit_sig"), 1);
            return;
        }
        self.note_claimed_view(ctx, replica, view);
        for (seq, digest) in entries {
            self.max_seen_commit = self.max_seen_commit.max(*seq);
            if view != self.view || *seq <= self.commit_aru {
                continue;
            }
            let slot = self.slots.entry(*seq).or_default();
            slot.commits.insert(replica.0, *digest);
            self.try_prepare_commit(ctx, *seq);
        }
    }

    fn try_prepare_commit(&mut self, ctx: &mut Context<'_>, seq: u64) {
        // Intentionally-seeded safety bug for the exploration harness
        // (feature `seeded-commit-bug`, never enabled in normal builds):
        // the Prepare/Commit certificates trip on a single vote instead of
        // the 2f + k + 1 ordering quorum. The explorer's CI leg proves the
        // harness catches the resulting divergence and shrinks a
        // reproducing schedule to a replayable artifact.
        let quorum = if cfg!(feature = "seeded-commit-bug") {
            1
        } else {
            self.cfg.ordering_quorum()
        };
        let withhold = self.behavior == ByzBehavior::AckWithhold;
        let me = self.me;
        let Some(slot) = self.slots.get_mut(&seq) else {
            return;
        };
        let Some((view, digest)) = slot.pre_prepare.as_ref().map(|(v, _, d)| (*v, *d)) else {
            return;
        };
        if !slot.prepared {
            let count = slot.prepares.values().filter(|d| **d == digest).count();
            if count >= quorum {
                slot.prepared = true;
                if !withhold {
                    slot.commits.insert(me.0, digest);
                    // Staged: pipelined windows prepare several sequences
                    // per activation, flushed as one cumulative commit.
                    self.pending_commits.push((view, seq, digest));
                }
            }
        }
        let Some(slot) = self.slots.get_mut(&seq) else {
            return;
        };
        if slot.prepared && !slot.committed {
            let count = slot.commits.values().filter(|d| **d == digest).count();
            if count >= quorum {
                slot.committed = true;
                let matrix = slot.pre_prepare.as_ref().unwrap().1.clone();
                self.committed_matrices.insert(seq, matrix);
                ctx.count(self.metric("committed"), 1);
                self.advance_commit_aru(ctx);
            }
        }
    }

    fn advance_commit_aru(&mut self, ctx: &mut Context<'_>) {
        loop {
            let next = self.commit_aru + 1;
            if self.committed_matrices.contains_key(&next)
                || self.slots.get(&next).map(|s| s.committed).unwrap_or(false)
            {
                self.commit_aru = next;
                self.last_progress = ctx.now();
                self.timeout_backoff = 1;
            } else {
                break;
            }
        }
        self.try_execute(ctx);
        // Commits reopen the proposal window; a leader stalled on it can
        // resume pipelining right away.
        self.maybe_eager_propose(ctx);
    }

    /// Mirrors the current view into the inspection record so the online
    /// invariant checker sees view transitions even between executions.
    fn publish_view(&self) {
        if let Some(inspection) = &self.inspection {
            let view = self.view;
            inspection.update(self.me.0, move |rec| rec.view = view);
        }
    }

    /// Mirrors ordering-layer progress variables into the inspection record
    /// (published from the progress timer, so snapshots stay fresh even when
    /// execution is stalled and the per-op update path never runs).
    fn publish_ordering_health(&self) {
        if let Some(inspection) = &self.inspection {
            let (commit_aru, last_proposed) = (self.commit_aru, self.last_proposed);
            let missing_po = self.missing.len() as u64;
            let in_view_change = self.in_view_change;
            let next = self.last_executed + 1;
            let exec_stall = if next > self.commit_aru {
                0 // idle: nothing committed beyond execution
            } else if !self.committed_matrices.contains_key(&next) {
                1 // committed matrix itself absent (ordering hole)
            } else {
                2 // matrix present: waiting on pre-order reconciliation
            };
            inspection.update(self.me.0, move |rec| {
                rec.commit_aru = commit_aru;
                rec.last_proposed = last_proposed;
                rec.missing_po = missing_po;
                rec.in_view_change = in_view_change;
                rec.exec_stall = exec_stall;
            });
        }
    }

    // ================= execution =================

    fn try_execute(&mut self, ctx: &mut Context<'_>) {
        loop {
            let next = self.last_executed + 1;
            if next > self.commit_aru {
                break;
            }
            let Some(matrix) = self.committed_matrices.get(&next).cloned() else {
                break;
            };
            let quorum = self.cfg.cover_quorum();
            // Per-origin execution targets from this matrix.
            let targets: Vec<u64> = (0..self.n())
                .map(|i| matrix.covered_aru(i, quorum).max(self.exec_cover[i]))
                .collect();
            // First pass: are all needed PO-Requests present and certified?
            let mut absent: Vec<(u32, u64)> = Vec::new();
            for (i, target) in targets.iter().enumerate() {
                for s in (self.exec_cover[i] + 1)..=*target {
                    let ok = self
                        .po
                        .get(&(i as u32, s))
                        .map(|e| match (&e.certified, &e.content) {
                            (Some(cert), Some((digest, _, _))) => cert == digest,
                            _ => false,
                        })
                        .unwrap_or(false);
                    if !ok {
                        absent.push((i as u32, s));
                    }
                }
            }
            if !absent.is_empty() {
                for key in absent {
                    if self.missing.insert(key) {
                        let req = PrimeMsg::ReconReq {
                            replica: self.me,
                            origin: ReplicaId(key.0),
                            po_seq: key.1,
                        };
                        self.broadcast(ctx, &req);
                        ctx.count(self.metric("recon_requested"), 1);
                    }
                }
                break; // stall until reconciliation completes
            }
            // Second pass: execute deterministically.
            for (i, target) in targets.iter().enumerate() {
                for s in (self.exec_cover[i] + 1)..=*target {
                    let ops = self.po[&(i as u32, s)]
                        .content
                        .as_ref()
                        .map(|(_, ops, _)| ops.clone())
                        .unwrap();
                    for op in ops {
                        ctx.span_mark(span_key(op.client.0, op.cseq), SpanPhase::Order);
                        self.execute_op(ctx, op);
                    }
                    self.exec_cover[i] = s;
                }
            }
            self.last_executed = next;
            ctx.count(self.metric("matrices_executed"), 1);
            if let Some(inspection) = &self.inspection {
                let (view, head) = (self.view, self.exec_chain_head);
                inspection.update(self.me.0, move |rec| rec.push_commit(view, next, head));
            }
            if next.is_multiple_of(self.cfg.checkpoint_interval) {
                self.take_checkpoint(ctx, next);
            }
        }
    }

    fn execute_op(&mut self, ctx: &mut Context<'_>, op: ClientOp) {
        let executed = self.executed_cseq.entry(op.client.0).or_default();
        if !executed.try_mark(op.cseq) {
            return; // duplicate (several replicas originated it)
        }
        if ctx.tracing_enabled() {
            ctx.span_mark(span_key(op.client.0, op.cseq), SpanPhase::Execute);
            if let Some(kind) = self.app.classify(&op.payload) {
                ctx.trace(TraceKind::Mark {
                    pid: ctx.id().0,
                    label: kind,
                    value: op.cseq,
                });
            }
        }
        let outcome = if self.behavior == ByzBehavior::DivergentExec {
            // A compromised replica corrupting its own state machine: it
            // diverges silently. Clients are protected by f+1 matching
            // replies; tests assert correct replicas stay consistent.
            let mut corrupted = op.payload.to_vec();
            corrupted.push(0xff);
            self.app.execute(&corrupted)
        } else {
            self.app.execute(&op.payload)
        };
        let result = outcome.reply;
        for notification in outcome.notifications {
            let msg = PrimeMsg::Notify {
                replica: self.me,
                client: notification.target,
                nseq: notification.nseq,
                payload: Bytes::from(notification.payload),
                sig: [0; 64],
            };
            self.send_client_signed(ctx, notification.target, msg);
        }
        ctx.count(self.metric("ops_executed"), 1);
        self.total_ops += 1;
        self.exec_chain_head = spire_crypto::digest_parts(&[
            &self.exec_chain_head,
            &op.client.0.to_le_bytes(),
            &op.cseq.to_le_bytes(),
            &op.payload,
        ]);
        if let Some(inspection) = &self.inspection {
            let head = self.exec_chain_head;
            let app_digest = self.app.digest();
            let (view, last_executed) = (self.view, self.last_executed);
            inspection.update(self.me.0, move |rec| {
                rec.view = view;
                rec.last_executed = last_executed;
                rec.ops_executed += 1;
                rec.exec_chain.push(head);
                rec.app_digest = app_digest;
            });
        }
        let reply = PrimeMsg::Reply {
            replica: self.me,
            client: op.client,
            cseq: op.cseq,
            result: Bytes::from(result),
            sig: [0; 64],
        };
        self.send_client_signed(ctx, op.client, reply);
    }

    // ================= checkpoints & recovery =================

    fn execution_snapshot(&self) -> Vec<u8> {
        let mut w = spire_sim::WireWriter::new();
        w.bytes(&self.app.snapshot());
        w.u16(self.exec_cover.len() as u16);
        for v in &self.exec_cover {
            w.u64(*v);
        }
        w.u32(self.executed_cseq.len() as u32);
        for (c, window) in &self.executed_cseq {
            w.u32(*c).u64(window.floor());
            let sparse: Vec<u64> = window.sparse().collect();
            w.u16(sparse.len() as u16);
            for v in sparse {
                w.u64(v);
            }
        }
        w.raw(&self.exec_chain_head).u64(self.total_ops);
        w.finish().to_vec()
    }

    fn restore_execution_snapshot(&mut self, snapshot: &[u8]) -> bool {
        let mut r = spire_sim::WireReader::new(snapshot);
        let Ok(app_snap) = r.bytes() else {
            return false;
        };
        let app_snap = app_snap.to_vec();
        let Ok(n) = r.u16() else { return false };
        let mut cover = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let Ok(v) = r.u64() else { return false };
            cover.push(v);
        }
        let Ok(m) = r.u32() else { return false };
        let mut cseq = BTreeMap::new();
        for _ in 0..m {
            let (Ok(c), Ok(floor), Ok(k)) = (r.u32(), r.u64(), r.u16()) else {
                return false;
            };
            let mut above = Vec::with_capacity(k as usize);
            for _ in 0..k {
                let Ok(v) = r.u64() else { return false };
                above.push(v);
            }
            cseq.insert(c, CseqWindow::from_parts(floor, above));
        }
        let (Ok(head), Ok(total_ops)) = (r.array::<32>(), r.u64()) else {
            return false;
        };
        if cover.len() != self.n() {
            return false;
        }
        self.app.restore(&app_snap);
        self.exec_cover = cover;
        self.executed_cseq = cseq;
        // The execution hash chain resumes from the checkpoint's head; the
        // published chain restarts at the checkpoint's global op count so
        // prefix checks compare the overlapping history.
        self.exec_chain_head = head;
        self.total_ops = total_ops;
        if let Some(inspection) = &self.inspection {
            inspection.update(self.me.0, |rec| {
                rec.exec_chain.clear();
                rec.chain_offset = total_ops;
                rec.ops_executed = total_ops;
            });
        }
        true
    }

    fn take_checkpoint(&mut self, ctx: &mut Context<'_>, seq: u64) {
        let snapshot = self.execution_snapshot();
        let digest = spire_crypto::digest(&snapshot);
        if let Some(inspection) = &self.inspection {
            inspection.update(self.me.0, move |rec| rec.push_checkpoint(seq, digest));
        }
        ctx.count(self.metric("sign_ops"), 1);
        let msg = CheckpointMsg::signed(self.me, seq, digest, &self.signer);
        self.checkpoint_votes
            .entry(seq)
            .or_default()
            .insert(self.me.0, msg.clone());
        // Cache our own snapshot so it is available once stable.
        self.pending_snapshots.insert(seq, Bytes::from(snapshot));
        self.broadcast(ctx, &PrimeMsg::Checkpoint(msg));
        self.check_checkpoint_stable(ctx, seq);
    }

    fn on_checkpoint(&mut self, ctx: &mut Context<'_>, msg: CheckpointMsg) {
        if msg.replica.0 >= self.cfg.n {
            return;
        }
        ctx.count(self.metric("verify_ops"), 1);
        if !msg.verify(&self.keystore, self.cfg.replica_key_base, self.mock()) {
            ctx.count(self.metric("bad_ckpt_sig"), 1);
            return;
        }
        self.checkpoint_votes
            .entry(msg.seq)
            .or_default()
            .insert(msg.replica.0, msg.clone());
        self.check_checkpoint_stable(ctx, msg.seq);
    }

    fn check_checkpoint_stable(&mut self, ctx: &mut Context<'_>, seq: u64) {
        let needed = (self.cfg.f + 1) as usize;
        let Some(votes) = self.checkpoint_votes.get(&seq) else {
            return;
        };
        let Some(snapshot) = self.pending_snapshots.get(&seq) else {
            return;
        };
        let my_digest = spire_crypto::digest(snapshot);
        let matching: Vec<CheckpointMsg> = votes
            .values()
            .filter(|v| v.digest == my_digest)
            .cloned()
            .collect();
        if matching.len() < needed {
            return;
        }
        let already = self
            .stable_checkpoint
            .as_ref()
            .map(|(s, _, _)| *s)
            .unwrap_or(0);
        if seq <= already {
            return;
        }
        self.stable_checkpoint = Some((seq, snapshot.clone(), matching));
        self.stable_exec_cover = self.exec_cover.clone();
        ctx.count(self.metric("checkpoints_stable"), 1);
        ctx.trace(TraceKind::Checkpoint {
            replica: self.me.0,
            seq,
        });
        self.garbage_collect(ctx, seq);
    }

    /// Compacts every log indexed below the stable checkpoint: ordering
    /// matrices and certificate slots, checkpoint votes, pre-ordering
    /// entries below the stable execution cover, suffix votes, stale
    /// view-change state and reconciliation requests. Emits
    /// `compaction.*` counters plus retained-size gauges so endurance
    /// runs can assert the plateau.
    fn garbage_collect(&mut self, ctx: &mut Context<'_>, stable_seq: u64) {
        let before = self.committed_matrices.len()
            + self.slots.len()
            + self.po.len()
            + self.suffix_votes.len()
            + self.missing.len()
            + self.view_states.len();
        self.committed_matrices.retain(|s, _| *s > stable_seq);
        self.slots.retain(|s, _| *s > stable_seq);
        self.checkpoint_votes.retain(|s, _| *s + 1 >= stable_seq);
        self.pending_snapshots.retain(|s, _| *s >= stable_seq);
        let cover = self.stable_exec_cover.clone();
        self.po
            .retain(|(origin, s), _| *s > cover[*origin as usize]);
        // Suffix votes at or below the stable checkpoint can never be
        // adopted again (last_executed >= stable_seq once restored).
        self.suffix_votes.retain(|(s, _), _| *s > stable_seq);
        // Reconciliation requests below the stable cover are satisfied by
        // state transfer, never by per-request recon.
        self.missing
            .retain(|(origin, s)| *s > cover[*origin as usize]);
        // View-change state for long-dead views (suspicions are only
        // counted for views >= self.view; view states only install view+1).
        let view = self.view;
        self.suspects.retain(|v, _| *v >= view);
        self.suspected_views.retain(|v| *v >= view);
        self.view_states.retain(|v, _| *v + 1 >= view);
        let after = self.committed_matrices.len()
            + self.slots.len()
            + self.po.len()
            + self.suffix_votes.len()
            + self.missing.len()
            + self.view_states.len();
        ctx.count(self.metric("compaction.runs"), 1);
        ctx.count(
            self.metric("compaction.evicted"),
            before.saturating_sub(after) as u64,
        );
        ctx.record(self.metric("compaction.po_retained"), self.po.len() as f64);
        ctx.record(
            self.metric("compaction.slots_retained"),
            self.slots.len() as f64,
        );
        ctx.record(
            self.metric("compaction.matrices_retained"),
            self.committed_matrices.len() as f64,
        );
        ctx.record(
            self.metric("compaction.suffix_retained"),
            self.suffix_votes.len() as f64,
        );
    }

    fn on_state_req(
        &mut self,
        ctx: &mut Context<'_>,
        msg: &PrimeMsg,
        from: ReplicaId,
        have_seq: u64,
    ) {
        if from.0 >= self.cfg.n || from == self.me {
            return;
        }
        if !self.verify_replica_msg(ctx, msg, from, None) {
            ctx.count(self.metric("bad_state_req_sig"), 1);
            return;
        }
        // A recovering replica cannot lead: if the requester is the current
        // leader, replace it immediately instead of waiting for the
        // progress timeout.
        if from == self.cfg.leader_of(self.view) && !self.in_view_change {
            self.suspect_current_view(ctx);
        }
        let mut suffix_from = have_seq + 1;
        if let Some((seq, snapshot, proof)) = self.stable_checkpoint.clone() {
            if seq > have_seq {
                // Chunked transfer: describe the layout (per-chunk digests
                // pin what a correct reconstruction must hash to), then
                // stream this replica's erasure share of every chunk. Each
                // chunk is coded with k = f + 1, so any f+1 correct
                // responders let the requester reconstruct it at 1/(f+1)
                // the bandwidth each; a lost or corrupt share costs one
                // chunk retry, not the whole snapshot.
                let chunk_size = self.cfg.state_chunk_bytes.max(1);
                let chunk_digests: Vec<Digest> = snapshot
                    .chunks(chunk_size)
                    .map(spire_crypto::digest)
                    .collect();
                let meta = PrimeMsg::StateMeta {
                    replica: self.me,
                    checkpoint_seq: seq,
                    erasure_k: (self.cfg.f + 1) as u8,
                    chunk_size: chunk_size as u32,
                    total_len: snapshot.len() as u64,
                    chunk_digests,
                    proof,
                    view: self.view,
                    requester_po_high: self.po_high[from.0 as usize],
                    requester_sseq_high: self.sseq_high[from.0 as usize],
                };
                self.send_to(ctx, from, &meta);
                self.send_chunk_shares(ctx, from, seq, &snapshot, None);
                suffix_from = seq + 1;
            }
        }
        // Send the committed suffix so the requester can catch up to the
        // present (adopted there once f+1 responders agree) — even when no
        // checkpoint exists yet (young system, genesis rejoin).
        let suffix: Vec<u64> = self
            .committed_matrices
            .range(suffix_from..)
            .map(|(s, _)| *s)
            .take(200)
            .collect();
        for s in suffix {
            self.send_suffix_vote(ctx, from, s);
        }
    }

    fn send_suffix_vote(&mut self, ctx: &mut Context<'_>, to: ReplicaId, seq: u64) {
        if let Some(matrix) = self.committed_matrices.get(&seq).cloned() {
            let msg = PrimeMsg::SuffixVote {
                replica: self.me,
                seq,
                matrix,
            };
            self.send_to(ctx, to, &msg);
        }
    }

    /// Sends this replica's erasure share of each requested chunk of the
    /// stable snapshot (all chunks when `wanted` is None). A responder
    /// with [`ByzBehavior::CorruptShares`] flips bits in every share it
    /// serves — the requester's per-chunk digest check weeds these out.
    fn send_chunk_shares(
        &mut self,
        ctx: &mut Context<'_>,
        to: ReplicaId,
        seq: u64,
        snapshot: &[u8],
        wanted: Option<&[u32]>,
    ) {
        let k = (self.cfg.f + 1) as usize;
        let n = self.n().max(k);
        let chunk_size = self.cfg.state_chunk_bytes.max(1);
        let corrupt = self.behavior == ByzBehavior::CorruptShares;
        for (i, chunk) in snapshot.chunks(chunk_size).enumerate() {
            if let Some(w) = wanted {
                if !w.contains(&(i as u32)) {
                    continue;
                }
            }
            let Ok(shares) = spire_crypto::erasure::encode(chunk, k, n) else {
                continue;
            };
            let share = &shares[self.me.0 as usize];
            let mut data = share.data.clone();
            if corrupt {
                for b in &mut data {
                    *b ^= 0xA5;
                }
            }
            let msg = PrimeMsg::StateChunk {
                replica: self.me,
                checkpoint_seq: seq,
                chunk: i as u32,
                share_index: share.index,
                share: Bytes::from(data),
            };
            self.send_to(ctx, to, &msg);
        }
    }

    /// A requester re-asking alternate responders for chunks it is still
    /// missing. Serve only from the matching stable checkpoint.
    fn on_state_chunk_req(
        &mut self,
        ctx: &mut Context<'_>,
        from: ReplicaId,
        checkpoint_seq: u64,
        chunks: &[u32],
    ) {
        if from.0 >= self.cfg.n || from == self.me || chunks.len() > 512 {
            return;
        }
        let Some((seq, snapshot, _)) = self.stable_checkpoint.clone() else {
            return;
        };
        if seq != checkpoint_seq {
            return;
        }
        self.send_chunk_shares(ctx, from, seq, &snapshot, Some(chunks));
    }

    /// A state-transfer manifest from one responder. Unsigned: instead,
    /// the layout is tallied by its digest and pinned only once `f + 1`
    /// distinct responders sent byte-identical manifests, and the
    /// embedded checkpoint proof must carry `f + 1` valid signatures
    /// over one snapshot digest.
    #[allow(clippy::too_many_arguments)]
    fn on_state_meta(
        &mut self,
        ctx: &mut Context<'_>,
        from: ReplicaId,
        checkpoint_seq: u64,
        erasure_k: u8,
        chunk_size: u32,
        total_len: u64,
        chunk_digests: Vec<Digest>,
        proof: Vec<CheckpointMsg>,
        requester_po_high: u64,
        requester_sseq_high: u64,
    ) {
        if from.0 >= self.cfg.n || from == self.me {
            return;
        }
        if !self.recovering && checkpoint_seq <= self.last_executed {
            return;
        }
        if let Some(t) = &self.transfer {
            if t.checkpoint_seq >= checkpoint_seq {
                return; // already pinned this (or a newer) transfer
            }
        }
        // Layout sanity before any allocation is charged to this claim.
        let expected = (total_len as usize).div_ceil((chunk_size as usize).max(1));
        if erasure_k == 0
            || erasure_k as u32 > self.cfg.n
            || chunk_size == 0
            || chunk_digests.len() != expected
            || expected > u16::MAX as usize
        {
            ctx.count(self.metric("bad_state_meta"), 1);
            return;
        }
        // Validate the proof: f+1 distinct valid signatures over one
        // snapshot digest at this sequence.
        let mut tallies: BTreeMap<Digest, BTreeSet<u32>> = BTreeMap::new();
        for attestation in &proof {
            if attestation.seq != checkpoint_seq || attestation.replica.0 >= self.cfg.n {
                continue;
            }
            ctx.count(self.metric("verify_ops"), 1);
            if attestation.verify(&self.keystore, self.cfg.replica_key_base, self.mock()) {
                tallies
                    .entry(attestation.digest)
                    .or_default()
                    .insert(attestation.replica.0);
            }
        }
        let needed = (self.cfg.f + 1) as usize;
        let Some(snapshot_digest) = tallies
            .iter()
            .find(|(_, set)| set.len() >= needed)
            .map(|(d, _)| *d)
        else {
            ctx.count(self.metric("bad_state_proof"), 1);
            return;
        };
        // Key the candidate by a digest over the complete layout, so a
        // lying responder cannot merge its vote with a correct one's.
        let mut w = WireWriter::new();
        w.u64(checkpoint_seq)
            .raw(&snapshot_digest)
            .u8(erasure_k)
            .u32(chunk_size)
            .u64(total_len);
        for d in &chunk_digests {
            w.raw(d);
        }
        let key = spire_crypto::digest(&w.finish());
        if !self.meta_votes.contains_key(&key) && self.meta_votes.len() >= META_CANDIDATE_CAP {
            // Evict the candidate for the oldest checkpoint to stay bounded.
            if let Some(victim) = self
                .meta_votes
                .iter()
                .min_by_key(|(_, c)| c.checkpoint_seq)
                .map(|(k, _)| *k)
            {
                self.meta_votes.remove(&victim);
                ctx.count(self.metric("state_accums_evicted"), 1);
            }
        }
        let entry = self.meta_votes.entry(key).or_insert_with(|| MetaCandidate {
            checkpoint_seq,
            snapshot_digest,
            erasure_k,
            chunk_size,
            total_len,
            chunk_digests,
            proof,
            po_high: 0,
            sseq_high: 0,
            voters: BTreeSet::new(),
        });
        entry.voters.insert(from.0);
        entry.po_high = entry.po_high.max(requester_po_high);
        entry.sseq_high = entry.sseq_high.max(requester_sseq_high);
        self.accum_touched = ctx.now();
        if entry.voters.len() >= needed {
            self.pin_transfer(ctx, key);
        }
    }

    /// Promotes a quorum-backed manifest candidate to the active transfer,
    /// drains any early-stashed shares into it and starts the retry timer.
    fn pin_transfer(&mut self, ctx: &mut Context<'_>, key: Digest) {
        let Some(c) = self.meta_votes.remove(&key) else {
            return;
        };
        self.meta_votes.clear();
        let mut t = ChunkTransfer {
            checkpoint_seq: c.checkpoint_seq,
            snapshot_digest: c.snapshot_digest,
            erasure_k: c.erasure_k,
            chunk_size: c.chunk_size,
            total_len: c.total_len,
            chunk_digests: c.chunk_digests,
            proof: c.proof,
            po_high: c.po_high,
            sseq_high: c.sseq_high,
            chunks: BTreeMap::new(),
            shares: BTreeMap::new(),
            backoff: self.cfg.chunk_retry_timeout,
            retry_rotor: 0,
            retries: 0,
        };
        let early = std::mem::take(&mut self.early_shares);
        for ((seq, chunk, idx), data) in early {
            if seq == t.checkpoint_seq && (chunk as usize) < t.chunk_digests.len() {
                t.shares.entry(chunk).or_default().insert(idx, data);
            }
        }
        let pending: Vec<u32> = t.shares.keys().copied().collect();
        self.transfer = Some(t);
        self.accum_touched = ctx.now();
        for chunk in pending {
            self.try_reconstruct_chunk(ctx, chunk);
        }
        if !self.chunk_timer_armed {
            self.chunk_timer_armed = true;
            ctx.set_timer(self.cfg.chunk_retry_timeout, TIMER_CHUNK);
        }
        self.maybe_finalize_transfer(ctx);
    }

    /// One erasure share of one chunk from one responder.
    fn on_state_chunk(
        &mut self,
        ctx: &mut Context<'_>,
        from: ReplicaId,
        checkpoint_seq: u64,
        chunk: u32,
        share_index: u8,
        share: Bytes,
    ) {
        if from.0 >= self.cfg.n || share_index as u32 >= self.cfg.n {
            return;
        }
        if !self.recovering && checkpoint_seq <= self.last_executed {
            return;
        }
        match &mut self.transfer {
            Some(t) if t.checkpoint_seq == checkpoint_seq => {
                if t.chunks.contains_key(&chunk) || chunk as usize >= t.chunk_digests.len() {
                    return;
                }
                // A share is never larger than the chunk it codes (plus
                // the erasure length frame).
                if share.len() > t.chunk_size as usize + 64 {
                    return;
                }
                t.shares
                    .entry(chunk)
                    .or_default()
                    .insert(share_index, share.to_vec());
                self.accum_touched = ctx.now();
                self.try_reconstruct_chunk(ctx, chunk);
                self.maybe_finalize_transfer(ctx);
            }
            _ => {
                // Stash ahead of the manifest pin (bounded): responders
                // stream manifest + shares back to back and links reorder.
                if share.len() > self.cfg.state_chunk_bytes.max(1) + 64 {
                    return;
                }
                if self.early_shares.len() < EARLY_SHARE_CAP {
                    self.early_shares
                        .insert((checkpoint_seq, chunk, share_index), share.to_vec());
                    self.accum_touched = ctx.now();
                }
            }
        }
    }

    /// Attempts to reconstruct one chunk from the collected shares: tries
    /// combinations of `k` shares (bounded search) until one decodes to
    /// the pinned per-chunk digest. Corrupt shares from Byzantine
    /// responders fail the digest check and other subsets are tried.
    fn try_reconstruct_chunk(&mut self, ctx: &mut Context<'_>, chunk: u32) {
        let Some(t) = &mut self.transfer else {
            return;
        };
        let k = t.erasure_k as usize;
        let Some(pool) = t.shares.get(&chunk) else {
            return;
        };
        if pool.len() < k {
            return;
        }
        let want = t.chunk_digests[chunk as usize];
        let shares: Vec<spire_crypto::erasure::Share> = pool
            .iter()
            .map(|(idx, data)| spire_crypto::erasure::Share {
                index: *idx,
                data: data.clone(),
            })
            .collect();
        let m = shares.len().min(16); // responders are replicas: small
        let mut attempts = 0;
        let mut found: Option<Vec<u8>> = None;
        for mask in 0u32..(1 << m) {
            if mask.count_ones() as usize != k {
                continue;
            }
            attempts += 1;
            if attempts > 256 {
                break;
            }
            let subset: Vec<spire_crypto::erasure::Share> = (0..m)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| shares[i].clone())
                .collect();
            if let Ok(candidate) = spire_crypto::erasure::decode(&subset, k) {
                if spire_crypto::digest(&candidate) == want {
                    found = Some(candidate);
                    break;
                }
            }
        }
        match found {
            Some(data) => {
                t.chunks.insert(chunk, data);
                t.shares.remove(&chunk);
                ctx.count(self.metric("recovery_chunks"), 1);
            }
            None => {
                ctx.count(self.metric("state_reconstruct_pending"), 1);
            }
        }
    }

    /// Once every chunk reconstructed, reassemble the snapshot, check it
    /// against the proven digest and install it.
    fn maybe_finalize_transfer(&mut self, ctx: &mut Context<'_>) {
        let done = self
            .transfer
            .as_ref()
            .is_some_and(|t| t.chunks.len() == t.chunk_digests.len());
        if !done {
            return;
        }
        let t = self.transfer.take().expect("checked above");
        self.meta_votes.clear();
        self.early_shares.clear();
        let mut snapshot = Vec::with_capacity(t.total_len as usize);
        for data in t.chunks.into_values() {
            snapshot.extend_from_slice(&data);
        }
        if snapshot.len() as u64 != t.total_len
            || spire_crypto::digest(&snapshot) != t.snapshot_digest
        {
            // With at most f Byzantine replicas, f+1 matching manifests pin
            // a correct layout; a whole-snapshot mismatch here means the
            // pin itself was forged — drop everything and retry fresh.
            ctx.count(self.metric("bad_state_snapshot"), 1);
            return;
        }
        let checkpoint_seq = t.checkpoint_seq;
        if checkpoint_seq <= self.last_executed {
            return;
        }
        if !self.restore_execution_snapshot(&snapshot) {
            ctx.count(self.metric("bad_state_snapshot"), 1);
            return;
        }
        let snapshot = Bytes::from(snapshot);
        self.last_executed = checkpoint_seq;
        self.commit_aru = self.commit_aru.max(checkpoint_seq);
        self.last_proposed = self.last_proposed.max(checkpoint_seq);
        self.missing.clear();
        self.stable_checkpoint = Some((checkpoint_seq, snapshot, t.proof));
        self.stable_exec_cover = self.exec_cover.clone();
        self.po_aru = self.exec_cover.clone();
        self.last_summary_vector = AruVector(self.po_aru.clone());
        if self.recovering {
            // Resume origination past any sequence peers have seen from us,
            // so fresh PO-Requests do not collide with pre-recovery
            // certificates. (The local ARU is *not* bumped: we only claim
            // what we can re-certify; peers' summaries cover the rest.)
            self.my_po_seq = self.my_po_seq.max(t.po_high);
            self.my_sseq = self.my_sseq.max(t.sseq_high);
            self.recovering = false;
            ctx.count(self.metric("recovery_completed"), 1);
            ctx.observe(
                self.metric("recovery_duration_us"),
                ctx.now().since(self.recovery_started).0,
            );
            ctx.trace(TraceKind::RecoveryDone { replica: self.me.0 });
            self.publish_recovering(false);
        }
        self.garbage_collect(ctx, checkpoint_seq);
        self.try_execute(ctx);
    }

    /// Publishes the recovering flag to the inspection registry so the
    /// invariant checker and health engine can tell an announced recovery
    /// from silence or attack.
    fn publish_recovering(&self, recovering: bool) {
        if let Some(inspection) = &self.inspection {
            inspection.update(self.me.0, move |rec| rec.recovering = recovering);
        }
    }

    fn on_suffix_vote(&mut self, ctx: &mut Context<'_>, from: ReplicaId, seq: u64, matrix: Matrix) {
        if seq <= self.last_executed || from.0 >= self.cfg.n {
            return;
        }
        let digest = matrix.digest();
        let entry = self
            .suffix_votes
            .entry((seq, digest))
            .or_insert_with(|| (matrix, BTreeSet::new()));
        entry.1.insert(from.0);
        if entry.1.len() >= (self.cfg.f + 1) as usize && !self.committed_matrices.contains_key(&seq)
        {
            let matrix = entry.0.clone();
            self.committed_matrices.insert(seq, matrix);
            self.advance_commit_aru(ctx);
        }
    }

    /// Actively repairs certification holes in the pre-order layer.
    ///
    /// A PO-Request and its acks are each sent once, but the overlay gives
    /// up on a frame after bounded retransmission, so an attack window can
    /// permanently lose either direction. The per-origin certification aru
    /// is contiguous, so one lost entry wedges it forever: summary vectors
    /// stop changing, leaders stop proposing (or propose identical
    /// matrices), and ordering starves even after the network heals —
    /// execution-driven reconciliation never fires because the hole never
    /// reaches a committed matrix. Two complementary retries, both driven
    /// from the recon tick and both quiet in steady state:
    ///
    /// - the *origin* re-broadcasts its own oldest still-uncertified
    ///   requests (receivers re-ack duplicates of uncertified entries, so
    ///   this regenerates lost acks too);
    /// - everyone else recon-requests the first certification gap per
    ///   origin once the gap has survived two ticks (repairs a hole that
    ///   some peer has already certified when the origin's retry cannot
    ///   reach us directly).
    fn retry_uncertified_po(&mut self, ctx: &mut Context<'_>) {
        let me = self.me.0;
        let mut frames = Vec::new();
        for s in (self.po_aru[me as usize] + 1)..=self.my_po_seq {
            if frames.len() >= 8 {
                break;
            }
            if let Some(entry) = self.po.get(&(me, s)) {
                if entry.certified.is_none() {
                    if let Some((_, _, raw)) = &entry.content {
                        frames.push(raw.clone());
                    }
                }
            }
        }
        if !frames.is_empty() {
            ctx.count(self.metric("po_retries"), frames.len() as u64);
            for frame in frames {
                for r in 0..self.cfg.n {
                    if r != me {
                        self.net_send(ctx, ReplicaId(r), frame.clone());
                    }
                }
            }
        }
        let n = self.cfg.n;
        for origin in 0..n {
            if origin == me {
                continue;
            }
            let aru = self.po_aru[origin as usize];
            let stuck =
                aru < self.po_high[origin as usize] && aru == self.po_gap_snapshot[origin as usize];
            if stuck {
                let req = PrimeMsg::ReconReq {
                    replica: self.me,
                    origin: ReplicaId(origin),
                    po_seq: aru + 1,
                };
                for offset in 1..=2u32 {
                    let target = (me + origin + offset * (self.recon_rotor % n + 1)) % n;
                    if target != me {
                        self.send_to(ctx, ReplicaId(target), &req);
                    }
                }
                ctx.count(self.metric("po_gap_recon"), 1);
            }
            self.po_gap_snapshot[origin as usize] = aru;
        }
    }

    fn on_recon_req(&mut self, ctx: &mut Context<'_>, from: ReplicaId, origin: u32, po_seq: u64) {
        let Some(entry) = self.po.get(&(origin, po_seq)) else {
            return;
        };
        let Some((digest, _, raw)) = &entry.content else {
            return;
        };
        if entry.certified.as_ref() != Some(digest) {
            return;
        }
        if from.0 >= self.cfg.n || from == self.me {
            return;
        }
        // Forward the origin's original signed PO-Request plus the stored
        // pre-order certificate (signed acks), so even a requester with no
        // prior state can re-certify and execute.
        let frames: Vec<Bytes> = std::iter::once(raw.clone())
            .chain(
                entry
                    .acks
                    .get(digest)
                    .into_iter()
                    .flat_map(|m| m.values().cloned()),
            )
            .collect();
        for frame in frames {
            self.net_send(ctx, from, frame);
        }
    }

    // ================= suspect-leader & view changes =================

    fn check_turnaround(&mut self, ctx: &mut Context<'_>, tat_us: f64) {
        if self.cfg.mode != ProtocolMode::Prime || self.in_view_change {
            return;
        }
        let leader = self.cfg.leader_of(self.view);
        let Some(rtt) = self.rtt_us.get(&leader.0).copied() else {
            return;
        };
        let allowed = self.cfg.tat_allowance * (rtt + 2.0 * self.cfg.pre_prepare_interval.0 as f64);
        ctx.record(self.metric("tat_ms"), tat_us / 1000.0);
        if tat_us > allowed {
            self.suspect_current_view(ctx);
        }
    }

    fn suspect_current_view(&mut self, ctx: &mut Context<'_>) {
        if self.suspected_views.contains(&self.view) {
            return;
        }
        self.suspected_views.insert(self.view);
        let mut msg = PrimeMsg::Suspect {
            replica: self.me,
            view: self.view,
            sig: [0; 64],
        };
        self.sign_msg(ctx, &mut msg);
        self.suspects
            .entry(self.view)
            .or_default()
            .insert(self.me.0);
        ctx.count(self.metric("suspects_sent"), 1);
        ctx.trace(TraceKind::SuspectLeader {
            replica: self.me.0,
            view: self.view,
        });
        self.broadcast(ctx, &msg);
        self.check_suspect_quorum(ctx);
    }

    /// Re-broadcasts the current view's change artifacts: our Suspect,
    /// our ViewState while the change is in flight, and — from a new
    /// leader already holding a state quorum — the NewView itself. Every
    /// one of those messages is otherwise sent exactly once; a loss
    /// window that swallows them (site DoS, disconnection) would leave
    /// all replicas waiting forever on a quorum that can no longer form.
    /// Receivers treat each as an idempotent set-insert, so resending is
    /// safe.
    fn rebroadcast_view_change(&mut self, ctx: &mut Context<'_>) {
        let mut suspect = PrimeMsg::Suspect {
            replica: self.me,
            view: self.view,
            sig: [0; 64],
        };
        self.sign_msg(ctx, &mut suspect);
        self.broadcast(ctx, &suspect);
        if self.in_view_change {
            let own_state = self
                .view_states
                .get(&self.view)
                .and_then(|m| m.get(&self.me.0))
                .cloned();
            if let Some(state) = own_state {
                self.broadcast(ctx, &PrimeMsg::ViewState(state));
            }
        } else if self.cfg.leader_of(self.view) == self.me {
            let quorum = self.cfg.ordering_quorum();
            if let Some(states) = self.view_states.get(&self.view) {
                if states.len() >= quorum {
                    let states: Vec<ViewStateMsg> = states.values().cloned().collect();
                    let mut msg = PrimeMsg::NewView {
                        view: self.view,
                        states,
                        sig: [0; 64],
                    };
                    self.sign_msg(ctx, &mut msg);
                    self.broadcast(ctx, &msg);
                }
            }
        }
        ctx.count(self.metric("vc_rebroadcasts"), 1);
    }

    fn on_suspect(&mut self, ctx: &mut Context<'_>, msg: &PrimeMsg, replica: ReplicaId, view: u64) {
        if replica.0 >= self.cfg.n || view < self.view {
            return;
        }
        if !self.verify_replica_msg(ctx, msg, replica, None) {
            return;
        }
        self.suspects.entry(view).or_default().insert(replica.0);
        self.check_suspect_quorum(ctx);
    }

    fn check_suspect_quorum(&mut self, ctx: &mut Context<'_>) {
        let quorum = self.cfg.suspect_quorum();
        let target = self
            .suspects
            .iter()
            .filter(|(v, set)| **v >= self.view && set.len() >= quorum)
            .map(|(v, _)| *v)
            .max();
        if let Some(v) = target {
            self.enter_view(ctx, v + 1);
        }
    }

    fn enter_view(&mut self, ctx: &mut Context<'_>, new_view: u64) {
        if new_view <= self.view && self.in_view_change {
            return;
        }
        if new_view < self.view {
            return;
        }
        self.view = new_view;
        self.publish_view();
        self.in_view_change = true;
        self.view_entered_at = ctx.now();
        self.timeout_backoff = (self.timeout_backoff * 2).min(8);
        self.outstanding_summary = None;
        ctx.count(self.metric("view_changes"), 1);
        ctx.trace(TraceKind::ViewChange {
            replica: self.me.0,
            view: new_view,
        });
        // Report state for the new view: every prepared sequence above the
        // committed prefix (bounded by the proposal window), lowest first.
        // Any one of them may have gathered a commit quorum at a replica
        // outside the eventual state quorum, so none can be omitted.
        let prepared: Vec<PreparedClaim> = self
            .slots
            .iter()
            .filter(|(s, slot)| **s > self.commit_aru && slot.prepared)
            .filter_map(|(s, slot)| {
                slot.pre_prepare.as_ref().map(|(v, m, _)| PreparedClaim {
                    view: *v,
                    seq: *s,
                    matrix: m.clone(),
                })
            })
            .collect();
        let mut state = ViewStateMsg {
            replica: self.me,
            view: new_view,
            last_committed: self.commit_aru,
            prepared,
            sig: [0; 64],
        };
        ctx.count(self.metric("sign_ops"), 1);
        let bytes = state.signing_bytes();
        state.sig = self.signer.sign64(&bytes);
        self.view_states
            .entry(new_view)
            .or_default()
            .insert(self.me.0, state.clone());
        self.broadcast(ctx, &PrimeMsg::ViewState(state));
        self.maybe_install_view(ctx);
    }

    fn on_view_state(&mut self, ctx: &mut Context<'_>, state: ViewStateMsg) {
        if state.replica.0 >= self.cfg.n || state.view < self.view {
            return;
        }
        ctx.count(self.metric("verify_ops"), 1);
        if !state.verify(&self.keystore, self.cfg.replica_key_base, self.mock()) {
            return;
        }
        self.view_states
            .entry(state.view)
            .or_default()
            .insert(state.replica.0, state.clone());
        // Seeing a quorum of view states for a higher view means a view
        // change is in progress; join it.
        let quorum = self.cfg.ordering_quorum();
        if state.view > self.view
            && self
                .view_states
                .get(&state.view)
                .map(|m| m.len() >= quorum)
                .unwrap_or(false)
        {
            self.enter_view(ctx, state.view);
        }
        self.maybe_install_view(ctx);
    }

    /// The new leader installs the view once it holds a quorum of states.
    fn maybe_install_view(&mut self, ctx: &mut Context<'_>) {
        if !self.in_view_change || self.cfg.leader_of(self.view) != self.me {
            return;
        }
        let quorum = self.cfg.ordering_quorum();
        let Some(states) = self.view_states.get(&self.view) else {
            return;
        };
        if states.len() < quorum {
            return;
        }
        let states: Vec<ViewStateMsg> = states.values().cloned().collect();
        let mut msg = PrimeMsg::NewView {
            view: self.view,
            states: states.clone(),
            sig: [0; 64],
        };
        self.sign_msg(ctx, &mut msg);
        self.broadcast(ctx, &msg);
        self.apply_new_view(ctx, self.view, &states);
    }

    fn on_new_view(&mut self, ctx: &mut Context<'_>, msg: &PrimeMsg) {
        let PrimeMsg::NewView { view, states, .. } = msg else {
            return;
        };
        let view = *view;
        if view < self.view {
            return;
        }
        let leader = self.cfg.leader_of(view);
        if !self.verify_replica_msg(ctx, msg, leader, None) {
            return;
        }
        // Validate the quorum of states.
        let mock = self.mock();
        let mut signers = BTreeSet::new();
        for state in states {
            if state.view != view || state.replica.0 >= self.cfg.n {
                continue;
            }
            ctx.count(self.metric("verify_ops"), 1);
            if state.verify(&self.keystore, self.cfg.replica_key_base, mock) {
                signers.insert(state.replica.0);
            }
        }
        if signers.len() < self.cfg.ordering_quorum() {
            ctx.count(self.metric("bad_new_view"), 1);
            return;
        }
        if view > self.view {
            self.view = view;
            self.publish_view();
            self.in_view_change = true;
        }
        self.apply_new_view(ctx, view, states);
    }

    /// Deterministically derives the reproposal plan from a state quorum and
    /// installs the view.
    fn apply_new_view(&mut self, ctx: &mut Context<'_>, view: u64, states: &[ViewStateMsg]) {
        let (base, reproposals) = plan_new_view(states);
        let top = reproposals.last().map(|(s, _)| *s).unwrap_or(base);
        // Reset ordering state above the committed prefix.
        let commit_aru = self.commit_aru;
        self.slots
            .retain(|s, slot| *s <= commit_aru || slot.committed);
        self.in_view_change = false;
        self.last_proposed = top.max(self.commit_aru);
        self.last_progress = ctx.now();
        // Re-propose prepared matrices (and explicit no-ops for holes).
        for (seq, matrix) in reproposals {
            self.accept_pre_prepare(ctx, view, seq, matrix);
        }
        ctx.count(self.metric("views_installed"), 1);
        self.replay_stashed_pps(ctx);
    }

    /// Replays pre-prepares that overtook the view installation (see
    /// `stashed_pps`), and prunes entries the installed view obsoleted.
    fn replay_stashed_pps(&mut self, ctx: &mut Context<'_>) {
        if self.stashed_pps.is_empty() || self.in_view_change {
            return;
        }
        let view = self.view;
        self.stashed_pps.retain(|(v, _), _| *v >= view);
        let ready: Vec<(u64, u64)> = self
            .stashed_pps
            .range((view, 0)..=(view, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        for key in ready {
            if let Some(matrix) = self.stashed_pps.remove(&key) {
                self.accept_pre_prepare(ctx, key.0, key.1, matrix);
            }
        }
    }

    /// Records that `replica` operates in `view`; if a quorum of f+k+1
    /// replicas claim a higher view than ours, adopt it (we were left
    /// behind by a view change we missed, e.g. during recovery).
    fn note_claimed_view(&mut self, ctx: &mut Context<'_>, replica: ReplicaId, view: u64) {
        let entry = self.claimed_views.entry(replica.0).or_insert(0);
        *entry = (*entry).max(view);
        let mut views: Vec<u64> = self.claimed_views.values().copied().collect();
        views.sort_unstable_by(|a, b| b.cmp(a));
        let quorum = self.cfg.suspect_quorum();
        if views.len() >= quorum {
            let joinable = views[quorum - 1];
            // Prepare/Commit messages only flow in *installed* views, so a
            // quorum of them proves the view is active: join it directly.
            if joinable > self.view || (joinable == self.view && self.in_view_change) {
                self.view = joinable;
                self.publish_view();
                self.in_view_change = false;
                self.outstanding_summary = None;
                self.replay_stashed_pps(ctx);
            }
        }
    }

    fn on_ping(&mut self, ctx: &mut Context<'_>, replica: ReplicaId, nonce: u64) {
        let pong = PrimeMsg::Pong {
            replica: self.me,
            nonce,
        };
        self.send_to(ctx, replica, &pong);
    }

    fn on_pong(&mut self, ctx: &mut Context<'_>, replica: ReplicaId, nonce: u64) {
        if let Some((target, sent)) = self.outstanding_pings.remove(&nonce) {
            if target == replica.0 {
                let rtt = ctx.now().since(sent).0 as f64;
                let entry = self.rtt_us.entry(replica.0).or_insert(rtt);
                *entry = 0.8 * *entry + 0.2 * rtt;
            }
        }
    }

    fn work_pending(&self) -> bool {
        if !self.pending_ops.is_empty() || !self.missing.is_empty() {
            return true;
        }
        // Any certified-but-unexecuted pre-ordered requests (ours or ones
        // other replicas report)?
        let local = (0..self.n()).any(|i| self.po_aru[i] > self.exec_cover[i]);
        let reported = self.latest_rows.values().any(|row| {
            row.vector
                .0
                .iter()
                .zip(self.exec_cover.iter())
                .any(|(aru, cover)| aru > cover)
        });
        local || reported
    }

    /// A 64-bit digest over the protocol-relevant state, used by the
    /// schedule explorer (`crates/explore`) to deduplicate interleavings:
    /// two cluster states whose replicas all hash equal behave identically
    /// on every future input, so only one needs exploring. A hash
    /// collision merely prunes one branch (coverage loss, never a false
    /// violation).
    ///
    /// Deliberately excluded: the verify/op/row caches and batch signer
    /// (pure performance state), RTT estimates and outstanding pings (the
    /// explorer never fires ping timers), and metric bookkeeping.
    pub fn state_digest(&self) -> u64 {
        let mut h = StateHasher::new();
        h.u64(self.me.0 as u64)
            .u64(self.view)
            .flag(self.in_view_change)
            .u64(self.view_entered_at.0)
            .u64(self.timeout_backoff)
            .u64(self.last_progress.0)
            .u64(self.my_po_seq)
            .u64(self.my_sseq)
            .u64(self.last_proposed)
            .u64(self.commit_aru)
            .u64(self.last_executed)
            .u64(self.max_seen_commit)
            .flag(self.recovering)
            .u64(self.total_ops)
            .raw(&self.exec_chain_head);
        for v in self
            .po_aru
            .iter()
            .chain(&self.exec_cover)
            .chain(&self.po_high)
            .chain(&self.sseq_high)
        {
            h.u64(*v);
        }
        for op in &self.pending_ops {
            h.u64(op.client.0 as u64).u64(op.cseq).raw(&op.payload);
        }
        for (client, window) in &self.seen_ops {
            h.u64(*client as u64).u64(window.floor());
            for s in window.sparse() {
                h.u64(s);
            }
        }
        for ((origin, po_seq), entry) in &self.po {
            h.u64(*origin as u64).u64(*po_seq);
            match &entry.content {
                Some((digest, _, _)) => h.raw(digest),
                None => h.u64(0),
            };
            match &entry.acked {
                Some(digest) => h.raw(digest),
                None => h.u64(0),
            };
            match &entry.certified {
                Some(digest) => h.raw(digest),
                None => h.u64(0),
            };
            for (digest, votes) in &entry.acks {
                h.raw(digest);
                for voter in votes.keys() {
                    h.u64(*voter as u64);
                }
            }
        }
        for (replica, row) in &self.latest_rows {
            h.u64(*replica as u64).u64(row.sseq);
            for v in &row.vector.0 {
                h.u64(*v);
            }
        }
        for v in &self.last_summary_vector.0 {
            h.u64(*v);
        }
        match &self.outstanding_summary {
            Some((sseq, sent)) => h.u64(*sseq).u64(sent.0),
            None => h.u64(0),
        };
        for (seq, slot) in &self.slots {
            h.u64(*seq).flag(slot.prepared).flag(slot.committed);
            match &slot.pre_prepare {
                Some((view, _, digest)) => h.u64(*view).raw(digest),
                None => h.u64(0),
            };
            for (r, d) in &slot.prepares {
                h.u64(*r as u64).raw(d);
            }
            for (r, d) in &slot.commits {
                h.u64(*r as u64).raw(d);
            }
        }
        for (seq, matrix) in &self.committed_matrices {
            h.u64(*seq).raw(&matrix.digest());
        }
        for (client, window) in &self.executed_cseq {
            h.u64(*client as u64).u64(window.floor());
            for s in window.sparse() {
                h.u64(s);
            }
        }
        for (view, set) in &self.suspects {
            h.u64(*view);
            for r in set {
                h.u64(*r as u64);
            }
        }
        for view in &self.suspected_views {
            h.u64(*view);
        }
        for (view, states) in &self.view_states {
            h.u64(*view);
            for r in states.keys() {
                h.u64(*r as u64);
            }
        }
        for (r, view) in &self.claimed_views {
            h.u64(*r as u64).u64(*view);
        }
        for (seq, votes) in &self.checkpoint_votes {
            h.u64(*seq);
            for r in votes.keys() {
                h.u64(*r as u64);
            }
        }
        match &self.stable_checkpoint {
            Some((seq, snapshot, _)) => h.u64(*seq).raw(snapshot),
            None => h.u64(0),
        };
        for seq in self.pending_snapshots.keys() {
            h.u64(*seq);
        }
        match &self.transfer {
            Some(t) => {
                h.u64(t.checkpoint_seq)
                    .u64(t.chunks.len() as u64)
                    .u64(t.retries);
                for (chunk, pool) in &t.shares {
                    h.u64(*chunk as u64);
                    for idx in pool.keys() {
                        h.u64(*idx as u64);
                    }
                }
            }
            None => {
                h.u64(0);
            }
        }
        for (key, c) in &self.meta_votes {
            h.raw(key);
            for voter in &c.voters {
                h.u64(*voter as u64);
            }
        }
        for (seq, chunk, idx) in self.early_shares.keys() {
            h.u64(*seq).u64(*chunk as u64).u64(*idx as u64);
        }
        for (origin, po_seq) in &self.missing {
            h.u64(*origin as u64).u64(*po_seq);
        }
        h.u64(self.recon_rotor as u64);
        for (at, bytes) in &self.delayed_proposals {
            h.u64(at.0).raw(bytes);
        }
        h.u64(self.outbox.len() as u64)
            .flag(self.batch_timer_armed)
            .raw(&self.app.digest());
        h.finish()
    }
}

/// Incremental FNV-1a over little-endian scalar encodings: fast, stable
/// across platforms, dependency-free. Used only for explorer state
/// deduplication, never for security.
struct StateHasher(u64);

impl StateHasher {
    fn new() -> StateHasher {
        StateHasher(0xcbf2_9ce4_8422_2325)
    }

    fn raw(&mut self, bytes: &[u8]) -> &mut StateHasher {
        for b in bytes {
            self.0 = (self.0 ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    fn u64(&mut self, v: u64) -> &mut StateHasher {
        self.raw(&v.to_le_bytes())
    }

    fn flag(&mut self, v: bool) -> &mut StateHasher {
        self.u64(u64::from(v))
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl Process for Replica {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.net.start(ctx);
        self.last_progress = ctx.now();
        ctx.set_timer(self.cfg.po_interval, TIMER_PO_FLUSH);
        ctx.set_timer(self.cfg.summary_interval, TIMER_SUMMARY);
        ctx.set_timer(self.cfg.pre_prepare_interval, TIMER_PRE_PREPARE);
        ctx.set_timer(self.cfg.ping_interval, TIMER_PING);
        ctx.set_timer(self.cfg.progress_timeout, TIMER_PROGRESS);
        ctx.set_timer(self.cfg.recon_interval, TIMER_RECON);
        if self.recovering {
            self.recovery_started = ctx.now();
            self.accum_touched = ctx.now();
            self.publish_recovering(true);
            ctx.trace(TraceKind::RecoveryStart { replica: self.me.0 });
            ctx.set_timer(Span::millis(10), TIMER_STATE_REQ);
        }
        self.flush_pending_votes(ctx);
        self.flush_links(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, bytes: &Bytes) {
        if self.behavior == ByzBehavior::Mute {
            return;
        }
        if let Some(payload) = self.net.unwrap(from, bytes) {
            // Per-link session authentication: a MAC-sealed frame proves
            // which peer sent it before any signature inside is decoded.
            if let Some((payload, link_auth)) = self.unseal(ctx, payload) {
                // A multi-frame container carries everything one peer
                // staged for us during a single activation, sealed once;
                // each subframe inherits the container's link auth.
                match msg::decode_multi(&payload) {
                    Ok(Some(frames)) => {
                        for frame in frames {
                            self.handle_frame(ctx, frame, link_auth);
                        }
                    }
                    Ok(None) => self.handle_frame(ctx, payload, link_auth),
                    Err(_) => ctx.count(self.metric("decode_fail"), 1),
                }
            }
        }
        self.flush_pending_votes(ctx);
        self.flush_links(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        if self.behavior == ByzBehavior::Mute {
            return;
        }
        self.handle_timer(ctx, tag);
        self.flush_pending_votes(ctx);
        self.flush_links(ctx);
    }
}

impl Replica {
    /// Decodes and dispatches one wire frame (already unsealed, possibly
    /// extracted from a multi-frame container).
    fn handle_frame(
        &mut self,
        ctx: &mut Context<'_>,
        payload: Bytes,
        link_auth: Option<ReplicaId>,
    ) {
        let Ok(frame) = msg::decode_frame(&payload) else {
            ctx.count(self.metric("decode_fail"), 1);
            return;
        };
        if self.recovering {
            // While recovering, only state transfer traffic is processed
            // (never batch-attested, so only plain frames matter).
            match frame {
                Frame::Plain(PrimeMsg::StateMeta {
                    replica,
                    checkpoint_seq,
                    erasure_k,
                    chunk_size,
                    total_len,
                    chunk_digests,
                    proof,
                    requester_po_high,
                    requester_sseq_high,
                    ..
                }) => self.on_state_meta(
                    ctx,
                    replica,
                    checkpoint_seq,
                    erasure_k,
                    chunk_size,
                    total_len,
                    chunk_digests,
                    proof,
                    requester_po_high,
                    requester_sseq_high,
                ),
                Frame::Plain(PrimeMsg::StateChunk {
                    replica,
                    checkpoint_seq,
                    chunk,
                    share_index,
                    share,
                }) => self.on_state_chunk(ctx, replica, checkpoint_seq, chunk, share_index, share),
                _ => {}
            }
            return;
        }
        // A batch-attested frame authenticates its enclosed message through
        // the sender's signed Merkle root; `env_auth` carries the proven
        // signer so handlers can skip the (zeroed) embedded signature. A
        // link MAC authenticates the whole frame as coming from its sealer,
        // so a plain frame claiming its sealer needs no signature check,
        // and a batch attestation whose signer IS the sealer needs no
        // root-signature verification (forwarded frames — sealer differs
        // from signer — still verify the attestation as before).
        let (msg, env_auth) = match frame {
            Frame::Plain(msg) => (msg, link_auth),
            Frame::Batched {
                signer,
                attestation,
                msg,
                msg_digest,
            } => {
                if signer.0 >= self.cfg.n {
                    ctx.count(self.metric("bad_batch_auth"), 1);
                    return;
                }
                if link_auth != Some(signer)
                    && !self.verify_batch_attestation(ctx, signer, &attestation, &msg_digest)
                {
                    ctx.count(self.metric("bad_batch_auth"), 1);
                    return;
                }
                (msg, Some(signer))
            }
        };
        match &msg {
            PrimeMsg::Op(op) => self.on_client_op(ctx, op.clone()),
            PrimeMsg::PoRequest { .. } => {
                self.accept_po_request(ctx, &msg, env_auth, Some(&payload))
            }
            PrimeMsg::PoAck {
                replica,
                origin,
                po_seq,
                digest,
                ..
            } => self.on_po_ack(
                ctx, &msg, *replica, *origin, *po_seq, *digest, env_auth, &payload,
            ),
            PrimeMsg::PoAckMulti {
                replica, entries, ..
            } => self.on_po_ack_multi(ctx, &msg, *replica, entries, env_auth, &payload),
            PrimeMsg::CommitMulti {
                replica,
                view,
                entries,
                ..
            } => self.on_commit_multi(ctx, &msg, *replica, *view, entries, env_auth),
            PrimeMsg::PoSummary(row) => self.on_summary(ctx, row.clone()),
            PrimeMsg::PrePrepare {
                view, seq, matrix, ..
            } => {
                let leader = self.cfg.leader_of(*view);
                if self.verify_replica_msg(ctx, &msg, leader, env_auth) {
                    self.accept_pre_prepare(ctx, *view, *seq, matrix.clone());
                } else {
                    ctx.count(self.metric("bad_preprepare_sig"), 1);
                }
            }
            PrimeMsg::Prepare {
                replica,
                view,
                seq,
                digest,
                ..
            } => self.on_prepare(ctx, &msg, *replica, *view, *seq, *digest, env_auth),
            PrimeMsg::Commit {
                replica,
                view,
                seq,
                digest,
                ..
            } => self.on_commit(ctx, &msg, *replica, *view, *seq, *digest, env_auth),
            PrimeMsg::Ping { replica, nonce } => self.on_ping(ctx, *replica, *nonce),
            PrimeMsg::Pong { replica, nonce } => self.on_pong(ctx, *replica, *nonce),
            PrimeMsg::Suspect { replica, view, .. } => self.on_suspect(ctx, &msg, *replica, *view),
            PrimeMsg::ViewState(state) => self.on_view_state(ctx, state.clone()),
            PrimeMsg::NewView { .. } => self.on_new_view(ctx, &msg),
            PrimeMsg::Checkpoint(m) => self.on_checkpoint(ctx, m.clone()),
            PrimeMsg::StateReq {
                replica, have_seq, ..
            } => self.on_state_req(ctx, &msg, *replica, *have_seq),
            // Legacy whole-snapshot transfer, superseded by the chunked
            // path; still decoded for wire compatibility, never acted on.
            PrimeMsg::StateResp { .. } => {}
            PrimeMsg::StateMeta {
                replica,
                checkpoint_seq,
                erasure_k,
                chunk_size,
                total_len,
                chunk_digests,
                proof,
                requester_po_high,
                requester_sseq_high,
                ..
            } => self.on_state_meta(
                ctx,
                *replica,
                *checkpoint_seq,
                *erasure_k,
                *chunk_size,
                *total_len,
                chunk_digests.clone(),
                proof.clone(),
                *requester_po_high,
                *requester_sseq_high,
            ),
            PrimeMsg::StateChunk {
                replica,
                checkpoint_seq,
                chunk,
                share_index,
                share,
            } => self.on_state_chunk(
                ctx,
                *replica,
                *checkpoint_seq,
                *chunk,
                *share_index,
                share.clone(),
            ),
            PrimeMsg::StateChunkReq {
                replica,
                checkpoint_seq,
                chunks,
            } => {
                let chunks = chunks.clone();
                self.on_state_chunk_req(ctx, *replica, *checkpoint_seq, &chunks)
            }
            PrimeMsg::SuffixVote {
                replica,
                seq,
                matrix,
            } => self.on_suffix_vote(ctx, *replica, *seq, matrix.clone()),
            PrimeMsg::ReconReq {
                replica,
                origin,
                po_seq,
            } => self.on_recon_req(ctx, *replica, origin.0, *po_seq),
            PrimeMsg::Reply { .. } | PrimeMsg::Notify { .. } => {}
        }
    }

    /// The periodic-timer body, wrapped by `on_timer` so staged votes and
    /// link batches flush once per activation.
    fn handle_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        match tag {
            TIMER_PO_FLUSH => {
                self.flush_po_batch(ctx);
                ctx.set_timer(self.cfg.po_interval, TIMER_PO_FLUSH);
            }
            TIMER_SUMMARY => {
                self.maybe_send_summary(ctx);
                ctx.set_timer(self.cfg.summary_interval, TIMER_SUMMARY);
            }
            TIMER_PRE_PREPARE => {
                // Release any delayed (attacked) proposals first.
                let now = ctx.now();
                let due: Vec<Bytes> = {
                    let (ready, later): (Vec<_>, Vec<_>) = self
                        .delayed_proposals
                        .drain(..)
                        .partition(|(at, _)| *at <= now);
                    self.delayed_proposals = later;
                    ready.into_iter().map(|(_, b)| b).collect()
                };
                for bytes in due {
                    if let Ok(PrimeMsg::PrePrepare {
                        view, seq, matrix, ..
                    }) = PrimeMsg::decode(&bytes)
                    {
                        self.accept_pre_prepare(ctx, view, seq, matrix);
                    }
                    for r in 0..self.cfg.n {
                        if r != self.me.0 {
                            self.net_send(ctx, ReplicaId(r), bytes.clone());
                        }
                    }
                }
                self.propose(ctx);
                ctx.set_timer(self.cfg.pre_prepare_interval, TIMER_PRE_PREPARE);
            }
            TIMER_PING => {
                if self.cfg.mode == ProtocolMode::Prime && !self.recovering {
                    for r in 0..self.cfg.n {
                        if r == self.me.0 {
                            continue;
                        }
                        self.ping_nonce += 1;
                        self.outstanding_pings
                            .insert(self.ping_nonce, (r, ctx.now()));
                        let ping = PrimeMsg::Ping {
                            replica: self.me,
                            nonce: self.ping_nonce,
                        };
                        self.send_to(ctx, ReplicaId(r), &ping);
                    }
                    // Cap the outstanding map.
                    while self.outstanding_pings.len() > 4 * self.n() {
                        let first = *self.outstanding_pings.keys().next().unwrap();
                        self.outstanding_pings.remove(&first);
                    }
                }
                ctx.set_timer(self.cfg.ping_interval, TIMER_PING);
            }
            TIMER_PROGRESS => {
                self.publish_ordering_health();
                let now = ctx.now();
                let timeout = Span::micros(self.cfg.progress_timeout.0 * self.timeout_backoff);
                // A view change that never completes (its new leader is
                // also faulty or unreachable) must itself time out, or the
                // whole cluster waits forever for a NewView that will never
                // come.
                let vc_stalled = self.in_view_change && now.since(self.view_entered_at) >= timeout;
                let ordering_stalled = !self.in_view_change
                    && self.work_pending()
                    && now.since(self.last_progress) >= timeout;
                if !self.recovering && (vc_stalled || ordering_stalled) {
                    if self.suspected_views.contains(&self.view) {
                        // Already suspected this view once: the one-shot
                        // Suspect (or our ViewState, or the leader's
                        // NewView) may have been lost to an attack
                        // window, and nobody else will resend it. A
                        // stall that persists past the timeout re-sends
                        // the artifacts instead of just re-detecting.
                        self.rebroadcast_view_change(ctx);
                    } else {
                        self.suspect_current_view(ctx);
                    }
                }
                // Check twice per timeout window so stalls are caught
                // promptly regardless of timer phase.
                ctx.set_timer(
                    Span::micros((self.cfg.progress_timeout.0 / 2).max(1)),
                    TIMER_PROGRESS,
                );
            }
            TIMER_RECON => {
                // A replica that fell far behind (partition, long outage)
                // catches up via state transfer instead of waiting forever.
                let exec_lag = self.commit_aru > self.last_executed + self.cfg.checkpoint_interval;
                if self.max_seen_commit > self.commit_aru + self.cfg.checkpoint_interval || exec_lag
                {
                    let mut req = PrimeMsg::StateReq {
                        replica: self.me,
                        have_seq: self.last_executed,
                        sig: [0; 64],
                    };
                    self.sign_msg(ctx, &mut req);
                    self.broadcast(ctx, &req);
                }
                // Fetch a bounded window of missing PO-Requests (execution
                // needs them in order anyway) from two rotating peers, so a
                // large catch-up cannot melt the network.
                let missing: Vec<(u32, u64)> = self.missing.iter().copied().take(32).collect();
                let n = self.cfg.n;
                for (i, (origin, po_seq)) in missing.into_iter().enumerate() {
                    let req = PrimeMsg::ReconReq {
                        replica: self.me,
                        origin: ReplicaId(origin),
                        po_seq,
                    };
                    for offset in 1..=2u32 {
                        let target =
                            (self.me.0 + i as u32 + offset * (self.recon_rotor % n + 1)) % n;
                        if target != self.me.0 {
                            self.send_to(ctx, ReplicaId(target), &req);
                        }
                    }
                }
                self.retry_uncertified_po(ctx);
                self.recon_rotor = self.recon_rotor.wrapping_add(1);
                self.try_execute(ctx);
                ctx.set_timer(self.cfg.recon_interval, TIMER_RECON);
            }
            TIMER_BATCH => {
                self.batch_timer_armed = false;
                self.flush_outbox(ctx);
            }
            tag => {
                self.on_slow_timer(ctx, tag);
            }
        }
    }
}

impl Replica {
    /// Rare timers (recovery state requests), split out so `on_timer` stays
    /// within the frequent-path match.
    fn on_slow_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        match tag {
            TIMER_STATE_REQ if self.recovering => {
                // If nobody has a checkpoint yet (young system), rejoin
                // from genesis; reconciliation certificates let us
                // replay everything that was ordered meanwhile. An active
                // chunked transfer defers the fallback: shares are
                // arriving, completion is a matter of retries.
                if ctx.now().since(self.recovery_started) >= self.cfg.recovery_genesis_timeout
                    && self.transfer.is_none()
                {
                    self.recovering = false;
                    self.meta_votes.clear();
                    self.early_shares.clear();
                    ctx.count(self.metric("recovery_from_genesis"), 1);
                    ctx.count(self.metric("recovery_completed"), 1);
                    ctx.trace(TraceKind::RecoveryDone { replica: self.me.0 });
                    self.publish_recovering(false);
                    return;
                }
                // Pre-pin accumulators that stopped making progress are
                // dropped; the fresh StateReq below re-solicits manifests.
                if ctx.now().since(self.accum_touched) >= self.cfg.state_accum_deadline
                    && (!self.meta_votes.is_empty() || !self.early_shares.is_empty())
                    && self.transfer.is_none()
                {
                    self.meta_votes.clear();
                    self.early_shares.clear();
                    ctx.count(self.metric("state_accums_evicted"), 1);
                }
                let mut req = PrimeMsg::StateReq {
                    replica: self.me,
                    have_seq: self.last_executed,
                    sig: [0; 64],
                };
                self.sign_msg(ctx, &mut req);
                self.broadcast(ctx, &req);
                ctx.set_timer(Span::millis(500), TIMER_STATE_REQ);
            }
            TIMER_CHUNK => {
                self.chunk_timer_armed = false;
                self.on_chunk_timer(ctx);
            }
            _ => {}
        }
    }

    /// Per-chunk retry tick: evicts a stalled transfer, otherwise
    /// re-requests the missing chunks from two rotating alternate
    /// responders with exponential backoff.
    fn on_chunk_timer(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let stalled = self.transfer.is_some()
            && now.since(self.accum_touched) >= self.cfg.state_accum_deadline;
        if stalled {
            // Stale or poisoned transfer: evict everything; TIMER_STATE_REQ
            // (recovering) or TIMER_RECON (catch-up) solicits fresh
            // manifests from scratch.
            self.transfer = None;
            self.meta_votes.clear();
            self.early_shares.clear();
            ctx.count(self.metric("state_accums_evicted"), 1);
            return;
        }
        let Some(t) = &mut self.transfer else {
            return;
        };
        let missing: Vec<u32> = (0..t.chunk_digests.len() as u32)
            .filter(|c| !t.chunks.contains_key(c))
            .take(256)
            .collect();
        if missing.is_empty() {
            return; // finalize already ran (or is about to)
        }
        t.retries += 1;
        t.retry_rotor = t.retry_rotor.wrapping_add(1);
        let delay = t.backoff;
        t.backoff = Span((t.backoff.0 * 2).min(self.cfg.chunk_retry_max.0));
        let rotor = t.retry_rotor;
        let seq = t.checkpoint_seq;
        ctx.count(self.metric("recovery_chunk_retries"), 1);
        let req = PrimeMsg::StateChunkReq {
            replica: self.me,
            checkpoint_seq: seq,
            chunks: missing,
        };
        // Two rotating alternates per round: one mute or corrupt responder
        // cannot stall the transfer, and the request load spreads.
        let n = self.cfg.n;
        if n > 1 {
            for offset in 0..2u32 {
                let slot = (rotor + offset) % (n - 1);
                let target = (self.me.0 + 1 + slot) % n;
                self.send_to(ctx, ReplicaId(target), &req);
            }
        }
        self.chunk_timer_armed = true;
        ctx.set_timer(delay, TIMER_CHUNK);
    }
}

/// Derives the deterministic view-change plan from a quorum of state
/// reports: the committed base and the (seq, matrix) reproposals preserving
/// every prepared matrix above it, highest-view claim winning per sequence,
/// with explicit empty matrices filling holes.
///
/// Every replica recomputes this from the same `NewView` quorum, so a
/// Byzantine new leader cannot silently drop a prepared matrix.
pub fn plan_new_view(states: &[ViewStateMsg]) -> (u64, Vec<(u64, Matrix)>) {
    let base = states.iter().map(|s| s.last_committed).max().unwrap_or(0);
    let mut claims: BTreeMap<u64, &PreparedClaim> = BTreeMap::new();
    for state in states {
        for claim in &state.prepared {
            if claim.seq > base {
                let better = claims
                    .get(&claim.seq)
                    .map(|existing| claim.view > existing.view)
                    .unwrap_or(true);
                if better {
                    claims.insert(claim.seq, claim);
                }
            }
        }
    }
    let top = claims.keys().max().copied().unwrap_or(base);
    let reproposals = ((base + 1)..=top)
        .map(|seq| {
            (
                seq,
                claims
                    .get(&seq)
                    .map(|c| c.matrix.clone())
                    .unwrap_or_default(),
            )
        })
        .collect();
    (base, reproposals)
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("me", &self.me)
            .field("view", &self.view)
            .field("commit_aru", &self.commit_aru)
            .field("last_executed", &self.last_executed)
            .field("recovering", &self.recovering)
            .finish()
    }
}
