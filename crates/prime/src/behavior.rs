//! Byzantine fault models used in tests, the red-team scenario suite and
//! the paper's attack experiments.

use spire_sim::Span;

/// How a (possibly compromised) replica deviates from the protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ByzBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Processes nothing (crash-like while the process stays up).
    Mute,
    /// When leader, delays every proposal by the given span — Prime's
    /// signature *performance attack*: throughput-preserving but
    /// latency-degrading, invisible to crash timeouts.
    LeaderDelay(Span),
    /// When leader, proposes conflicting matrices to different halves of
    /// the cluster (a safety attack; must be contained by quorums).
    Equivocate,
    /// Withholds all acknowledgements and votes (liveness attack).
    AckWithhold,
    /// As an originator, sends *different* PO-Request contents under the
    /// same sequence number to different halves of the cluster (an attempt
    /// to make correct replicas execute different operations; defeated by
    /// digest-certified pre-ordering).
    EquivocatePo,
    /// Executes corrupted operations, silently diverging its own state
    /// (caught end-to-end by `f + 1` matching replies).
    DivergentExec,
    /// Serves bit-flipped erasure shares during state transfer (an attack
    /// on recovering replicas; defeated by per-chunk digest checks plus
    /// retries against alternate responders).
    CorruptShares,
}

impl ByzBehavior {
    /// True for behaviours that count against the `f` budget.
    pub fn is_byzantine(&self) -> bool {
        !matches!(self, ByzBehavior::Honest)
    }
}
