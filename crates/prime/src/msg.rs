//! The Prime wire protocol: message types, canonical encoding, signatures.
//!
//! Every message is signed by its sender; receivers verify against the
//! deployment [`spire_crypto::KeyStore`] before acting. The canonical
//! signing bytes of each message are its encoding with the signature field
//! zeroed, so encode/decode and sign/verify share one code path.

use crate::config::{ClientId, ReplicaId};
use bytes::Bytes;
use spire_crypto::batch::BatchAttestation;
use spire_crypto::keys::{verify64, Signer};
use spire_crypto::{Digest, KeyStore, NodeId};
use spire_sim::{WireError, WireReader, WireWriter};

/// An operation submitted by a client, carried inside PO-Requests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientOp {
    /// Submitting client.
    pub client: ClientId,
    /// Client-local sequence number (for exactly-once execution).
    pub cseq: u64,
    /// Opaque application payload.
    pub payload: Bytes,
    /// Client's signature over (client, cseq, payload).
    pub sig: [u8; 64],
}

impl ClientOp {
    /// Creates and signs an op.
    pub fn signed(client: ClientId, cseq: u64, payload: Bytes, key: &Signer) -> ClientOp {
        let mut op = ClientOp {
            client,
            cseq,
            payload,
            sig: [0; 64],
        };
        op.sig = key.sign64(&op.signing_bytes());
        op
    }

    fn signing_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.raw(b"prime-op")
            .u32(self.client.0)
            .u64(self.cseq)
            .bytes(&self.payload);
        w.into_vec()
    }

    /// Verifies the client signature given the client's key-store id.
    pub fn verify(&self, keystore: &KeyStore, client_key_base: u32, mock: bool) -> bool {
        verify64(
            keystore,
            NodeId(client_key_base + self.client.0),
            &self.signing_bytes(),
            &self.sig,
            mock,
        )
    }

    /// A digest identifying this op.
    pub fn digest(&self) -> Digest {
        spire_crypto::digest(&self.encode())
    }

    fn write(&self, w: &mut WireWriter) {
        w.u32(self.client.0)
            .u64(self.cseq)
            .bytes(&self.payload)
            .raw(&self.sig);
    }

    fn read(r: &mut WireReader<'_>) -> Result<ClientOp, WireError> {
        Ok(ClientOp {
            client: ClientId(r.u32()?),
            cseq: r.u64()?,
            payload: Bytes::copy_from_slice(r.bytes()?),
            sig: r.array()?,
        })
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.write(&mut w);
        w.into_vec()
    }
}

/// A replica's cumulative pre-order acknowledgement vector: for each
/// originator, the highest contiguously pre-ordered sequence.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AruVector(pub Vec<u64>);

impl AruVector {
    /// Zero vector for `n` replicas.
    pub fn zeros(n: usize) -> AruVector {
        AruVector(vec![0; n])
    }

    fn write(&self, w: &mut WireWriter) {
        w.u16(self.0.len() as u16);
        for v in &self.0 {
            w.u64(*v);
        }
    }

    fn read(r: &mut WireReader<'_>) -> Result<AruVector, WireError> {
        let n = r.u16()? as usize;
        let mut v = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            v.push(r.u64()?);
        }
        Ok(AruVector(v))
    }
}

/// A signed PO-Summary row (also embedded in pre-prepare matrices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SummaryRow {
    /// Reporting replica.
    pub replica: ReplicaId,
    /// Monotone per-replica summary sequence.
    pub sseq: u64,
    /// The report.
    pub vector: AruVector,
    /// Signature by `replica`.
    pub sig: [u8; 64],
}

impl SummaryRow {
    /// Creates and signs a summary row.
    pub fn signed(replica: ReplicaId, sseq: u64, vector: AruVector, key: &Signer) -> SummaryRow {
        let mut row = SummaryRow {
            replica,
            sseq,
            vector,
            sig: [0; 64],
        };
        row.sig = key.sign64(&row.signing_bytes());
        row
    }

    fn signing_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.raw(b"prime-summary").u32(self.replica.0).u64(self.sseq);
        self.vector.write(&mut w);
        w.into_vec()
    }

    /// A digest identifying this row *including* its signature, used as a
    /// verification-cache key: two rows with identical content but
    /// different signature bytes hash differently, so a forged signature
    /// can never alias a cached verified row.
    pub fn cache_key(&self) -> Digest {
        let mut w = WireWriter::new();
        self.write(&mut w);
        spire_crypto::digest(w.as_slice())
    }

    /// Verifies the row signature.
    pub fn verify(&self, keystore: &KeyStore, replica_key_base: u32, mock: bool) -> bool {
        verify64(
            keystore,
            NodeId(replica_key_base + self.replica.0),
            &self.signing_bytes(),
            &self.sig,
            mock,
        )
    }

    fn write(&self, w: &mut WireWriter) {
        w.u32(self.replica.0).u64(self.sseq);
        self.vector.write(w);
        w.raw(&self.sig);
    }

    fn read(r: &mut WireReader<'_>) -> Result<SummaryRow, WireError> {
        Ok(SummaryRow {
            replica: ReplicaId(r.u32()?),
            sseq: r.u64()?,
            vector: AruVector::read(r)?,
            sig: r.array()?,
        })
    }
}

/// The ordered unit: a matrix of signed summary rows proposed by the leader.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Matrix {
    /// One row per reporting replica (at most one per replica id).
    pub rows: Vec<SummaryRow>,
}

impl Matrix {
    /// Canonical digest of the matrix.
    pub fn digest(&self) -> Digest {
        let mut w = WireWriter::new();
        self.write(&mut w);
        spire_crypto::digest(w.as_slice())
    }

    fn write(&self, w: &mut WireWriter) {
        w.u16(self.rows.len() as u16);
        for row in &self.rows {
            row.write(w);
        }
    }

    fn read(r: &mut WireReader<'_>) -> Result<Matrix, WireError> {
        let n = r.u16()? as usize;
        let mut rows = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            rows.push(SummaryRow::read(r)?);
        }
        Ok(Matrix { rows })
    }

    /// For originator column `i`, the highest value reported by at least
    /// `quorum` rows (0 if fewer than `quorum` rows).
    pub fn covered_aru(&self, origin: usize, quorum: usize) -> u64 {
        let mut column: Vec<u64> = self
            .rows
            .iter()
            .map(|row| row.vector.0.get(origin).copied().unwrap_or(0))
            .collect();
        if column.len() < quorum || quorum == 0 {
            return 0;
        }
        column.sort_unstable_by(|a, b| b.cmp(a));
        column[quorum - 1]
    }
}

/// A checkpoint attestation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointMsg {
    /// Attesting replica.
    pub replica: ReplicaId,
    /// Ordered sequence the checkpoint covers.
    pub seq: u64,
    /// Digest of the application snapshot plus execution metadata.
    pub digest: Digest,
    /// Signature.
    pub sig: [u8; 64],
}

impl CheckpointMsg {
    /// Creates and signs a checkpoint attestation.
    pub fn signed(replica: ReplicaId, seq: u64, digest: Digest, key: &Signer) -> CheckpointMsg {
        let mut m = CheckpointMsg {
            replica,
            seq,
            digest,
            sig: [0; 64],
        };
        m.sig = key.sign64(&m.signing_bytes());
        m
    }

    fn signing_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.raw(b"prime-ckpt")
            .u32(self.replica.0)
            .u64(self.seq)
            .raw(&self.digest);
        w.into_vec()
    }

    /// Verifies the attestation signature.
    pub fn verify(&self, keystore: &KeyStore, replica_key_base: u32, mock: bool) -> bool {
        verify64(
            keystore,
            NodeId(replica_key_base + self.replica.0),
            &self.signing_bytes(),
            &self.sig,
            mock,
        )
    }

    fn write(&self, w: &mut WireWriter) {
        w.u32(self.replica.0)
            .u64(self.seq)
            .raw(&self.digest)
            .raw(&self.sig);
    }

    fn read(r: &mut WireReader<'_>) -> Result<CheckpointMsg, WireError> {
        Ok(CheckpointMsg {
            replica: ReplicaId(r.u32()?),
            seq: r.u64()?,
            digest: r.array()?,
            sig: r.array()?,
        })
    }
}

/// A prepared-certificate claim carried in view changes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparedClaim {
    /// View in which the matrix prepared.
    pub view: u64,
    /// Ordered sequence.
    pub seq: u64,
    /// The prepared matrix itself (so the new leader can re-propose it).
    pub matrix: Matrix,
}

/// A replica's signed state report for a view change. The new leader
/// assembles a quorum of these into its NewView; followers recompute the
/// reproposal plan from the same quorum, so a Byzantine leader cannot drop
/// prepared matrices.
#[derive(Clone, Debug, PartialEq)]
pub struct ViewStateMsg {
    /// Reporting replica.
    pub replica: ReplicaId,
    /// The new view being entered.
    pub view: u64,
    /// Highest contiguously committed ordering sequence.
    pub last_committed: u64,
    /// Every prepared-but-possibly-uncommitted matrix above
    /// `last_committed`, lowest sequence first. Reporting only the highest
    /// one is unsound under pipelining: with several sequences in flight a
    /// lower prepared matrix may already have committed at a replica
    /// outside the state quorum, and a plan built without its claim would
    /// re-propose a different matrix at that sequence.
    pub prepared: Vec<PreparedClaim>,
    /// Signature by `replica`.
    pub sig: [u8; 64],
}

impl ViewStateMsg {
    /// Canonical signed bytes: the encoding with the trailing signature
    /// field zeroed in place (no clone, no re-encode).
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.raw(b"prime-viewstate");
        self.write(&mut w);
        w.zero_tail(64);
        w.into_vec()
    }

    /// Verifies the report signature.
    pub fn verify(&self, keystore: &KeyStore, replica_key_base: u32, mock: bool) -> bool {
        spire_crypto::keys::verify64(
            keystore,
            NodeId(replica_key_base + self.replica.0),
            &self.signing_bytes(),
            &self.sig,
            mock,
        )
    }

    fn write(&self, w: &mut WireWriter) {
        w.u32(self.replica.0)
            .u64(self.view)
            .u64(self.last_committed);
        w.u16(self.prepared.len() as u16);
        for claim in &self.prepared {
            w.u64(claim.view).u64(claim.seq);
            claim.matrix.write(w);
        }
        w.raw(&self.sig);
    }

    fn read(r: &mut WireReader<'_>) -> Result<ViewStateMsg, WireError> {
        let replica = ReplicaId(r.u32()?);
        let view = r.u64()?;
        let last_committed = r.u64()?;
        let count = r.u16()? as usize;
        let mut prepared = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            prepared.push(PreparedClaim {
                view: r.u64()?,
                seq: r.u64()?,
                matrix: Matrix::read(r)?,
            });
        }
        Ok(ViewStateMsg {
            replica,
            view,
            last_committed,
            prepared,
            sig: r.array()?,
        })
    }
}

/// All Prime protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum PrimeMsg {
    /// Client -> replica: submit an operation.
    Op(ClientOp),
    /// Originator broadcast of a batch of client ops.
    PoRequest {
        /// Originating replica.
        origin: ReplicaId,
        /// Originator-local sequence.
        po_seq: u64,
        /// The batched ops.
        ops: Vec<ClientOp>,
        /// Origin's signature.
        sig: [u8; 64],
    },
    /// Acknowledgement that a replica holds a PO-Request.
    PoAck {
        /// Acknowledging replica.
        replica: ReplicaId,
        /// Originator of the acknowledged request.
        origin: ReplicaId,
        /// Its sequence.
        po_seq: u64,
        /// Digest of the PO-Request body.
        digest: Digest,
        /// Signature.
        sig: [u8; 64],
    },
    /// Periodic cumulative pre-order report.
    PoSummary(SummaryRow),
    /// Leader proposal of a summary matrix at an ordering sequence.
    PrePrepare {
        /// Proposing view.
        view: u64,
        /// Ordering sequence.
        seq: u64,
        /// Proposed matrix.
        matrix: Matrix,
        /// Leader signature.
        sig: [u8; 64],
    },
    /// First ordering vote.
    Prepare {
        /// Voting replica.
        replica: ReplicaId,
        /// View.
        view: u64,
        /// Sequence.
        seq: u64,
        /// Matrix digest voted for.
        digest: Digest,
        /// Signature.
        sig: [u8; 64],
    },
    /// Second ordering vote.
    Commit {
        /// Voting replica.
        replica: ReplicaId,
        /// View.
        view: u64,
        /// Sequence.
        seq: u64,
        /// Matrix digest voted for.
        digest: Digest,
        /// Signature.
        sig: [u8; 64],
    },
    /// RTT probe (suspect-leader).
    Ping {
        /// Prober.
        replica: ReplicaId,
        /// Nonce echoed in the pong.
        nonce: u64,
    },
    /// RTT probe response.
    Pong {
        /// Responder.
        replica: ReplicaId,
        /// Echoed nonce.
        nonce: u64,
    },
    /// Accusation that the leader of `view` is slow or faulty.
    Suspect {
        /// Accusing replica.
        replica: ReplicaId,
        /// The suspected view.
        view: u64,
        /// Signature.
        sig: [u8; 64],
    },
    /// Per-replica state report sent on entering a new view.
    ViewState(ViewStateMsg),
    /// New leader's installation message: a quorum of view-state reports
    /// from which every replica deterministically derives the reproposals.
    NewView {
        /// The view being installed.
        view: u64,
        /// Quorum of signed state reports justifying the plan.
        states: Vec<ViewStateMsg>,
        /// Leader signature.
        sig: [u8; 64],
    },
    /// Checkpoint attestation broadcast.
    Checkpoint(CheckpointMsg),
    /// Request for state transfer from `have_seq`. Signed: a state request
    /// from the current leader doubles as an announcement that it is
    /// recovering, which immediately triggers leader replacement.
    StateReq {
        /// Requesting replica.
        replica: ReplicaId,
        /// Highest sequence the requester has executed.
        have_seq: u64,
        /// Signature.
        sig: [u8; 64],
    },
    /// State-transfer response carrying one erasure share of the snapshot
    /// (Reed-Solomon with `k = f + 1`): any `f + 1` correct responders
    /// suffice to reconstruct, and each ships only `1/(f+1)` of the bytes.
    StateResp {
        /// Responding replica.
        replica: ReplicaId,
        /// Sequence of the included checkpoint.
        checkpoint_seq: u64,
        /// Erasure share index (the responder's replica id).
        share_index: u8,
        /// Erasure parameter `k` used by the responder.
        erasure_k: u8,
        /// The share bytes.
        share: Bytes,
        /// `f + 1` matching signed checkpoint attestations proving the
        /// snapshot digest.
        proof: Vec<CheckpointMsg>,
        /// The current view at the responder.
        view: u64,
        /// The responder's highest seen PO sequence *originated by the
        /// requester*, so a recovered origin resumes its numbering without
        /// colliding with its pre-recovery certificates.
        requester_po_high: u64,
        /// The responder's highest seen summary sequence *from the
        /// requester*: a recovered replica must resume above it or its new
        /// summaries are discarded as stale replays.
        requester_sseq_high: u64,
    },
    /// A committed matrix forwarded to a catching-up replica; adopted once
    /// `f + 1` responders agree (unsigned; agreement provides safety).
    SuffixVote {
        /// Responding replica.
        replica: ReplicaId,
        /// Ordering sequence of the matrix.
        seq: u64,
        /// The committed matrix.
        matrix: Matrix,
    },
    /// Request for a missing PO-Request's content (reconciliation).
    ReconReq {
        /// Requesting replica.
        replica: ReplicaId,
        /// Originator of the wanted request.
        origin: ReplicaId,
        /// Its sequence.
        po_seq: u64,
    },
    /// Replica-pushed outbound message to a client (e.g. a supervisory
    /// command for an RTU proxy); receivers act on `f + 1` matching copies.
    Notify {
        /// Pushing replica.
        replica: ReplicaId,
        /// Target client.
        client: ClientId,
        /// Deterministic per-target notification sequence.
        nseq: u64,
        /// Payload.
        payload: Bytes,
        /// Signature.
        sig: [u8; 64],
    },
    /// Reply to a client with an execution result.
    Reply {
        /// Replying replica.
        replica: ReplicaId,
        /// Target client.
        client: ClientId,
        /// The client op sequence executed.
        cseq: u64,
        /// Application result bytes.
        result: Bytes,
        /// Signature.
        sig: [u8; 64],
    },
    /// Cumulative pre-order acknowledgement: one signature vouching for
    /// several PO-Requests at once. Semantically identical to the same
    /// set of individual [`PrimeMsg::PoAck`]s; emitted when one
    /// activation acknowledges multiple requests (pipelined ordering,
    /// coalesced arrival). The whole signed frame is retained as
    /// certificate material for each covered entry, so reconciliation
    /// forwards it verbatim like a plain ack.
    PoAckMulti {
        /// Acknowledging replica.
        replica: ReplicaId,
        /// `(origin, po_seq, digest)` per acknowledged request.
        entries: Vec<(ReplicaId, u64, Digest)>,
        /// Signature over all entries.
        sig: [u8; 64],
    },
    /// Cumulative second-round ordering vote: commit votes for several
    /// ordering sequences of one view under one signature. Emitted when
    /// a wider proposal window prepares multiple sequences in one
    /// activation.
    CommitMulti {
        /// Voting replica.
        replica: ReplicaId,
        /// View.
        view: u64,
        /// `(seq, matrix digest)` per committed-to sequence.
        entries: Vec<(u64, Digest)>,
        /// Signature over all entries.
        sig: [u8; 64],
    },
    /// State-transfer manifest: the chunk layout of the snapshot at a
    /// stable checkpoint. The snapshot is split into `chunk_size`-byte
    /// chunks and each chunk is erasure-encoded independently, so a
    /// recovering replica reconstructs chunk-by-chunk from any
    /// `erasure_k` per-chunk shares and re-requests only what is missing.
    /// Unsigned: the requester pins a layout only after `f + 1` distinct
    /// responders sent byte-identical manifests (at least one of them is
    /// correct), and the embedded checkpoint proof carries its own
    /// signatures.
    StateMeta {
        /// Responding replica.
        replica: ReplicaId,
        /// Sequence of the described checkpoint.
        checkpoint_seq: u64,
        /// Erasure parameter `k`: shares needed per chunk.
        erasure_k: u8,
        /// Bytes per chunk before encoding (last chunk may be shorter).
        chunk_size: u32,
        /// Total snapshot length in bytes.
        total_len: u64,
        /// Digest of each plaintext chunk, in order; corrupt shares are
        /// caught when a reconstructed chunk misses its pinned digest.
        chunk_digests: Vec<Digest>,
        /// `f + 1` matching signed checkpoint attestations proving the
        /// whole-snapshot digest.
        proof: Vec<CheckpointMsg>,
        /// The current view at the responder.
        view: u64,
        /// The responder's highest seen PO sequence originated by the
        /// requester (numbering resume, as in [`PrimeMsg::StateResp`]).
        requester_po_high: u64,
        /// The responder's highest seen summary sequence from the
        /// requester.
        requester_sseq_high: u64,
    },
    /// One erasure share of one snapshot chunk. Unsigned; validated
    /// against the pinned manifest's chunk digest after reconstruction.
    StateChunk {
        /// Responding replica.
        replica: ReplicaId,
        /// Sequence of the checkpoint the chunk belongs to.
        checkpoint_seq: u64,
        /// Chunk index within the manifest layout.
        chunk: u32,
        /// Erasure share index (the responder's replica id).
        share_index: u8,
        /// The share bytes.
        share: Bytes,
    },
    /// Re-request of specific missing chunks, sent to alternate
    /// responders when the per-chunk retry timer fires.
    StateChunkReq {
        /// Requesting (recovering) replica.
        replica: ReplicaId,
        /// Checkpoint whose chunks are wanted.
        checkpoint_seq: u64,
        /// Indices of the chunks still missing.
        chunks: Vec<u32>,
    },
}

impl PrimeMsg {
    /// True for variants whose encoding ends in their own 64-byte
    /// signature field.
    ///
    /// Every signed variant writes its signature *last*, which is what lets
    /// [`signing_bytes`](PrimeMsg::signing_bytes) zero the signature in the
    /// already-encoded buffer instead of cloning the whole message.
    fn carries_sig(&self) -> bool {
        matches!(
            self,
            PrimeMsg::PoRequest { .. }
                | PrimeMsg::PoAck { .. }
                | PrimeMsg::PrePrepare { .. }
                | PrimeMsg::Prepare { .. }
                | PrimeMsg::Commit { .. }
                | PrimeMsg::Suspect { .. }
                | PrimeMsg::ViewState(_)
                | PrimeMsg::NewView { .. }
                | PrimeMsg::Notify { .. }
                | PrimeMsg::StateReq { .. }
                | PrimeMsg::Reply { .. }
                | PrimeMsg::PoAckMulti { .. }
                | PrimeMsg::CommitMulti { .. }
        )
    }

    /// The canonical bytes a signature covers for this message: the
    /// encoding with the trailing signature field zeroed in place.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(128);
        self.write_signing_bytes(&mut w);
        w.into_vec()
    }

    /// Writes the canonical signing bytes into `scratch` (cleared first)
    /// and returns them — the allocation-free variant for hot sign/verify
    /// paths that reuse one buffer.
    pub fn write_signing_bytes<'a>(&self, scratch: &'a mut WireWriter) -> &'a [u8] {
        scratch.clear();
        self.write_into(scratch);
        if self.carries_sig() {
            scratch.zero_tail(64);
        }
        scratch.as_slice()
    }

    /// Signs the message in place (for variants carrying a signature),
    /// reusing `scratch` for the signing bytes.
    pub fn sign_with(&mut self, key: &Signer, scratch: &mut WireWriter) {
        let sig = key.sign64(self.write_signing_bytes(scratch));
        match self {
            PrimeMsg::PoRequest { sig: s, .. }
            | PrimeMsg::PoAck { sig: s, .. }
            | PrimeMsg::PrePrepare { sig: s, .. }
            | PrimeMsg::Prepare { sig: s, .. }
            | PrimeMsg::Commit { sig: s, .. }
            | PrimeMsg::Suspect { sig: s, .. }
            | PrimeMsg::NewView { sig: s, .. }
            | PrimeMsg::Notify { sig: s, .. }
            | PrimeMsg::StateReq { sig: s, .. }
            | PrimeMsg::Reply { sig: s, .. }
            | PrimeMsg::PoAckMulti { sig: s, .. }
            | PrimeMsg::CommitMulti { sig: s, .. } => *s = sig,
            PrimeMsg::ViewState(state) => state.sig = sig,
            _ => {}
        }
    }

    /// Signs the message in place (for variants carrying a signature).
    pub fn sign(&mut self, key: &Signer) {
        let mut scratch = WireWriter::with_capacity(128);
        self.sign_with(key, &mut scratch);
    }

    /// Verifies the embedded signature against `signer`'s key, reusing
    /// `scratch` for the signing bytes.
    pub fn verify_sig_with(
        &self,
        keystore: &KeyStore,
        signer: NodeId,
        mock: bool,
        scratch: &mut WireWriter,
    ) -> bool {
        let sig = match self {
            PrimeMsg::PoRequest { sig, .. }
            | PrimeMsg::PoAck { sig, .. }
            | PrimeMsg::PrePrepare { sig, .. }
            | PrimeMsg::Prepare { sig, .. }
            | PrimeMsg::Commit { sig, .. }
            | PrimeMsg::Suspect { sig, .. }
            | PrimeMsg::NewView { sig, .. }
            | PrimeMsg::Notify { sig, .. }
            | PrimeMsg::StateReq { sig, .. }
            | PrimeMsg::Reply { sig, .. }
            | PrimeMsg::PoAckMulti { sig, .. }
            | PrimeMsg::CommitMulti { sig, .. } => *sig,
            PrimeMsg::ViewState(state) => state.sig,
            // Unsigned control messages (pings, state transfer, recon) rely
            // on the authenticated overlay link; their effects are
            // idempotent and validated by content.
            _ => return true,
        };
        verify64(
            keystore,
            signer,
            self.write_signing_bytes(scratch),
            &sig,
            mock,
        )
    }

    /// Verifies the embedded signature against `signer`'s key.
    pub fn verify_sig(&self, keystore: &KeyStore, signer: NodeId, mock: bool) -> bool {
        let mut scratch = WireWriter::with_capacity(128);
        self.verify_sig_with(keystore, signer, mock, &mut scratch)
    }

    /// Encodes to canonical bytes.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(128);
        self.write_into(&mut w);
        w.finish()
    }

    /// Writes the canonical encoding into an existing writer.
    fn write_into(&self, w: &mut WireWriter) {
        match self {
            PrimeMsg::Op(op) => {
                w.u8(1);
                op.write(w);
            }
            PrimeMsg::PoRequest {
                origin,
                po_seq,
                ops,
                sig,
            } => {
                w.u8(2).u32(origin.0).u64(*po_seq).u16(ops.len() as u16);
                for op in ops {
                    op.write(w);
                }
                w.raw(sig);
            }
            PrimeMsg::PoAck {
                replica,
                origin,
                po_seq,
                digest,
                sig,
            } => {
                w.u8(3)
                    .u32(replica.0)
                    .u32(origin.0)
                    .u64(*po_seq)
                    .raw(digest)
                    .raw(sig);
            }
            PrimeMsg::PoSummary(row) => {
                w.u8(4);
                row.write(w);
            }
            PrimeMsg::PrePrepare {
                view,
                seq,
                matrix,
                sig,
            } => {
                w.u8(5).u64(*view).u64(*seq);
                matrix.write(w);
                w.raw(sig);
            }
            PrimeMsg::Prepare {
                replica,
                view,
                seq,
                digest,
                sig,
            } => {
                w.u8(6)
                    .u32(replica.0)
                    .u64(*view)
                    .u64(*seq)
                    .raw(digest)
                    .raw(sig);
            }
            PrimeMsg::Commit {
                replica,
                view,
                seq,
                digest,
                sig,
            } => {
                w.u8(7)
                    .u32(replica.0)
                    .u64(*view)
                    .u64(*seq)
                    .raw(digest)
                    .raw(sig);
            }
            PrimeMsg::Ping { replica, nonce } => {
                w.u8(8).u32(replica.0).u64(*nonce);
            }
            PrimeMsg::Pong { replica, nonce } => {
                w.u8(9).u32(replica.0).u64(*nonce);
            }
            PrimeMsg::Suspect { replica, view, sig } => {
                w.u8(10).u32(replica.0).u64(*view).raw(sig);
            }
            PrimeMsg::ViewState(state) => {
                w.u8(11);
                state.write(w);
            }
            PrimeMsg::NewView { view, states, sig } => {
                w.u8(12).u64(*view).u16(states.len() as u16);
                for state in states {
                    state.write(w);
                }
                w.raw(sig);
            }
            PrimeMsg::Checkpoint(m) => {
                w.u8(13);
                m.write(w);
            }
            PrimeMsg::StateReq {
                replica,
                have_seq,
                sig,
            } => {
                w.u8(14).u32(replica.0).u64(*have_seq).raw(sig);
            }
            PrimeMsg::StateResp {
                replica,
                checkpoint_seq,
                share_index,
                erasure_k,
                share,
                proof,
                view,
                requester_po_high,
                requester_sseq_high,
            } => {
                w.u8(15)
                    .u32(replica.0)
                    .u64(*checkpoint_seq)
                    .u8(*share_index)
                    .u8(*erasure_k)
                    .bytes(share)
                    .u16(proof.len() as u16);
                for p in proof {
                    p.write(w);
                }
                w.u64(*view)
                    .u64(*requester_po_high)
                    .u64(*requester_sseq_high);
            }
            PrimeMsg::SuffixVote {
                replica,
                seq,
                matrix,
            } => {
                w.u8(18).u32(replica.0).u64(*seq);
                matrix.write(w);
            }
            PrimeMsg::ReconReq {
                replica,
                origin,
                po_seq,
            } => {
                w.u8(16).u32(replica.0).u32(origin.0).u64(*po_seq);
            }
            PrimeMsg::Notify {
                replica,
                client,
                nseq,
                payload,
                sig,
            } => {
                w.u8(19)
                    .u32(replica.0)
                    .u32(client.0)
                    .u64(*nseq)
                    .bytes(payload)
                    .raw(sig);
            }
            PrimeMsg::Reply {
                replica,
                client,
                cseq,
                result,
                sig,
            } => {
                w.u8(17)
                    .u32(replica.0)
                    .u32(client.0)
                    .u64(*cseq)
                    .bytes(result)
                    .raw(sig);
            }
            PrimeMsg::PoAckMulti {
                replica,
                entries,
                sig,
            } => {
                w.u8(20).u32(replica.0).u16(entries.len() as u16);
                for (origin, po_seq, digest) in entries {
                    w.u32(origin.0).u64(*po_seq).raw(digest);
                }
                w.raw(sig);
            }
            PrimeMsg::CommitMulti {
                replica,
                view,
                entries,
                sig,
            } => {
                w.u8(21).u32(replica.0).u64(*view).u16(entries.len() as u16);
                for (seq, digest) in entries {
                    w.u64(*seq).raw(digest);
                }
                w.raw(sig);
            }
            PrimeMsg::StateMeta {
                replica,
                checkpoint_seq,
                erasure_k,
                chunk_size,
                total_len,
                chunk_digests,
                proof,
                view,
                requester_po_high,
                requester_sseq_high,
            } => {
                w.u8(22)
                    .u32(replica.0)
                    .u64(*checkpoint_seq)
                    .u8(*erasure_k)
                    .u32(*chunk_size)
                    .u64(*total_len)
                    .u16(chunk_digests.len() as u16);
                for d in chunk_digests {
                    w.raw(d);
                }
                w.u16(proof.len() as u16);
                for p in proof {
                    p.write(w);
                }
                w.u64(*view)
                    .u64(*requester_po_high)
                    .u64(*requester_sseq_high);
            }
            PrimeMsg::StateChunk {
                replica,
                checkpoint_seq,
                chunk,
                share_index,
                share,
            } => {
                w.u8(23)
                    .u32(replica.0)
                    .u64(*checkpoint_seq)
                    .u32(*chunk)
                    .u8(*share_index)
                    .bytes(share);
            }
            PrimeMsg::StateChunkReq {
                replica,
                checkpoint_seq,
                chunks,
            } => {
                w.u8(24)
                    .u32(replica.0)
                    .u64(*checkpoint_seq)
                    .u16(chunks.len() as u16);
                for c in chunks {
                    w.u32(*c);
                }
            }
        }
    }

    /// Decodes from canonical bytes.
    pub fn decode(bytes: &[u8]) -> Result<PrimeMsg, WireError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            1 => PrimeMsg::Op(ClientOp::read(&mut r)?),
            2 => {
                let origin = ReplicaId(r.u32()?);
                let po_seq = r.u64()?;
                let n = r.u16()? as usize;
                let mut ops = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    ops.push(ClientOp::read(&mut r)?);
                }
                PrimeMsg::PoRequest {
                    origin,
                    po_seq,
                    ops,
                    sig: r.array()?,
                }
            }
            3 => PrimeMsg::PoAck {
                replica: ReplicaId(r.u32()?),
                origin: ReplicaId(r.u32()?),
                po_seq: r.u64()?,
                digest: r.array()?,
                sig: r.array()?,
            },
            4 => PrimeMsg::PoSummary(SummaryRow::read(&mut r)?),
            5 => PrimeMsg::PrePrepare {
                view: r.u64()?,
                seq: r.u64()?,
                matrix: Matrix::read(&mut r)?,
                sig: r.array()?,
            },
            6 => PrimeMsg::Prepare {
                replica: ReplicaId(r.u32()?),
                view: r.u64()?,
                seq: r.u64()?,
                digest: r.array()?,
                sig: r.array()?,
            },
            7 => PrimeMsg::Commit {
                replica: ReplicaId(r.u32()?),
                view: r.u64()?,
                seq: r.u64()?,
                digest: r.array()?,
                sig: r.array()?,
            },
            8 => PrimeMsg::Ping {
                replica: ReplicaId(r.u32()?),
                nonce: r.u64()?,
            },
            9 => PrimeMsg::Pong {
                replica: ReplicaId(r.u32()?),
                nonce: r.u64()?,
            },
            10 => PrimeMsg::Suspect {
                replica: ReplicaId(r.u32()?),
                view: r.u64()?,
                sig: r.array()?,
            },
            11 => PrimeMsg::ViewState(ViewStateMsg::read(&mut r)?),
            12 => {
                let view = r.u64()?;
                let n = r.u16()? as usize;
                let mut states = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    states.push(ViewStateMsg::read(&mut r)?);
                }
                PrimeMsg::NewView {
                    view,
                    states,
                    sig: r.array()?,
                }
            }
            13 => PrimeMsg::Checkpoint(CheckpointMsg::read(&mut r)?),
            14 => PrimeMsg::StateReq {
                replica: ReplicaId(r.u32()?),
                have_seq: r.u64()?,
                sig: r.array()?,
            },
            15 => {
                let replica = ReplicaId(r.u32()?);
                let checkpoint_seq = r.u64()?;
                let share_index = r.u8()?;
                let erasure_k = r.u8()?;
                let share = Bytes::copy_from_slice(r.bytes()?);
                let n = r.u16()? as usize;
                let mut proof = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    proof.push(CheckpointMsg::read(&mut r)?);
                }
                PrimeMsg::StateResp {
                    replica,
                    checkpoint_seq,
                    share_index,
                    erasure_k,
                    share,
                    proof,
                    view: r.u64()?,
                    requester_po_high: r.u64()?,
                    requester_sseq_high: r.u64()?,
                }
            }
            18 => PrimeMsg::SuffixVote {
                replica: ReplicaId(r.u32()?),
                seq: r.u64()?,
                matrix: Matrix::read(&mut r)?,
            },
            16 => PrimeMsg::ReconReq {
                replica: ReplicaId(r.u32()?),
                origin: ReplicaId(r.u32()?),
                po_seq: r.u64()?,
            },
            19 => PrimeMsg::Notify {
                replica: ReplicaId(r.u32()?),
                client: ClientId(r.u32()?),
                nseq: r.u64()?,
                payload: Bytes::copy_from_slice(r.bytes()?),
                sig: r.array()?,
            },
            20 => {
                let replica = ReplicaId(r.u32()?);
                let n = r.u16()? as usize;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    entries.push((ReplicaId(r.u32()?), r.u64()?, r.array()?));
                }
                PrimeMsg::PoAckMulti {
                    replica,
                    entries,
                    sig: r.array()?,
                }
            }
            21 => {
                let replica = ReplicaId(r.u32()?);
                let view = r.u64()?;
                let n = r.u16()? as usize;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    entries.push((r.u64()?, r.array()?));
                }
                PrimeMsg::CommitMulti {
                    replica,
                    view,
                    entries,
                    sig: r.array()?,
                }
            }
            17 => PrimeMsg::Reply {
                replica: ReplicaId(r.u32()?),
                client: ClientId(r.u32()?),
                cseq: r.u64()?,
                result: Bytes::copy_from_slice(r.bytes()?),
                sig: r.array()?,
            },
            22 => {
                let replica = ReplicaId(r.u32()?);
                let checkpoint_seq = r.u64()?;
                let erasure_k = r.u8()?;
                let chunk_size = r.u32()?;
                let total_len = r.u64()?;
                let n = r.u16()? as usize;
                let mut chunk_digests = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    chunk_digests.push(r.array()?);
                }
                let n = r.u16()? as usize;
                let mut proof = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    proof.push(CheckpointMsg::read(&mut r)?);
                }
                PrimeMsg::StateMeta {
                    replica,
                    checkpoint_seq,
                    erasure_k,
                    chunk_size,
                    total_len,
                    chunk_digests,
                    proof,
                    view: r.u64()?,
                    requester_po_high: r.u64()?,
                    requester_sseq_high: r.u64()?,
                }
            }
            23 => PrimeMsg::StateChunk {
                replica: ReplicaId(r.u32()?),
                checkpoint_seq: r.u64()?,
                chunk: r.u32()?,
                share_index: r.u8()?,
                share: Bytes::copy_from_slice(r.bytes()?),
            },
            24 => {
                let replica = ReplicaId(r.u32()?);
                let checkpoint_seq = r.u64()?;
                let n = r.u16()? as usize;
                let mut chunks = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    chunks.push(r.u32()?);
                }
                PrimeMsg::StateChunkReq {
                    replica,
                    checkpoint_seq,
                    chunks,
                }
            }
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(msg)
    }

    /// Digest of the full encoding.
    pub fn digest(&self) -> Digest {
        spire_crypto::digest(&self.encode())
    }
}

/// Frame tag marking a batch-attested message ([`PrimeMsg`] encodings start
/// with tags 1..=24, so the two framings share one byte stream).
pub const BATCH_FRAME_TAG: u8 = 255;

/// A replica-to-replica frame as read off a link: either a plain message
/// authenticated by its own embedded signature, or a message whose
/// signature field is zero and whose authenticity comes from a shared
/// batch-root signature (see [`spire_crypto::batch`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// A bare [`PrimeMsg`] encoding.
    Plain(PrimeMsg),
    /// A batch-attested message.
    Batched {
        /// The replica that signed the batch root.
        signer: ReplicaId,
        /// Inclusion proof tying `msg` to the signed root.
        attestation: BatchAttestation,
        /// The carried message (embedded signature field is all-zero).
        msg: PrimeMsg,
        /// Digest of the carried message's encoding — the Merkle leaf.
        msg_digest: Digest,
    },
}

/// Encodes a batch-attested frame around an already-encoded message.
pub fn encode_batched(signer: ReplicaId, attestation: &BatchAttestation, payload: &[u8]) -> Bytes {
    let mut w = WireWriter::with_capacity(payload.len() + 64 + 32 * attestation.path.len() + 32);
    w.u8(BATCH_FRAME_TAG)
        .u32(signer.0)
        .u32(attestation.leaf_index)
        .u32(attestation.leaf_count)
        .u8(attestation.path.len() as u8);
    for digest in &attestation.path {
        w.raw(digest);
    }
    w.raw(&attestation.root_sig).bytes(payload);
    w.finish()
}

/// Decodes a frame: a batch-attested envelope or a plain message.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    if bytes.first() != Some(&BATCH_FRAME_TAG) {
        return Ok(Frame::Plain(PrimeMsg::decode(bytes)?));
    }
    let mut r = WireReader::new(bytes);
    r.u8()?; // tag
    let signer = ReplicaId(r.u32()?);
    let leaf_index = r.u32()?;
    let leaf_count = r.u32()?;
    let path_len = r.u8()? as usize;
    let mut path = Vec::with_capacity(path_len);
    for _ in 0..path_len {
        path.push(r.array()?);
    }
    let root_sig: [u8; 64] = r.array()?;
    let payload = r.bytes()?;
    let msg_digest = spire_crypto::digest(payload);
    let msg = PrimeMsg::decode(payload)?;
    r.expect_end()?;
    Ok(Frame::Batched {
        signer,
        attestation: BatchAttestation {
            leaf_index,
            leaf_count,
            path,
            root_sig,
        },
        msg,
        msg_digest,
    })
}

/// Decodes a frame and returns the enclosed message, discarding any batch
/// attestation. For client-side receivers (proxies, HMIs, historians),
/// which authenticate results by collecting `f + 1` matching replies
/// rather than by checking individual replica signatures.
pub fn decode_enclosed(bytes: &[u8]) -> Result<PrimeMsg, WireError> {
    Ok(match decode_frame(bytes)? {
        Frame::Plain(msg) => msg,
        Frame::Batched { msg, .. } => msg,
    })
}

/// Frame tag marking a link-sealed envelope: a replica-to-replica frame
/// authenticated by a per-link HMAC session key instead of (or in addition
/// to) public-key signatures. Layout: `[254][sender u32][mac 32][inner]`,
/// where `inner` is an ordinary frame (plain or batch-attested).
pub const SEALED_FRAME_TAG: u8 = 254;

/// Wraps an encoded frame in a link-MAC envelope for one recipient. The
/// MAC covers the sender id and the inner frame bytes under the symmetric
/// per-pair key, so neither can be altered in flight.
pub fn seal_frame(sender: ReplicaId, key: &[u8; 32], inner: &[u8]) -> Bytes {
    let mac = seal_mac(sender, key, inner);
    let mut w = WireWriter::with_capacity(1 + 4 + 32 + 4 + inner.len());
    w.u8(SEALED_FRAME_TAG).u32(sender.0).raw(&mac).bytes(inner);
    w.finish()
}

fn seal_mac(sender: ReplicaId, key: &[u8; 32], inner: &[u8]) -> [u8; 32] {
    let mut mac = spire_crypto::hmac::HmacSha256::new(key);
    mac.update(&sender.0.to_le_bytes());
    mac.update(inner);
    mac.finalize()
}

/// A parsed link-sealed envelope, before MAC verification. The receiver
/// looks up the pair key by `sender` and checks with [`Sealed::verify`].
#[derive(Debug)]
pub struct Sealed<'a> {
    /// The replica claiming to have sealed this frame.
    pub sender: ReplicaId,
    /// HMAC over `sender || inner` under the pair's link key.
    pub mac: [u8; 32],
    /// The enclosed frame bytes.
    pub inner: &'a [u8],
}

impl Sealed<'_> {
    /// Constant-time MAC check under the claimed sender's link key.
    pub fn verify(&self, key: &[u8; 32]) -> bool {
        spire_crypto::hmac::constant_time_eq(&seal_mac(self.sender, key, self.inner), &self.mac)
    }
}

/// Parses a sealed envelope without checking the MAC. Returns `Ok(None)`
/// when the bytes are not a sealed frame at all.
pub fn decode_sealed(bytes: &[u8]) -> Result<Option<Sealed<'_>>, WireError> {
    if bytes.first() != Some(&SEALED_FRAME_TAG) {
        return Ok(None);
    }
    let mut r = WireReader::new(bytes);
    r.u8()?; // tag
    let sender = ReplicaId(r.u32()?);
    let mac: [u8; 32] = r.array()?;
    let inner = r.bytes()?;
    r.expect_end()?;
    Ok(Some(Sealed { sender, mac, inner }))
}

/// Frame tag marking a multi-frame container: several ordinary frames
/// (plain or batch-attested) coalesced into one link transfer. Layout:
/// `[253][count u16][(len u32 | frame)*]`. When session MACs are on the
/// whole container is sealed once, amortizing the per-link HMAC (and the
/// overlay's per-message dissemination and hop-acknowledgement work)
/// across every frame inside. A receiver treats each inner frame exactly
/// as if it had arrived alone on the same link.
pub const MULTI_FRAME_TAG: u8 = 253;

/// Packs already-encoded frames into one multi-frame container.
pub fn encode_multi(frames: &[Bytes]) -> Bytes {
    let total: usize = frames.iter().map(|f| f.len() + 4).sum();
    let mut w = WireWriter::with_capacity(1 + 2 + total);
    w.u8(MULTI_FRAME_TAG).u16(frames.len() as u16);
    for frame in frames {
        w.bytes(frame);
    }
    w.finish()
}

/// Splits a multi-frame container into zero-copy sub-frame slices of the
/// shared buffer. Returns `Ok(None)` when the bytes are not a container.
pub fn decode_multi(bytes: &Bytes) -> Result<Option<Vec<Bytes>>, WireError> {
    if bytes.first() != Some(&MULTI_FRAME_TAG) {
        return Ok(None);
    }
    let mut r = WireReader::new(bytes);
    r.u8()?; // tag
    let count = r.u16()? as usize;
    let mut frames = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let slice = r.bytes()?;
        // Offset arithmetic against the shared buffer: each sub-frame is
        // a refcount bump, not a copy.
        let start = slice.as_ptr() as usize - bytes.as_ptr() as usize;
        frames.push(bytes.slice(start..start + slice.len()));
    }
    r.expect_end()?;
    Ok(Some(frames))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_crypto::KeyMaterial;

    fn material() -> KeyMaterial {
        KeyMaterial::new([7u8; 32])
    }

    fn sample_row(replica: u32) -> SummaryRow {
        SummaryRow {
            replica: ReplicaId(replica),
            sseq: 5,
            vector: AruVector(vec![1, 2, 3]),
            sig: [9; 64],
        }
    }

    fn roundtrip(msg: PrimeMsg) {
        let bytes = msg.encode();
        assert_eq!(PrimeMsg::decode(&bytes).expect("decode"), msg);
    }

    #[test]
    fn roundtrip_all_variants() {
        let op = ClientOp {
            client: ClientId(1),
            cseq: 2,
            payload: Bytes::from_static(b"x"),
            sig: [3; 64],
        };
        roundtrip(PrimeMsg::Op(op.clone()));
        roundtrip(PrimeMsg::PoRequest {
            origin: ReplicaId(0),
            po_seq: 9,
            ops: vec![op.clone(), op.clone()],
            sig: [1; 64],
        });
        roundtrip(PrimeMsg::PoAck {
            replica: ReplicaId(1),
            origin: ReplicaId(0),
            po_seq: 9,
            digest: [5; 32],
            sig: [6; 64],
        });
        roundtrip(PrimeMsg::PoSummary(sample_row(2)));
        roundtrip(PrimeMsg::PrePrepare {
            view: 1,
            seq: 10,
            matrix: Matrix {
                rows: vec![sample_row(0), sample_row(1)],
            },
            sig: [2; 64],
        });
        roundtrip(PrimeMsg::Prepare {
            replica: ReplicaId(3),
            view: 1,
            seq: 10,
            digest: [4; 32],
            sig: [5; 64],
        });
        roundtrip(PrimeMsg::Commit {
            replica: ReplicaId(3),
            view: 1,
            seq: 10,
            digest: [4; 32],
            sig: [5; 64],
        });
        roundtrip(PrimeMsg::Ping {
            replica: ReplicaId(0),
            nonce: 77,
        });
        roundtrip(PrimeMsg::Pong {
            replica: ReplicaId(1),
            nonce: 77,
        });
        roundtrip(PrimeMsg::Suspect {
            replica: ReplicaId(2),
            view: 3,
            sig: [8; 64],
        });
        let state = ViewStateMsg {
            replica: ReplicaId(2),
            view: 4,
            last_committed: 10,
            prepared: vec![
                PreparedClaim {
                    view: 3,
                    seq: 11,
                    matrix: Matrix {
                        rows: vec![sample_row(1)],
                    },
                },
                PreparedClaim {
                    view: 2,
                    seq: 12,
                    matrix: Matrix { rows: vec![] },
                },
            ],
            sig: [1; 64],
        };
        roundtrip(PrimeMsg::ViewState(state.clone()));
        roundtrip(PrimeMsg::ViewState(ViewStateMsg {
            prepared: vec![],
            ..state.clone()
        }));
        roundtrip(PrimeMsg::NewView {
            view: 4,
            states: vec![state],
            sig: [2; 64],
        });
        roundtrip(PrimeMsg::Checkpoint(CheckpointMsg {
            replica: ReplicaId(0),
            seq: 50,
            digest: [7; 32],
            sig: [8; 64],
        }));
        roundtrip(PrimeMsg::StateReq {
            replica: ReplicaId(5),
            have_seq: 0,
            sig: [4; 64],
        });
        roundtrip(PrimeMsg::StateResp {
            replica: ReplicaId(1),
            checkpoint_seq: 50,
            share_index: 1,
            erasure_k: 2,
            share: Bytes::from_static(b"snap-share"),
            proof: vec![CheckpointMsg {
                replica: ReplicaId(0),
                seq: 50,
                digest: [7; 32],
                sig: [8; 64],
            }],
            view: 2,
            requester_po_high: 17,
            requester_sseq_high: 5,
        });
        roundtrip(PrimeMsg::SuffixVote {
            replica: ReplicaId(2),
            seq: 51,
            matrix: Matrix {
                rows: vec![sample_row(0)],
            },
        });
        roundtrip(PrimeMsg::ReconReq {
            replica: ReplicaId(1),
            origin: ReplicaId(0),
            po_seq: 3,
        });
        roundtrip(PrimeMsg::Notify {
            replica: ReplicaId(1),
            client: ClientId(9),
            nseq: 4,
            payload: Bytes::from_static(b"cmd"),
            sig: [3; 64],
        });
        roundtrip(PrimeMsg::Reply {
            replica: ReplicaId(1),
            client: ClientId(9),
            cseq: 4,
            result: Bytes::from_static(b"ok"),
            sig: [3; 64],
        });
        roundtrip(PrimeMsg::PoAckMulti {
            replica: ReplicaId(2),
            entries: vec![
                (ReplicaId(0), 7, [1; 32]),
                (ReplicaId(3), 9, [2; 32]),
                (ReplicaId(1), 1, [3; 32]),
            ],
            sig: [6; 64],
        });
        roundtrip(PrimeMsg::CommitMulti {
            replica: ReplicaId(4),
            view: 2,
            entries: vec![(11, [4; 32]), (12, [5; 32]), (13, [6; 32])],
            sig: [7; 64],
        });
        roundtrip(PrimeMsg::StateMeta {
            replica: ReplicaId(1),
            checkpoint_seq: 50,
            erasure_k: 2,
            chunk_size: 1024,
            total_len: 2500,
            chunk_digests: vec![[1; 32], [2; 32], [3; 32]],
            proof: vec![CheckpointMsg {
                replica: ReplicaId(0),
                seq: 50,
                digest: [7; 32],
                sig: [8; 64],
            }],
            view: 2,
            requester_po_high: 17,
            requester_sseq_high: 5,
        });
        roundtrip(PrimeMsg::StateMeta {
            replica: ReplicaId(3),
            checkpoint_seq: 75,
            erasure_k: 3,
            chunk_size: 512,
            total_len: 0,
            chunk_digests: vec![],
            proof: vec![],
            view: 0,
            requester_po_high: 0,
            requester_sseq_high: 0,
        });
        roundtrip(PrimeMsg::StateChunk {
            replica: ReplicaId(2),
            checkpoint_seq: 50,
            chunk: 1,
            share_index: 2,
            share: Bytes::from_static(b"chunk-share"),
        });
        roundtrip(PrimeMsg::StateChunkReq {
            replica: ReplicaId(5),
            checkpoint_seq: 50,
            chunks: vec![0, 2, 7],
        });
        roundtrip(PrimeMsg::StateChunkReq {
            replica: ReplicaId(5),
            checkpoint_seq: 50,
            chunks: vec![],
        });
    }

    #[test]
    fn multi_frame_roundtrip_is_zero_copy() {
        let a = PrimeMsg::Ping {
            replica: ReplicaId(0),
            nonce: 1,
        }
        .encode();
        let b = PrimeMsg::PoAck {
            replica: ReplicaId(1),
            origin: ReplicaId(0),
            po_seq: 3,
            digest: [8; 32],
            sig: [9; 64],
        }
        .encode();
        let container = encode_multi(&[a.clone(), b.clone()]);
        assert_eq!(container.first(), Some(&MULTI_FRAME_TAG));
        let frames = decode_multi(&container).expect("decode").expect("multi");
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], a);
        assert_eq!(frames[1], b);
        // Zero-copy: sub-frames alias the container's buffer.
        let base = container.as_ptr() as usize;
        let end = base + container.len();
        for f in &frames {
            let p = f.as_ptr() as usize;
            assert!(p >= base && p + f.len() <= end);
        }
        // Non-containers pass through untouched.
        assert!(decode_multi(&a).expect("decode").is_none());
        // A sealed container authenticates all sub-frames with one MAC.
        let key = [5u8; 32];
        let sealed = seal_frame(ReplicaId(0), &key, &container);
        let parsed = decode_sealed(&sealed).expect("parse").expect("sealed");
        assert!(parsed.verify(&key));
        assert_eq!(parsed.inner, &container[..]);
    }

    #[test]
    fn sign_and_verify() {
        let material = material();
        let keystore = spire_crypto::KeyStore::for_nodes(&material, 2000);
        let key = Signer::new(material.signing_key(NodeId(1001)), false); // replica 1
        let mut msg = PrimeMsg::Prepare {
            replica: ReplicaId(1),
            view: 0,
            seq: 1,
            digest: [0; 32],
            sig: [0; 64],
        };
        msg.sign(&key);
        assert!(msg.verify_sig(&keystore, NodeId(1001), false));
        assert!(!msg.verify_sig(&keystore, NodeId(1002), false));
        // Tampering breaks the signature.
        if let PrimeMsg::Prepare { seq, .. } = &mut msg {
            *seq = 2;
        }
        assert!(!msg.verify_sig(&keystore, NodeId(1001), false));
    }

    #[test]
    fn client_op_sign_verify() {
        let material = material();
        let keystore = spire_crypto::KeyStore::for_nodes(&material, 3000);
        let key = Signer::new(material.signing_key(NodeId(2005)), false);
        let op = ClientOp::signed(ClientId(5), 1, Bytes::from_static(b"cmd"), &key);
        assert!(op.verify(&keystore, 2000, false));
        let mut bad = op.clone();
        bad.cseq = 2;
        assert!(!bad.verify(&keystore, 2000, false));
    }

    #[test]
    fn signing_bytes_zeroes_only_the_sig_field() {
        // The zero-tail fast path must equal the old clone-and-re-encode
        // semantics: encoding of the message with sig = [0; 64].
        let mut msg = PrimeMsg::PoAck {
            replica: ReplicaId(1),
            origin: ReplicaId(0),
            po_seq: 9,
            digest: [5; 32],
            sig: [6; 64],
        };
        let zeroed = PrimeMsg::PoAck {
            replica: ReplicaId(1),
            origin: ReplicaId(0),
            po_seq: 9,
            digest: [5; 32],
            sig: [0; 64],
        };
        assert_eq!(msg.signing_bytes(), zeroed.encode().to_vec());
        // The scratch-buffer variant agrees and the buffer is reusable.
        let mut scratch = WireWriter::new();
        assert_eq!(
            msg.write_signing_bytes(&mut scratch),
            &msg.signing_bytes()[..]
        );
        assert_eq!(
            msg.write_signing_bytes(&mut scratch),
            &msg.signing_bytes()[..]
        );
        // Unsigned variants keep their full encoding.
        let ping = PrimeMsg::Ping {
            replica: ReplicaId(0),
            nonce: 7,
        };
        assert_eq!(ping.signing_bytes(), ping.encode().to_vec());
        // sign_with round-trips through the same bytes.
        let material = material();
        let keystore = spire_crypto::KeyStore::for_nodes(&material, 2000);
        let key = Signer::new(material.signing_key(NodeId(1001)), false);
        msg.sign_with(&key, &mut scratch);
        assert!(msg.verify_sig_with(&keystore, NodeId(1001), false, &mut scratch));
    }

    #[test]
    fn batched_frame_roundtrip_and_auth() {
        use spire_crypto::batch::BatchSigner;
        let material = material();
        let keystore = spire_crypto::KeyStore::for_nodes(&material, 2000);
        let key = Signer::new(material.signing_key(NodeId(1001)), false); // replica 1
        let msgs: Vec<PrimeMsg> = (0..5)
            .map(|i| PrimeMsg::Commit {
                replica: ReplicaId(1),
                view: 0,
                seq: i,
                digest: [i as u8; 32],
                sig: [0; 64],
            })
            .collect();
        let mut batch = BatchSigner::new();
        let encodings: Vec<Bytes> = msgs.iter().map(|m| m.encode()).collect();
        for enc in &encodings {
            batch.push(spire_crypto::digest(enc));
        }
        let signed = batch.flush(&key).unwrap();
        for (i, (msg, enc)) in msgs.iter().zip(&encodings).enumerate() {
            let frame = encode_batched(ReplicaId(1), &signed.attestation(i), enc);
            match decode_frame(&frame).expect("decode") {
                Frame::Batched {
                    signer,
                    attestation,
                    msg: got,
                    msg_digest,
                } => {
                    assert_eq!(signer, ReplicaId(1));
                    assert_eq!(&got, msg);
                    assert!(attestation.verify(&keystore, NodeId(1001), &msg_digest, false));
                    // The wrong replica id must not authenticate it.
                    assert!(!attestation.verify(&keystore, NodeId(1002), &msg_digest, false));
                }
                Frame::Plain(_) => panic!("expected batched frame"),
            }
        }
        // Plain encodings still decode as plain frames.
        match decode_frame(&encodings[0]).expect("decode") {
            Frame::Plain(m) => assert_eq!(m, msgs[0]),
            Frame::Batched { .. } => panic!("expected plain frame"),
        }
    }

    #[test]
    fn covered_aru_quorum_math() {
        let rows: Vec<SummaryRow> = [(5u64, 3u64), (4, 9), (7, 2), (1, 8)]
            .iter()
            .enumerate()
            .map(|(i, (a, b))| SummaryRow {
                replica: ReplicaId(i as u32),
                sseq: 1,
                vector: AruVector(vec![*a, *b]),
                sig: [0; 64],
            })
            .collect();
        let matrix = Matrix { rows };
        // Column 0 = [5,4,7,1]: 3rd largest = 4.
        assert_eq!(matrix.covered_aru(0, 3), 4);
        // Column 1 = [3,9,2,8]: 2nd largest = 8.
        assert_eq!(matrix.covered_aru(1, 2), 8);
        // Quorum larger than rows -> 0.
        assert_eq!(matrix.covered_aru(0, 5), 0);
        // Missing column -> 0.
        assert_eq!(matrix.covered_aru(7, 2), 0);
    }

    #[test]
    fn matrix_digest_changes_with_content() {
        let m1 = Matrix {
            rows: vec![sample_row(0)],
        };
        let m2 = Matrix {
            rows: vec![sample_row(1)],
        };
        assert_ne!(m1.digest(), m2.digest());
    }

    #[test]
    fn sealed_frame_roundtrip() {
        use spire_crypto::NodeId;
        let key = material().link_key(NodeId(1000), NodeId(1003));
        let inner = PrimeMsg::Ping {
            replica: ReplicaId(3),
            nonce: 17,
        }
        .encode();
        let sealed = seal_frame(ReplicaId(3), &key, &inner);
        assert_eq!(sealed.first(), Some(&SEALED_FRAME_TAG));
        let parsed = decode_sealed(&sealed).expect("decode").expect("sealed");
        assert_eq!(parsed.sender, ReplicaId(3));
        assert_eq!(parsed.inner, &inner[..]);
        assert!(parsed.verify(&key));
        // An unsealed frame parses as `None`, not an error.
        assert!(decode_sealed(&inner).expect("decode").is_none());
    }

    #[test]
    fn sealed_frame_rejects_tampering() {
        use spire_crypto::NodeId;
        let key = material().link_key(NodeId(1000), NodeId(1001));
        let inner = PrimeMsg::Ping {
            replica: ReplicaId(1),
            nonce: 1,
        }
        .encode();
        let sealed = seal_frame(ReplicaId(1), &key, &inner);

        // Flipping any byte of the envelope breaks authentication: the
        // sender id (MAC input), the MAC itself, or the payload.
        for idx in [1usize, 10, sealed.len() - 1] {
            let mut bad = sealed.to_vec();
            bad[idx] ^= 1;
            let ok = match decode_sealed(&bad) {
                Ok(Some(parsed)) => parsed.verify(&key),
                _ => false,
            };
            assert!(!ok, "tampered byte {idx} was accepted");
        }

        // The right MAC under the wrong pair key fails too.
        let other = material().link_key(NodeId(1000), NodeId(1002));
        let parsed = decode_sealed(&sealed).expect("decode").expect("sealed");
        assert!(!parsed.verify(&other));
    }
}
