//! Portable reply certificates: proof that a Prime group ordered and
//! executed an operation with a given result.
//!
//! A client that collects `f + 1` replies carrying the same result knows
//! the group decided it, but that knowledge is local. A [`ReplyCert`]
//! packages the raw reply frames so a *third party* (another replication
//! group, an auditor) can re-verify the quorum offline: each frame is
//! either a plain `Reply` whose embedded signature checks out, or a
//! batch-attested `Reply` whose Merkle inclusion proof ties it to a signed
//! batch root (under batch signing the embedded signature field is zero,
//! so the raw frame — attestation included — is the only portable proof).
//!
//! This is the external-certificate hook used by the cross-shard
//! coordinator (`spire-shard`): the coordinator group orders a `Prepare`,
//! the coordinator client certifies the f+1 identical prepare votes, and
//! participant groups verify the certificate before ordering `Commit`.

use std::collections::BTreeSet;

use bytes::Bytes;
use spire_crypto::{KeyStore, NodeId};
use spire_sim::{WireError, WireReader, WireWriter};

use crate::config::ClientId;
use crate::msg::{decode_frame, Frame, PrimeMsg};

/// Upper bound on frames carried by one certificate (a quorum needs only
/// `f + 1`; anything larger is a malformed or hostile encoding).
pub const MAX_CERT_FRAMES: usize = 64;

/// An `f + 1` reply certificate: the agreed result plus the raw reply
/// frames (exactly as read off the wire) that attest to it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplyCert {
    /// The result all counted replies must carry.
    pub result: Bytes,
    /// Raw reply frames: plain (embedded signature) or batch-attested.
    pub frames: Vec<Bytes>,
}

impl ReplyCert {
    /// Appends the certificate to a wire encoding.
    pub fn write_into(&self, w: &mut WireWriter) {
        w.bytes(&self.result);
        w.u8(self.frames.len() as u8);
        for frame in &self.frames {
            w.bytes(frame);
        }
    }

    /// Reads a certificate from a wire encoding.
    pub fn read(r: &mut WireReader) -> Result<ReplyCert, WireError> {
        let result = Bytes::copy_from_slice(r.bytes()?);
        let n = r.u8()? as usize;
        if n > MAX_CERT_FRAMES {
            return Err(WireError::OversizedLength(n as u64));
        }
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            frames.push(Bytes::copy_from_slice(r.bytes()?));
        }
        Ok(ReplyCert { result, frames })
    }

    /// Verifies the certificate: at least `f + 1` *distinct* replicas of
    /// the issuing group (keys at `replica_key_base + id`) produced an
    /// authentic `Reply` to `client` carrying exactly `self.result`.
    /// Unparseable, mismatched, or badly-signed frames are skipped rather
    /// than fatal — an attacker padding a valid certificate with junk
    /// must not invalidate it.
    pub fn verify(
        &self,
        keystore: &KeyStore,
        replica_key_base: u32,
        client: ClientId,
        f: u32,
        mock: bool,
    ) -> bool {
        let mut scratch = WireWriter::with_capacity(256);
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        for raw in &self.frames {
            match decode_frame(raw) {
                Ok(Frame::Plain(msg)) => {
                    if let PrimeMsg::Reply {
                        replica,
                        client: c,
                        result,
                        ..
                    } = &msg
                    {
                        if *c == client
                            && *result == self.result
                            && msg.verify_sig_with(
                                keystore,
                                NodeId(replica_key_base + replica.0),
                                mock,
                                &mut scratch,
                            )
                        {
                            seen.insert(replica.0);
                        }
                    }
                }
                Ok(Frame::Batched {
                    signer,
                    attestation,
                    msg,
                    msg_digest,
                }) => {
                    if let PrimeMsg::Reply {
                        replica,
                        client: c,
                        result,
                        ..
                    } = &msg
                    {
                        if signer == *replica
                            && *c == client
                            && *result == self.result
                            && attestation.verify(
                                keystore,
                                NodeId(replica_key_base + replica.0),
                                &msg_digest,
                                mock,
                            )
                        {
                            seen.insert(replica.0);
                        }
                    }
                }
                Err(_) => continue,
            }
        }
        seen.len() > f as usize
    }

    /// Encodes to standalone canonical bytes.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(256);
        self.write_into(&mut w);
        w.finish()
    }

    /// Decodes standalone canonical bytes.
    pub fn decode(bytes: &[u8]) -> Result<ReplyCert, WireError> {
        let mut r = WireReader::new(bytes);
        let cert = ReplyCert::read(&mut r)?;
        r.expect_end()?;
        Ok(cert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplicaId;
    use spire_crypto::keys::{KeyMaterial, Signer};

    const BASE: u32 = 1000;

    fn store(n: u32) -> (KeyMaterial, KeyStore) {
        let material = KeyMaterial::new([9u8; 32]);
        let store = KeyStore::for_nodes(&material, n);
        (material, store)
    }

    fn signed_reply(material: &KeyMaterial, replica: u32, result: &[u8]) -> Bytes {
        let signer = Signer::new(material.signing_key(NodeId(BASE + replica)), true);
        let mut msg = PrimeMsg::Reply {
            replica: ReplicaId(replica),
            client: ClientId(7),
            cseq: 1,
            result: Bytes::copy_from_slice(result),
            sig: [0; 64],
        };
        let mut scratch = WireWriter::new();
        msg.sign_with(&signer, &mut scratch);
        msg.encode()
    }

    #[test]
    fn roundtrip() {
        let cert = ReplyCert {
            result: Bytes::from_static(b"ok"),
            frames: vec![Bytes::from_static(b"a"), Bytes::from_static(b"bb")],
        };
        let decoded = ReplyCert::decode(&cert.encode()).unwrap();
        assert_eq!(decoded, cert);
    }

    #[test]
    fn quorum_of_plain_replies_verifies() {
        let (material, store) = store(2048);
        let cert = ReplyCert {
            result: Bytes::from_static(b"ok"),
            frames: (0..2).map(|r| signed_reply(&material, r, b"ok")).collect(),
        };
        assert!(cert.verify(&store, BASE, ClientId(7), 1, true));
    }

    #[test]
    fn duplicate_replicas_do_not_count_twice() {
        let (material, store) = store(2048);
        let frame = signed_reply(&material, 0, b"ok");
        let cert = ReplyCert {
            result: Bytes::from_static(b"ok"),
            frames: vec![frame.clone(), frame],
        };
        assert!(!cert.verify(&store, BASE, ClientId(7), 1, true));
    }

    #[test]
    fn mismatched_result_rejected() {
        let (material, store) = store(2048);
        let cert = ReplyCert {
            result: Bytes::from_static(b"other"),
            frames: (0..2).map(|r| signed_reply(&material, r, b"ok")).collect(),
        };
        assert!(!cert.verify(&store, BASE, ClientId(7), 1, true));
    }

    #[test]
    fn junk_frames_are_skipped_not_fatal() {
        let (material, store) = store(2048);
        let mut frames = vec![Bytes::from_static(&[0xde, 0xad])];
        frames.extend((0..2).map(|r| signed_reply(&material, r, b"ok")));
        let cert = ReplyCert {
            result: Bytes::from_static(b"ok"),
            frames,
        };
        assert!(cert.verify(&store, BASE, ClientId(7), 1, true));
    }
}
