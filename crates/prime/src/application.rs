//! The replicated application interface and simple reference applications.

use crate::config::ClientId;
use spire_crypto::Digest;

/// A deterministic outbound message produced by executing an operation,
/// pushed by every replica to a client (e.g. a supervisory command sent to
/// an RTU proxy). Receivers act once `f + 1` replicas push matching
/// notifications.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Notification {
    /// Target client (proxy or HMI).
    pub target: ClientId,
    /// Deterministic per-target sequence number (assigned by the app).
    pub nseq: u64,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// The outcome of executing one operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecResult {
    /// Reply bytes sent to the submitting client.
    pub reply: Vec<u8>,
    /// Additional outbound notifications (e.g. commands to field devices).
    pub notifications: Vec<Notification>,
}

impl ExecResult {
    /// A plain reply with no notifications.
    pub fn reply(reply: Vec<u8>) -> ExecResult {
        ExecResult {
            reply,
            notifications: Vec::new(),
        }
    }
}

/// A deterministic state machine replicated by Prime.
///
/// Implementations **must** be deterministic: identical op sequences applied
/// to identical states must yield identical results, snapshots, digests and
/// notifications on every replica, or safety checking will (correctly) flag
/// divergence.
pub trait Application: Send {
    /// Executes an operation, returning the reply for the submitting client
    /// and any outbound notifications.
    fn execute(&mut self, op: &[u8]) -> ExecResult;

    /// Classifies an operation for tracing (e.g. `"scada.command"`). Only
    /// called when tracing is enabled; `None` leaves the op unlabelled.
    fn classify(&self, _op: &[u8]) -> Option<&'static str> {
        None
    }

    /// Serializes the full state.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state from a snapshot.
    fn restore(&mut self, snapshot: &[u8]);

    /// A digest of the current state (for checkpoints and divergence
    /// detection).
    fn digest(&self) -> Digest;
}

/// A trivial counter application used in tests: any op increments the
/// counter by the first payload byte and returns the new value.
#[derive(Clone, Debug, Default)]
pub struct CounterApp {
    /// Current count.
    pub value: u64,
}

impl Application for CounterApp {
    fn execute(&mut self, op: &[u8]) -> ExecResult {
        self.value = self
            .value
            .wrapping_add(op.first().copied().unwrap_or(1) as u64);
        ExecResult::reply(self.value.to_le_bytes().to_vec())
    }

    fn snapshot(&self) -> Vec<u8> {
        self.value.to_le_bytes().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&snapshot[..8]);
        self.value = u64::from_le_bytes(bytes);
    }

    fn digest(&self) -> Digest {
        spire_crypto::digest(&self.snapshot())
    }
}

/// An order-sensitive register application: ops are appended to a hash
/// chain, so any divergence in execution order changes the digest. Useful
/// for safety tests.
#[derive(Clone, Debug, Default)]
pub struct HashChainApp {
    head: Digest,
    len: u64,
}

impl HashChainApp {
    /// Creates an empty chain.
    pub fn new() -> HashChainApp {
        HashChainApp::default()
    }

    /// Number of executed ops.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if nothing was executed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The chain head.
    pub fn head(&self) -> Digest {
        self.head
    }
}

impl Application for HashChainApp {
    fn execute(&mut self, op: &[u8]) -> ExecResult {
        self.head = spire_crypto::digest_parts(&[&self.head, op]);
        self.len += 1;
        ExecResult::reply(self.head.to_vec())
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = self.head.to_vec();
        out.extend_from_slice(&self.len.to_le_bytes());
        out
    }

    fn restore(&mut self, snapshot: &[u8]) {
        self.head.copy_from_slice(&snapshot[..32]);
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&snapshot[32..40]);
        self.len = u64::from_le_bytes(bytes);
    }

    fn digest(&self) -> Digest {
        spire_crypto::digest(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_snapshot_roundtrip() {
        let mut app = CounterApp::default();
        app.execute(&[5]);
        app.execute(&[7]);
        assert_eq!(app.value, 12);
        let snap = app.snapshot();
        let mut other = CounterApp::default();
        other.restore(&snap);
        assert_eq!(other.value, 12);
        assert_eq!(other.digest(), app.digest());
    }

    #[test]
    fn hash_chain_is_order_sensitive() {
        let mut a = HashChainApp::new();
        a.execute(b"x");
        a.execute(b"y");
        let mut b = HashChainApp::new();
        b.execute(b"y");
        b.execute(b"x");
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn hash_chain_snapshot_roundtrip() {
        let mut a = HashChainApp::new();
        a.execute(b"1");
        a.execute(b"2");
        let mut b = HashChainApp::new();
        b.restore(&a.snapshot());
        assert_eq!(a.digest(), b.digest());
        b.execute(b"3");
        a.execute(b"3");
        assert_eq!(a.digest(), b.digest());
    }
}
