//! A replicated key-value store application.
//!
//! Spire replicates a SCADA master, but Prime is a general BFT engine;
//! this module provides a second, self-contained application — a string
//! key-value store with compare-and-swap — used by the `kv_store` example
//! and as a template for building other replicated services.

use crate::application::{Application, ExecResult};
use spire_crypto::Digest;
use spire_sim::{WireError, WireReader, WireWriter};
use std::collections::BTreeMap;

/// Operations of the replicated KV store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key.
    Get {
        /// Key.
        key: String,
    },
    /// Write a key.
    Put {
        /// Key.
        key: String,
        /// New value.
        value: String,
    },
    /// Delete a key.
    Delete {
        /// Key.
        key: String,
    },
    /// Write `new` only if the current value equals `expected`
    /// (`None` = key absent).
    Cas {
        /// Key.
        key: String,
        /// Expected current value.
        expected: Option<String>,
        /// Value to install on match.
        new: String,
    },
}

impl KvOp {
    /// Encodes the op for submission as a Prime client payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            KvOp::Get { key } => {
                w.u8(1).string(key);
            }
            KvOp::Put { key, value } => {
                w.u8(2).string(key).string(value);
            }
            KvOp::Delete { key } => {
                w.u8(3).string(key);
            }
            KvOp::Cas { key, expected, new } => {
                w.u8(4).string(key);
                match expected {
                    Some(v) => {
                        w.u8(1).string(v);
                    }
                    None => {
                        w.u8(0);
                    }
                }
                w.string(new);
            }
        }
        w.finish().to_vec()
    }

    /// Decodes an op.
    pub fn decode(bytes: &[u8]) -> Result<KvOp, WireError> {
        let mut r = WireReader::new(bytes);
        let op = match r.u8()? {
            1 => KvOp::Get { key: r.string()? },
            2 => KvOp::Put {
                key: r.string()?,
                value: r.string()?,
            },
            3 => KvOp::Delete { key: r.string()? },
            4 => {
                let key = r.string()?;
                let expected = match r.u8()? {
                    0 => None,
                    1 => Some(r.string()?),
                    other => return Err(WireError::BadTag(other)),
                };
                KvOp::Cas {
                    key,
                    expected,
                    new: r.string()?,
                }
            }
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(op)
    }
}

/// Replies of the KV store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvReply {
    /// Value of a key (None = absent).
    Value(Option<String>),
    /// Mutation applied.
    Ok,
    /// CAS failed: the actual current value.
    CasFailed(Option<String>),
    /// Malformed op.
    Error,
}

impl KvReply {
    /// Encodes the reply.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            KvReply::Value(None) => {
                w.u8(1).u8(0);
            }
            KvReply::Value(Some(v)) => {
                w.u8(1).u8(1).string(v);
            }
            KvReply::Ok => {
                w.u8(2);
            }
            KvReply::CasFailed(None) => {
                w.u8(3).u8(0);
            }
            KvReply::CasFailed(Some(v)) => {
                w.u8(3).u8(1).string(v);
            }
            KvReply::Error => {
                w.u8(4);
            }
        }
        w.finish().to_vec()
    }

    /// Decodes a reply.
    pub fn decode(bytes: &[u8]) -> Result<KvReply, WireError> {
        let mut r = WireReader::new(bytes);
        let reply = match r.u8()? {
            1 => match r.u8()? {
                0 => KvReply::Value(None),
                1 => KvReply::Value(Some(r.string()?)),
                other => return Err(WireError::BadTag(other)),
            },
            2 => KvReply::Ok,
            3 => match r.u8()? {
                0 => KvReply::CasFailed(None),
                1 => KvReply::CasFailed(Some(r.string()?)),
                other => return Err(WireError::BadTag(other)),
            },
            4 => KvReply::Error,
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(reply)
    }
}

/// The replicated key-value state machine.
#[derive(Clone, Debug, Default)]
pub struct KvApp {
    map: BTreeMap<String, String>,
    writes: u64,
}

impl KvApp {
    /// Creates an empty store.
    pub fn new() -> KvApp {
        KvApp::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct read access (tests/inspection).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(|s| s.as_str())
    }
}

impl Application for KvApp {
    fn execute(&mut self, op: &[u8]) -> ExecResult {
        let Ok(op) = KvOp::decode(op) else {
            return ExecResult::reply(KvReply::Error.encode());
        };
        let reply = match op {
            KvOp::Get { key } => KvReply::Value(self.map.get(&key).cloned()),
            KvOp::Put { key, value } => {
                self.map.insert(key, value);
                self.writes += 1;
                KvReply::Ok
            }
            KvOp::Delete { key } => {
                self.map.remove(&key);
                self.writes += 1;
                KvReply::Ok
            }
            KvOp::Cas { key, expected, new } => {
                let current = self.map.get(&key).cloned();
                if current == expected {
                    self.map.insert(key, new);
                    self.writes += 1;
                    KvReply::Ok
                } else {
                    KvReply::CasFailed(current)
                }
            }
        };
        ExecResult::reply(reply.encode())
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.writes).u32(self.map.len() as u32);
        for (k, v) in &self.map {
            w.string(k).string(v);
        }
        w.finish().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let mut r = WireReader::new(snapshot);
        let Ok(writes) = r.u64() else { return };
        let Ok(n) = r.u32() else { return };
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let (Ok(k), Ok(v)) = (r.string(), r.string()) else {
                return;
            };
            map.insert(k, v);
        }
        self.map = map;
        self.writes = writes;
    }

    fn digest(&self) -> Digest {
        spire_crypto::digest(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(app: &mut KvApp, op: KvOp) -> KvReply {
        KvReply::decode(&app.execute(&op.encode()).reply).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let mut app = KvApp::new();
        assert_eq!(
            exec(&mut app, KvOp::Get { key: "a".into() }),
            KvReply::Value(None)
        );
        assert_eq!(
            exec(
                &mut app,
                KvOp::Put {
                    key: "a".into(),
                    value: "1".into()
                }
            ),
            KvReply::Ok
        );
        assert_eq!(
            exec(&mut app, KvOp::Get { key: "a".into() }),
            KvReply::Value(Some("1".into()))
        );
        assert_eq!(
            exec(&mut app, KvOp::Delete { key: "a".into() }),
            KvReply::Ok
        );
        assert_eq!(
            exec(&mut app, KvOp::Get { key: "a".into() }),
            KvReply::Value(None)
        );
        assert!(app.is_empty());
    }

    #[test]
    fn cas_semantics() {
        let mut app = KvApp::new();
        // CAS on an absent key with expected None succeeds.
        assert_eq!(
            exec(
                &mut app,
                KvOp::Cas {
                    key: "x".into(),
                    expected: None,
                    new: "1".into()
                }
            ),
            KvReply::Ok
        );
        // Mismatched expectation fails and reports the current value.
        assert_eq!(
            exec(
                &mut app,
                KvOp::Cas {
                    key: "x".into(),
                    expected: Some("0".into()),
                    new: "2".into()
                }
            ),
            KvReply::CasFailed(Some("1".into()))
        );
        assert_eq!(app.get("x"), Some("1"));
        // Matching expectation succeeds.
        assert_eq!(
            exec(
                &mut app,
                KvOp::Cas {
                    key: "x".into(),
                    expected: Some("1".into()),
                    new: "2".into()
                }
            ),
            KvReply::Ok
        );
        assert_eq!(app.get("x"), Some("2"));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut app = KvApp::new();
        for i in 0..20 {
            exec(
                &mut app,
                KvOp::Put {
                    key: format!("k{i}"),
                    value: format!("v{i}"),
                },
            );
        }
        let mut other = KvApp::new();
        other.restore(&app.snapshot());
        assert_eq!(other.digest(), app.digest());
        assert_eq!(other.len(), 20);
        assert_eq!(other.get("k7"), Some("v7"));
    }

    #[test]
    fn op_and_reply_codecs_roundtrip() {
        for op in [
            KvOp::Get { key: "k".into() },
            KvOp::Put {
                key: "k".into(),
                value: "v".into(),
            },
            KvOp::Delete { key: "k".into() },
            KvOp::Cas {
                key: "k".into(),
                expected: Some("e".into()),
                new: "n".into(),
            },
            KvOp::Cas {
                key: "k".into(),
                expected: None,
                new: "n".into(),
            },
        ] {
            assert_eq!(KvOp::decode(&op.encode()).unwrap(), op);
        }
        for reply in [
            KvReply::Value(None),
            KvReply::Value(Some("v".into())),
            KvReply::Ok,
            KvReply::CasFailed(None),
            KvReply::CasFailed(Some("v".into())),
            KvReply::Error,
        ] {
            assert_eq!(KvReply::decode(&reply.encode()).unwrap(), reply);
        }
    }

    #[test]
    fn malformed_op_yields_error_reply() {
        let mut app = KvApp::new();
        let out = app.execute(&[0xff, 0x00]);
        assert_eq!(KvReply::decode(&out.reply).unwrap(), KvReply::Error);
    }

    #[test]
    fn digest_reflects_writes_history() {
        // Two stores with the same final map but different histories have
        // different digests (writes counter), keeping checkpoint comparison
        // strict.
        let mut a = KvApp::new();
        let mut b = KvApp::new();
        exec(
            &mut a,
            KvOp::Put {
                key: "k".into(),
                value: "v".into(),
            },
        );
        exec(
            &mut b,
            KvOp::Put {
                key: "k".into(),
                value: "v".into(),
            },
        );
        exec(
            &mut b,
            KvOp::Put {
                key: "k".into(),
                value: "v".into(),
            },
        );
        assert_ne!(a.digest(), b.digest());
    }
}
