//! Prime: Byzantine fault-tolerant state-machine replication with
//! performance guarantees under attack — the replication engine of Spire
//! (Babay et al., DSN 2018), reproduced from scratch.
//!
//! Classic leader-based BFT protocols stay *safe* under a malicious leader
//! but can be slowed to a crawl: a leader that delays proposals just below
//! the crash-detection timeout is never replaced. Prime (Amir, Coan,
//! Kirsch, Lane) adds three mechanisms that this crate reproduces:
//!
//! 1. **Pre-ordering**: clients' operations are disseminated and
//!    acknowledged by all replicas *before* the leader is involved, so the
//!    leader's only job is periodically proposing a matrix of signed
//!    cumulative acknowledgements — it cannot reorder or censor individual
//!    operations.
//! 2. **Suspect-leader**: replicas continuously measure round-trip times
//!    and the leader's turnaround, and replace any leader slower than a
//!    correct one could be (bounded-delay guarantee).
//! 3. **Proactive recovery support**: with `n = 3f + 2k + 1` replicas the
//!    system tolerates `f` compromised **and** `k` simultaneously
//!    recovering replicas; recovering replicas rejoin via proof-carrying
//!    state transfer.
//!
//! The [`config::ProtocolMode::PbftLike`] mode disables mechanism 2 (and
//! pings), providing the baseline the paper compares against.
//!
//! Replicas are [`spire_sim::Process`]es; they communicate over direct sim
//! links ([`net::DirectNet`]) or over Spines overlays ([`net::SpinesNet`]).

pub mod application;
pub mod behavior;
pub mod cert;
pub mod client;
pub mod config;
pub mod inspect;
pub mod kv;
pub mod model;
pub mod msg;
pub mod net;
pub mod replica;

pub use application::{Application, CounterApp, ExecResult, HashChainApp, Notification};
pub use behavior::ByzBehavior;
pub use cert::ReplyCert;
pub use client::TestClient;
pub use config::{ClientId, PrimeConfig, ProtocolMode, ReplicaId};
pub use inspect::Inspection;
pub use kv::{KvApp, KvOp, KvReply};
pub use model::{Effect, Input, ModelReplica};
pub use msg::{decode_enclosed, ClientOp, PrimeMsg};
pub use net::{DirectNet, ReplicaNet, SpinesNet};
pub use replica::Replica;
