//! Transport abstraction: Prime replicas talk to each other and to clients
//! either directly over simulation links (unit tests, LAN benchmarks) or
//! through Spines overlays (full Spire deployments).

use crate::config::{ClientId, ReplicaId};
use bytes::Bytes;
use spire_sim::{Context, ProcessId};
use spire_spines::{Dissemination, OverlayAddr, SpinesPort};
use std::collections::BTreeMap;

/// How a replica reaches peers and clients.
pub trait ReplicaNet: Send {
    /// Called from the replica's `on_start` (e.g. to attach overlay ports).
    fn start(&mut self, ctx: &mut Context<'_>);

    /// Sends a payload to another replica.
    fn send_replica(&mut self, ctx: &mut Context<'_>, to: ReplicaId, payload: Bytes);

    /// Sends a payload to a client.
    fn send_client(&mut self, ctx: &mut Context<'_>, to: ClientId, payload: Bytes);

    /// Extracts the protocol payload from a raw incoming simulation
    /// message, or `None` if it is transport noise.
    fn unwrap(&self, from: ProcessId, bytes: &Bytes) -> Option<Bytes>;
}

/// Direct links: replica and client process ids are known statically.
#[derive(Clone, Debug, Default)]
pub struct DirectNet {
    /// Replica id -> process.
    pub replicas: Vec<ProcessId>,
    /// Client id -> process.
    pub clients: BTreeMap<u32, ProcessId>,
}

impl ReplicaNet for DirectNet {
    fn start(&mut self, _ctx: &mut Context<'_>) {}

    fn send_replica(&mut self, ctx: &mut Context<'_>, to: ReplicaId, payload: Bytes) {
        if let Some(pid) = self.replicas.get(to.0 as usize) {
            ctx.send(*pid, payload);
        }
    }

    fn send_client(&mut self, ctx: &mut Context<'_>, to: ClientId, payload: Bytes) {
        if let Some(pid) = self.clients.get(&to.0) {
            ctx.send(*pid, payload);
        }
    }

    fn unwrap(&self, _from: ProcessId, bytes: &Bytes) -> Option<Bytes> {
        Some(bytes.clone())
    }
}

/// Spines transport: replicas are clients of an internal overlay; clients
/// (proxies/HMIs) are reached through an external overlay.
#[derive(Clone, Debug)]
pub struct SpinesNet {
    /// Port on the internal overlay (replica <-> replica).
    pub internal: SpinesPort,
    /// Overlay address of each replica on the internal network.
    pub replica_addrs: Vec<OverlayAddr>,
    /// Port on the external overlay (replica <-> proxies), if any.
    pub external: Option<SpinesPort>,
    /// Overlay address of each client on the external network.
    pub client_addrs: BTreeMap<u32, OverlayAddr>,
    /// Dissemination mode for replica traffic (the paper uses Spines'
    /// resilient dissemination for the internal network).
    pub replica_mode: Dissemination,
    /// Dissemination mode for client-bound traffic.
    pub client_mode: Dissemination,
    /// Request hop-by-hop reliability.
    pub reliable: bool,
}

impl ReplicaNet for SpinesNet {
    fn start(&mut self, ctx: &mut Context<'_>) {
        self.internal.attach(ctx);
        if let Some(external) = &self.external {
            external.attach(ctx);
        }
    }

    fn send_replica(&mut self, ctx: &mut Context<'_>, to: ReplicaId, payload: Bytes) {
        if let Some(addr) = self.replica_addrs.get(to.0 as usize).copied() {
            self.internal
                .send(ctx, addr, self.replica_mode, self.reliable, payload);
        }
    }

    fn send_client(&mut self, ctx: &mut Context<'_>, to: ClientId, payload: Bytes) {
        let port = self.external.as_ref().unwrap_or(&self.internal);
        if let Some(addr) = self.client_addrs.get(&to.0).copied() {
            port.send(ctx, addr, self.client_mode, self.reliable, payload);
        }
    }

    fn unwrap(&self, _from: ProcessId, bytes: &Bytes) -> Option<Bytes> {
        SpinesPort::decode_deliver(bytes).map(|(_, payload)| payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_net_unwrap_is_identity() {
        let net = DirectNet::default();
        let payload = Bytes::from_static(b"abc");
        assert_eq!(net.unwrap(ProcessId(0), &payload), Some(payload.clone()));
    }
}
