//! Pure-step seam over [`Replica`]: `(state, input) -> (state', outputs)`.
//!
//! The replica's `Process` implementation funnels every side effect —
//! message sends, timer arming/cancellation, metric updates — through the
//! [`Backend`] behind its `Context`, and reads time only via `ctx.now()`.
//! That makes the replica a deterministic state machine whose only inputs
//! are `on_start` / `on_message` / `on_timer` invocations at explicit
//! times. [`ModelReplica`] exploits this: it owns a recording backend with
//! an *injected* clock and a seeded RNG, so a single call to
//! [`ModelReplica::step`] is a pure transition — all nondeterminism
//! (delivery order, timer firing order, wall time) is chosen by the
//! caller, and all outputs come back as an explicit [`Effect`] list
//! instead of being written into a live network substrate.
//!
//! The schedule explorer in `crates/explore` drives clusters of
//! `ModelReplica`s exhaustively (tiny configs) or randomly (adversarial
//! schedules), checking safety invariants after every step. Because the
//! transition is pure, any interleaving it finds is replayable bit-for-bit
//! from the recorded choice sequence alone.

use crate::replica::Replica;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spire_sim::{Backend, Context, Process, ProcessId, Span, Time, TimerId};
use std::collections::BTreeMap;

/// Whether the intentionally-seeded ordering-quorum bug is compiled in
/// (feature `seeded-commit-bug`). The explorer records this in replay
/// artifacts so a reproduction knows which build to use.
pub const SEEDED_BUG_ACTIVE: bool = cfg!(feature = "seeded-commit-bug");

/// One injected nondeterministic event.
#[derive(Clone, Debug)]
pub enum Input {
    /// The process starts (fires `on_start`; arms the initial timers).
    Start,
    /// A frame is delivered from `from`.
    Deliver { from: ProcessId, bytes: Bytes },
    /// The pending timer with this tag fires.
    Timer { tag: u64 },
}

/// One captured side effect of a step.
#[derive(Clone, Debug)]
pub enum Effect {
    /// A frame sent to `to` (replica or client process).
    Send { to: ProcessId, bytes: Bytes },
    /// A timer armed `delay` after the step's injected time.
    SetTimer { delay: Span, tag: u64, id: TimerId },
    /// A pending timer cancelled (no-op if it already fired).
    CancelTimer { id: TimerId },
}

/// A [`Backend`] that records effects instead of performing them. Time is
/// whatever the caller injected; the RNG is seeded (the replica itself
/// never consults it, but the trait requires one); metrics aggregate into
/// a counter map so protocol instrumentation stays observable.
struct RecordingBackend {
    now: Time,
    rng: StdRng,
    next_timer: u64,
    effects: Vec<Effect>,
    counters: BTreeMap<String, u64>,
}

impl Backend for RecordingBackend {
    fn now(&self) -> Time {
        self.now
    }

    fn send_from(&mut self, _from: ProcessId, to: ProcessId, bytes: Bytes) {
        self.effects.push(Effect::Send { to, bytes });
    }

    fn set_timer(&mut self, _me: ProcessId, delay: Span, tag: u64) -> TimerId {
        self.next_timer += 1;
        let id = TimerId::from_raw(self.next_timer);
        self.effects.push(Effect::SetTimer { delay, tag, id });
        id
    }

    fn cancel_timer(&mut self, _me: ProcessId, timer: TimerId) {
        self.effects.push(Effect::CancelTimer { id: timer });
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn count(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    fn record(&mut self, _name: &str, _value: f64) {}

    fn observe(&mut self, _name: &str, _value: u64) {}
}

/// A [`Replica`] wrapped behind the pure step seam.
pub struct ModelReplica {
    replica: Replica,
    pid: ProcessId,
    backend: RecordingBackend,
}

impl ModelReplica {
    /// Wraps `replica`, which will observe itself running as process
    /// `pid`. `seed` initialises the injected RNG (per-replica, so two
    /// model replicas never share randomness).
    pub fn new(replica: Replica, pid: ProcessId, seed: u64) -> ModelReplica {
        ModelReplica {
            replica,
            pid,
            backend: RecordingBackend {
                now: Time::ZERO,
                rng: StdRng::seed_from_u64(seed),
                next_timer: 0,
                effects: Vec::new(),
                counters: BTreeMap::new(),
            },
        }
    }

    /// The process id this replica believes it runs as.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Applies one input at the injected time and returns every side
    /// effect the replica produced, in emission order. The caller owns the
    /// clock: `now` must be monotonically non-decreasing across steps.
    pub fn step(&mut self, now: Time, input: Input) -> Vec<Effect> {
        debug_assert!(now >= self.backend.now, "model clock must not regress");
        self.backend.now = now;
        let mut ctx = Context::new(&mut self.backend, self.pid);
        match input {
            Input::Start => self.replica.on_start(&mut ctx),
            Input::Deliver { from, bytes } => self.replica.on_message(&mut ctx, from, &bytes),
            Input::Timer { tag } => self.replica.on_timer(&mut ctx, tag),
        }
        std::mem::take(&mut self.backend.effects)
    }

    /// A 64-bit digest of the replica's protocol-relevant state (see
    /// [`Replica::state_digest`]); the explorer's interleaving
    /// deduplication hashes these across the cluster.
    pub fn state_digest(&self) -> u64 {
        self.replica.state_digest()
    }

    /// Aggregated counter metrics recorded so far.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.backend.counters
    }

    /// Read access to the wrapped replica.
    pub fn replica(&self) -> &Replica {
        &self.replica
    }
}
