//! White-box inspection of replica state for invariant checking.
//!
//! Replicas publish their execution history into a shared registry after
//! every executed operation; tests and the red-team harness use it to check
//! **safety** (all correct replicas execute the same op sequence — their
//! execution hash chains are prefix-compatible) and **liveness** (the
//! executed-op counts advance).

use spire_crypto::Digest;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Execution record of one replica.
///
/// `exec_chain[i]` is the chain head after global op number
/// `chain_offset + i + 1`. A replica that state-transferred resumes its
/// chain at the checkpoint's op count (the head survives inside the
/// snapshot), so prefix comparisons remain sound across recoveries.
#[derive(Clone, Debug, Default)]
pub struct ReplicaRecord {
    /// Current view.
    pub view: u64,
    /// Highest executed matrix sequence.
    pub last_executed: u64,
    /// Total ops executed since genesis (including pre-recovery history).
    pub ops_executed: u64,
    /// Global op index before the first entry of `exec_chain`.
    pub chain_offset: u64,
    /// Hash chain value after each executed op from `chain_offset`.
    pub exec_chain: Vec<Digest>,
    /// Application digest after the latest execution.
    pub app_digest: Digest,
    /// Restart count of this replica process. A recovery legitimately
    /// rewinds `view`/`last_executed`, so monotonicity invariants only
    /// apply within one incarnation.
    pub incarnation: u64,
    /// Recent committed matrices as `(view, seq, chain_head)` — the chain
    /// head after executing matrix `seq`. Bounded ring (newest last); the
    /// invariant checker cross-references these for at-most-one commit
    /// per `(view, seq)` and per `seq` across replicas.
    pub recent_commits: Vec<(u64, u64, Digest)>,
    /// Recent checkpoints as `(seq, digest)`, bounded ring (newest last).
    /// Correct replicas checkpointing at the same seq must agree on the
    /// digest, and each replica's checkpoint seqs must advance.
    pub recent_checkpoints: Vec<(u64, Digest)>,
    /// Whether the replica is currently in state-transfer recovery. Set on
    /// recovery start, cleared when the transfer (or recovery fallback)
    /// completes; the health engine grades such replicas `degraded` and
    /// the invariant checker bounds how long the flag may stay up.
    pub recovering: bool,
    /// Highest contiguously committed matrix sequence (ordering progress;
    /// execution may trail this while pre-order data is reconciled).
    pub commit_aru: u64,
    /// Highest sequence this replica has proposed (leaders only advance it;
    /// a gap of `proposal_window` above `commit_aru` blocks new proposals).
    pub last_proposed: u64,
    /// Pre-order entries currently known-missing (awaiting reconciliation).
    pub missing_po: u64,
    /// Whether a view change is in progress on this replica.
    pub in_view_change: bool,
    /// Why execution trails `commit_aru`, if it does: 0 = it does not
    /// (idle), 1 = the committed matrix for `last_executed + 1` is absent
    /// (ordering hole), 2 = the matrix is present but pre-order data is
    /// still being reconciled.
    pub exec_stall: u8,
}

/// Bounded history sizes for the per-replica rings above. Large enough
/// that a 1 s-cadence checker never misses entries, small enough that
/// inspection snapshots stay cheap.
pub const RECENT_COMMITS_CAP: usize = 512;
pub const RECENT_CHECKPOINTS_CAP: usize = 64;

impl ReplicaRecord {
    /// Appends a commit record, evicting the oldest past the cap.
    pub fn push_commit(&mut self, view: u64, seq: u64, head: Digest) {
        if self.recent_commits.len() >= RECENT_COMMITS_CAP {
            let excess = self.recent_commits.len() + 1 - RECENT_COMMITS_CAP;
            self.recent_commits.drain(..excess);
        }
        self.recent_commits.push((view, seq, head));
    }

    /// Appends a checkpoint record, evicting the oldest past the cap.
    pub fn push_checkpoint(&mut self, seq: u64, digest: Digest) {
        if self.recent_checkpoints.len() >= RECENT_CHECKPOINTS_CAP {
            let excess = self.recent_checkpoints.len() + 1 - RECENT_CHECKPOINTS_CAP;
            self.recent_checkpoints.drain(..excess);
        }
        self.recent_checkpoints.push((seq, digest));
    }
}

/// Shared registry: replica id -> record.
#[derive(Clone, Debug, Default)]
pub struct Inspection {
    inner: Arc<Mutex<BTreeMap<u32, ReplicaRecord>>>,
}

impl Inspection {
    /// Creates an empty registry.
    pub fn new() -> Inspection {
        Inspection::default()
    }

    /// Updates a replica's record (called by the replica itself).
    pub fn update(&self, replica: u32, f: impl FnOnce(&mut ReplicaRecord)) {
        let mut map = self.inner.lock().expect("poisoned");
        f(map.entry(replica).or_default())
    }

    /// Reads a snapshot of all records.
    pub fn records(&self) -> BTreeMap<u32, ReplicaRecord> {
        self.inner.lock().expect("poisoned").clone()
    }

    /// Checks pairwise prefix-compatibility of the execution chains of the
    /// given replicas over their overlapping global op range; returns the
    /// violating pair if safety was broken.
    pub fn check_safety(&self, replicas: &[u32]) -> Result<(), (u32, u32)> {
        let map = self.inner.lock().expect("poisoned");
        for (idx, a) in replicas.iter().enumerate() {
            for b in &replicas[idx + 1..] {
                let (Some(ra), Some(rb)) = (map.get(a), map.get(b)) else {
                    continue;
                };
                let start = ra.chain_offset.max(rb.chain_offset);
                let end = (ra.chain_offset + ra.exec_chain.len() as u64)
                    .min(rb.chain_offset + rb.exec_chain.len() as u64);
                for i in start..end {
                    let da = ra.exec_chain[(i - ra.chain_offset) as usize];
                    let db = rb.exec_chain[(i - rb.chain_offset) as usize];
                    if da != db {
                        return Err((*a, *b));
                    }
                }
            }
        }
        Ok(())
    }

    /// The minimum ops-executed count across the given replicas.
    pub fn min_executed(&self, replicas: &[u32]) -> u64 {
        let map = self.inner.lock().expect("poisoned");
        replicas
            .iter()
            .map(|r| map.get(r).map(|rec| rec.ops_executed).unwrap_or(0))
            .min()
            .unwrap_or(0)
    }

    /// The maximum ops-executed count across all replicas.
    pub fn max_executed(&self) -> u64 {
        self.inner
            .lock()
            .expect("poisoned")
            .values()
            .map(|r| r.ops_executed)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_check_detects_divergence() {
        let insp = Inspection::new();
        insp.update(0, |r| {
            r.exec_chain = vec![[1; 32], [2; 32]];
        });
        insp.update(1, |r| {
            r.exec_chain = vec![[1; 32], [2; 32], [3; 32]];
        });
        insp.update(2, |r| {
            r.exec_chain = vec![[1; 32], [9; 32]];
        });
        assert!(insp.check_safety(&[0, 1]).is_ok());
        assert_eq!(insp.check_safety(&[0, 1, 2]), Err((0, 2)));
        assert!(insp.check_safety(&[7, 8]).is_ok()); // unknown replicas skip
    }

    #[test]
    fn safety_check_respects_chain_offsets() {
        let insp = Inspection::new();
        // Replica 0 has the full history; replica 1 recovered at op 2 and
        // only has entries from there.
        insp.update(0, |r| {
            r.exec_chain = vec![[1; 32], [2; 32], [3; 32], [4; 32]];
        });
        insp.update(1, |r| {
            r.chain_offset = 2;
            r.exec_chain = vec![[3; 32], [4; 32]];
        });
        assert!(insp.check_safety(&[0, 1]).is_ok());
        // A divergence inside the overlap is still caught.
        insp.update(1, |r| r.exec_chain[1] = [9; 32]);
        assert_eq!(insp.check_safety(&[0, 1]), Err((0, 1)));
    }

    #[test]
    fn executed_counters() {
        let insp = Inspection::new();
        insp.update(0, |r| r.ops_executed = 5);
        insp.update(1, |r| r.ops_executed = 9);
        assert_eq!(insp.min_executed(&[0, 1]), 5);
        assert_eq!(insp.max_executed(), 9);
        assert_eq!(insp.min_executed(&[2]), 0);
    }
}
