//! Prime replication parameters.

use spire_sim::Span;

/// Identifies a replica (0-based, dense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ReplicaId(pub u32);

impl std::fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a client of the replicated service (proxy or HMI).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(pub u32);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Protocol mode: full Prime, or a PBFT-style baseline without Prime's
/// performance-under-attack defenses (used for the paper's comparisons).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProtocolMode {
    /// Prime: pre-ordering fairness + suspect-leader turnaround monitoring.
    #[default]
    Prime,
    /// Leader-based BFT with only a conservative crash timeout; a malicious
    /// leader can delay every proposal just below the timeout indefinitely.
    PbftLike,
}

/// Static configuration shared by all replicas of one Prime instance.
#[derive(Clone, Debug)]
pub struct PrimeConfig {
    /// Number of replicas (`n`).
    pub n: u32,
    /// Tolerated Byzantine replicas (`f`).
    pub f: u32,
    /// Tolerated simultaneously recovering replicas (`k`).
    pub k: u32,
    /// Protocol mode.
    pub mode: ProtocolMode,
    /// Batch flush interval for PO-Requests.
    pub po_interval: Span,
    /// Maximum ops per PO-Request batch.
    pub po_batch: usize,
    /// PO-Summary broadcast interval.
    pub summary_interval: Span,
    /// Leader's pre-prepare (proposal) interval, Δpp.
    pub pre_prepare_interval: Span,
    /// Ping interval for RTT measurement (suspect-leader).
    pub ping_interval: Span,
    /// Multiplier over the measured network round trip allowed to the
    /// leader before suspicion (Prime's K_lat).
    pub tat_allowance: f64,
    /// Hard timeout with no ordering progress before suspecting the leader
    /// (the only defense in [`ProtocolMode::PbftLike`]).
    pub progress_timeout: Span,
    /// Take a checkpoint every this many committed matrices.
    pub checkpoint_interval: u64,
    /// Retry interval for fetching missing PO-Requests (reconciliation).
    pub recon_interval: Span,
    /// A recovering replica that finds no checkpoint anywhere for this long
    /// rejoins from genesis and catches up via reconciliation instead.
    pub recovery_genesis_timeout: Span,
    /// State transfer splits the execution snapshot into chunks of this
    /// many bytes; each chunk is erasure-encoded independently so a
    /// recovering replica reconstructs from any `f+1` per-chunk shares.
    pub state_chunk_bytes: usize,
    /// Initial per-chunk retry timeout: chunks still missing this long
    /// after the manifest is pinned are re-requested from alternate
    /// responders. Doubles on every retry round up to
    /// [`Self::chunk_retry_max`].
    pub chunk_retry_timeout: Span,
    /// Ceiling for the exponential per-chunk retry backoff.
    pub chunk_retry_max: Span,
    /// Manifest/share accumulators for a checkpoint that made no progress
    /// for this long are evicted (bounds memory when responders go mute
    /// or serve garbage).
    pub state_accum_deadline: Span,
    /// Crypto id base for replicas in the key store.
    pub replica_key_base: u32,
    /// Crypto id base for clients in the key store.
    pub client_key_base: u32,
    /// Amortize signatures: queue PO-Acks/Prepares/Commits/Replies and
    /// sign a single Merkle root over the batch, attaching per-message
    /// inclusion proofs instead of individual signatures.
    pub batch_sign: bool,
    /// Maximum time queued messages wait for their Merkle root signature:
    /// the batch flushes this long after its first message is queued (or
    /// immediately once 64 messages accumulate). Longer windows amortize
    /// better at the cost of up to this much latency per protocol hop.
    pub batch_interval: Span,
    /// Capacity of each bounded verification cache (client ops, summary
    /// rows, batch roots); 0 disables caching.
    pub verify_cache: usize,
    /// How far ahead of the committed prefix the leader may propose: the
    /// number of ordering sequences that may be in flight (pre-prepared
    /// but not yet committed) at once. 1 degenerates to strictly serial
    /// ordering; wider windows pipeline the Prepare/Commit rounds.
    pub proposal_window: u64,
    /// Propose as soon as fresh summary rows arrive (subject to
    /// `eager_propose_gap` and the window) instead of waiting for the
    /// next `pre_prepare_interval` tick. The timer keeps running as a
    /// backstop; eager proposals just stop the ordering pipeline from
    /// quantizing end-to-end latency to the proposal interval.
    pub eager_propose: bool,
    /// Minimum gap between consecutive eager proposals, bounding the
    /// leader's proposal rate (and thus matrix-broadcast load) under
    /// heavy summary churn.
    pub eager_propose_gap: Span,
    /// Coalesce all frames bound for the same peer within one activation
    /// into a single multi-frame container, sealed (when session MACs
    /// are on) and shipped through the overlay once. Off, every message
    /// pays its own seal + dissemination.
    pub link_batch: bool,
}

impl PrimeConfig {
    /// A configuration for `n = 3f + 2k + 1` replicas with sane defaults.
    pub fn new(f: u32, k: u32) -> PrimeConfig {
        PrimeConfig {
            n: 3 * f + 2 * k + 1,
            f,
            k,
            mode: ProtocolMode::Prime,
            po_interval: Span::millis(5),
            po_batch: 64,
            summary_interval: Span::millis(10),
            pre_prepare_interval: Span::millis(30),
            ping_interval: Span::millis(500),
            tat_allowance: 2.5,
            progress_timeout: Span::secs(5),
            checkpoint_interval: 50,
            recon_interval: Span::millis(50),
            recovery_genesis_timeout: Span::secs(3),
            state_chunk_bytes: 1024,
            chunk_retry_timeout: Span::millis(200),
            chunk_retry_max: Span::secs(2),
            state_accum_deadline: Span::secs(2),
            replica_key_base: 1000,
            client_key_base: 2000,
            batch_sign: false,
            batch_interval: Span::millis(2),
            verify_cache: 4096,
            proposal_window: 8,
            eager_propose: true,
            eager_propose_gap: Span::millis(5),
            link_batch: true,
        }
    }

    /// Quorum needed to order (prepare/commit/new-view): `2f + k + 1`.
    pub fn ordering_quorum(&self) -> usize {
        (2 * self.f + self.k + 1) as usize
    }

    /// Acks (from others) needed to pre-order a request: `2f + k`.
    pub fn po_ack_quorum(&self) -> usize {
        (2 * self.f + self.k) as usize
    }

    /// Summaries that must cover an op before execution: `f + k + 1`
    /// (guarantees a correct, currently-up replica can supply the content).
    pub fn cover_quorum(&self) -> usize {
        (self.f + self.k + 1) as usize
    }

    /// Suspicions needed to change view: `f + k + 1` (at least one correct
    /// up replica among them).
    pub fn suspect_quorum(&self) -> usize {
        (self.f + self.k + 1) as usize
    }

    /// The leader of a view.
    pub fn leader_of(&self, view: u64) -> ReplicaId {
        ReplicaId((view % self.n as u64) as u32)
    }

    /// Validates the resilience inequality `n >= 3f + 2k + 1`.
    pub fn is_valid(&self) -> bool {
        self.n > 3 * self.f + 2 * self.k && self.n > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorums_f1_k1() {
        let c = PrimeConfig::new(1, 1);
        assert_eq!(c.n, 6);
        assert!(c.is_valid());
        assert_eq!(c.ordering_quorum(), 4);
        assert_eq!(c.po_ack_quorum(), 3);
        assert_eq!(c.cover_quorum(), 3);
        assert_eq!(c.suspect_quorum(), 3);
    }

    #[test]
    fn quorums_f1_k0() {
        let c = PrimeConfig::new(1, 0);
        assert_eq!(c.n, 4); // classic PBFT sizing
        assert_eq!(c.ordering_quorum(), 3);
    }

    #[test]
    fn leader_rotation() {
        let c = PrimeConfig::new(1, 1);
        assert_eq!(c.leader_of(0), ReplicaId(0));
        assert_eq!(c.leader_of(7), ReplicaId(1));
    }

    #[test]
    fn quorum_intersection_property() {
        // Any two ordering quorums intersect in at least f+1 replicas, and
        // the system stays live with f faulty + k recovering.
        for f in 0..4u32 {
            for k in 0..3u32 {
                let c = PrimeConfig::new(f, k);
                let q = c.ordering_quorum() as u32;
                assert!(2 * q > c.n + f, "quorum intersection violated");
                assert!(c.n - f - k >= q, "liveness violated");
            }
        }
    }
}
