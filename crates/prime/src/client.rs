//! A test client that submits signed operations to the replica group and
//! accepts results once `f + 1` matching replies arrive.

use crate::config::{ClientId, PrimeConfig, ReplicaId};
use crate::msg::{ClientOp, PrimeMsg};
use bytes::Bytes;
use spire_crypto::keys::Signer;
use spire_sim::{Context, Process, ProcessId, Span, Time};
use std::collections::BTreeMap;

const TIMER_SEND: u64 = 1;

/// Routing used by the client to reach replicas.
pub enum ClientRouting {
    /// Direct sim links to each replica process.
    Direct(Vec<ProcessId>),
    /// Through a Spines port (payload-level addressing handled elsewhere).
    Spines {
        /// Local overlay port.
        port: spire_spines::SpinesPort,
        /// Per-replica overlay addresses.
        addrs: Vec<spire_spines::OverlayAddr>,
        /// Dissemination mode.
        mode: spire_spines::Dissemination,
    },
}

/// A workload-driving client process.
///
/// Sends one signed op every `interval` (up to `count`; 0 = unlimited),
/// records end-to-end latency in the metric series `<label>.latency_ms`,
/// and counts accepted ops in `<label>.accepted`.
pub struct TestClient {
    cfg: PrimeConfig,
    id: ClientId,
    signer: Signer,
    routing: ClientRouting,
    interval: Span,
    count: u64,
    payload_size: usize,
    label: String,
    /// How many replicas each op is submitted to (Prime clients typically
    /// submit to f+1 or all; we default to all for simplicity).
    fanout: usize,

    next_cseq: u64,
    sent_at: BTreeMap<u64, Time>,
    replies: BTreeMap<u64, BTreeMap<u32, Vec<u8>>>,
    accepted: BTreeMap<u64, bool>,
}

impl TestClient {
    /// Creates a client.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: PrimeConfig,
        id: ClientId,
        signer: Signer,
        routing: ClientRouting,
        interval: Span,
        count: u64,
        label: &str,
    ) -> TestClient {
        let fanout = cfg.n as usize;
        TestClient {
            cfg,
            id,
            signer,
            routing,
            interval,
            count,
            payload_size: 16,
            label: label.to_string(),
            fanout,
            next_cseq: 0,
            sent_at: BTreeMap::new(),
            replies: BTreeMap::new(),
            accepted: BTreeMap::new(),
        }
    }

    /// Sets the op payload size in bytes.
    pub fn with_payload_size(mut self, size: usize) -> TestClient {
        self.payload_size = size;
        self
    }

    fn send_op(&mut self, ctx: &mut Context<'_>) {
        self.next_cseq += 1;
        let cseq = self.next_cseq;
        let mut payload = vec![0u8; self.payload_size.max(8)];
        payload[..8].copy_from_slice(&ctx.now().0.to_le_bytes());
        let op = ClientOp::signed(self.id, cseq, Bytes::from(payload), &self.signer);
        let msg = PrimeMsg::Op(op).encode();
        self.sent_at.insert(cseq, ctx.now());
        match &self.routing {
            ClientRouting::Direct(replicas) => {
                for pid in replicas.iter().take(self.fanout) {
                    ctx.send(*pid, msg.clone());
                }
            }
            ClientRouting::Spines { port, addrs, mode } => {
                let (port, mode) = (*port, *mode);
                for addr in addrs.clone().into_iter().take(self.fanout) {
                    port.send(ctx, addr, mode, true, msg.clone());
                }
            }
        }
        ctx.count(&format!("{}.sent", self.label), 1);
    }

    fn on_reply(&mut self, ctx: &mut Context<'_>, replica: ReplicaId, cseq: u64, result: &[u8]) {
        if self.accepted.get(&cseq).copied().unwrap_or(false) {
            return;
        }
        let replies = self.replies.entry(cseq).or_default();
        replies.insert(replica.0, result.to_vec());
        // Accept once f+1 replicas sent the same result.
        let mut tallies: BTreeMap<&[u8], usize> = BTreeMap::new();
        for r in replies.values() {
            *tallies.entry(r.as_slice()).or_insert(0) += 1;
        }
        let needed = (self.cfg.f + 1) as usize;
        if tallies.values().any(|count| *count >= needed) {
            self.accepted.insert(cseq, true);
            if let Some(sent) = self.sent_at.get(&cseq) {
                let latency_ms = ctx.now().since(*sent).as_millis_f64();
                ctx.record(&format!("{}.latency_ms", self.label), latency_ms);
            }
            ctx.count(&format!("{}.accepted", self.label), 1);
            self.replies.remove(&cseq);
        }
    }
}

impl Process for TestClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if let ClientRouting::Spines { port, .. } = &self.routing {
            port.attach(ctx);
        }
        ctx.set_timer(self.interval, TIMER_SEND);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, bytes: &Bytes) {
        let payload = match &self.routing {
            ClientRouting::Direct(_) => bytes.clone(),
            ClientRouting::Spines { .. } => match spire_spines::SpinesPort::decode_deliver(bytes) {
                Some((_, payload)) => payload,
                None => return,
            },
        };
        let Ok(msg) = crate::msg::decode_enclosed(&payload) else {
            return;
        };
        if let PrimeMsg::Reply {
            replica,
            client,
            cseq,
            result,
            ..
        } = msg
        {
            if client == self.id {
                self.on_reply(ctx, replica, cseq, &result);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        if tag == TIMER_SEND && (self.count == 0 || self.next_cseq < self.count) {
            self.send_op(ctx);
            ctx.set_timer(self.interval, TIMER_SEND);
        }
    }
}

impl std::fmt::Debug for TestClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestClient")
            .field("id", &self.id)
            .field("sent", &self.next_cseq)
            .finish()
    }
}
