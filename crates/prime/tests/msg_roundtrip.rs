//! Seeded roundtrip property tests for the Prime wire format: every
//! [`PrimeMsg`] variant (including deeply-nested NewView/ViewState
//! payloads), batch-attested frames, and link-sealed envelopes must
//! survive `encode -> decode` bit-for-bit.
//!
//! Uses a small hand-rolled generator over a seeded `StdRng` (vendored
//! `rand` only — no new dependencies), so failures reproduce exactly:
//! every case is addressed by `(variant index, sample index)` under the
//! fixed master seed.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spire_crypto::BatchAttestation;
use spire_prime::msg::{
    decode_frame, decode_multi, decode_sealed, encode_batched, encode_multi, seal_frame, AruVector,
    CheckpointMsg, ClientOp, Frame, Matrix, PreparedClaim, PrimeMsg, SummaryRow, ViewStateMsg,
};
use spire_prime::{ClientId, ReplicaId};

const MASTER_SEED: u64 = 0x0005_EED0_FA11;
const SAMPLES_PER_VARIANT: u64 = 40;
const VARIANTS: u64 = 21;

fn sig64(rng: &mut StdRng) -> [u8; 64] {
    let mut sig = [0u8; 64];
    rng.fill(&mut sig[..]);
    sig
}

fn digest32(rng: &mut StdRng) -> [u8; 32] {
    let mut d = [0u8; 32];
    rng.fill(&mut d[..]);
    d
}

fn payload(rng: &mut StdRng, max: usize) -> Bytes {
    let len = rng.gen_range(0..=max);
    let mut buf = vec![0u8; len];
    rng.fill(&mut buf[..]);
    Bytes::from(buf)
}

fn client_op(rng: &mut StdRng) -> ClientOp {
    ClientOp {
        client: ClientId(rng.gen_range(0..64)),
        cseq: rng.gen(),
        payload: payload(rng, 48),
        sig: sig64(rng),
    }
}

fn aru_vector(rng: &mut StdRng) -> AruVector {
    let n = rng.gen_range(0..8);
    AruVector((0..n).map(|_| rng.gen()).collect())
}

fn summary_row(rng: &mut StdRng) -> SummaryRow {
    SummaryRow {
        replica: ReplicaId(rng.gen_range(0..32)),
        sseq: rng.gen(),
        vector: aru_vector(rng),
        sig: sig64(rng),
    }
}

fn matrix(rng: &mut StdRng) -> Matrix {
    let rows = rng.gen_range(0..5);
    Matrix {
        rows: (0..rows).map(|_| summary_row(rng)).collect(),
    }
}

fn checkpoint(rng: &mut StdRng) -> CheckpointMsg {
    CheckpointMsg {
        replica: ReplicaId(rng.gen_range(0..32)),
        seq: rng.gen(),
        digest: digest32(rng),
        sig: sig64(rng),
    }
}

fn view_state(rng: &mut StdRng) -> ViewStateMsg {
    let claims = rng.gen_range(0..4);
    let prepared = (0..claims)
        .map(|_| PreparedClaim {
            view: rng.gen(),
            seq: rng.gen(),
            matrix: matrix(rng),
        })
        .collect();
    ViewStateMsg {
        replica: ReplicaId(rng.gen_range(0..32)),
        view: rng.gen(),
        last_committed: rng.gen(),
        prepared,
        sig: sig64(rng),
    }
}

/// A random instance of variant `variant` (0-based over all 19).
fn gen_msg(rng: &mut StdRng, variant: u64) -> PrimeMsg {
    match variant {
        0 => PrimeMsg::Op(client_op(rng)),
        1 => PrimeMsg::PoRequest {
            origin: ReplicaId(rng.gen_range(0..32)),
            po_seq: rng.gen(),
            ops: {
                let n = rng.gen_range(0..4);
                (0..n).map(|_| client_op(rng)).collect()
            },
            sig: sig64(rng),
        },
        2 => PrimeMsg::PoAck {
            replica: ReplicaId(rng.gen_range(0..32)),
            origin: ReplicaId(rng.gen_range(0..32)),
            po_seq: rng.gen(),
            digest: digest32(rng),
            sig: sig64(rng),
        },
        3 => PrimeMsg::PoSummary(summary_row(rng)),
        4 => PrimeMsg::PrePrepare {
            view: rng.gen(),
            seq: rng.gen(),
            matrix: matrix(rng),
            sig: sig64(rng),
        },
        5 => PrimeMsg::Prepare {
            replica: ReplicaId(rng.gen_range(0..32)),
            view: rng.gen(),
            seq: rng.gen(),
            digest: digest32(rng),
            sig: sig64(rng),
        },
        6 => PrimeMsg::Commit {
            replica: ReplicaId(rng.gen_range(0..32)),
            view: rng.gen(),
            seq: rng.gen(),
            digest: digest32(rng),
            sig: sig64(rng),
        },
        7 => PrimeMsg::Ping {
            replica: ReplicaId(rng.gen_range(0..32)),
            nonce: rng.gen(),
        },
        8 => PrimeMsg::Pong {
            replica: ReplicaId(rng.gen_range(0..32)),
            nonce: rng.gen(),
        },
        9 => PrimeMsg::Suspect {
            replica: ReplicaId(rng.gen_range(0..32)),
            view: rng.gen(),
            sig: sig64(rng),
        },
        10 => PrimeMsg::ViewState(view_state(rng)),
        11 => PrimeMsg::NewView {
            view: rng.gen(),
            states: {
                let n = rng.gen_range(0..4);
                (0..n).map(|_| view_state(rng)).collect()
            },
            sig: sig64(rng),
        },
        12 => PrimeMsg::Checkpoint(checkpoint(rng)),
        13 => PrimeMsg::StateReq {
            replica: ReplicaId(rng.gen_range(0..32)),
            have_seq: rng.gen(),
            sig: sig64(rng),
        },
        14 => PrimeMsg::StateResp {
            replica: ReplicaId(rng.gen_range(0..32)),
            checkpoint_seq: rng.gen(),
            share_index: rng.gen(),
            erasure_k: rng.gen(),
            share: payload(rng, 96),
            proof: {
                let n = rng.gen_range(0..3);
                (0..n).map(|_| checkpoint(rng)).collect()
            },
            view: rng.gen(),
            requester_po_high: rng.gen(),
            requester_sseq_high: rng.gen(),
        },
        15 => PrimeMsg::SuffixVote {
            replica: ReplicaId(rng.gen_range(0..32)),
            seq: rng.gen(),
            matrix: matrix(rng),
        },
        16 => PrimeMsg::ReconReq {
            replica: ReplicaId(rng.gen_range(0..32)),
            origin: ReplicaId(rng.gen_range(0..32)),
            po_seq: rng.gen(),
        },
        17 => PrimeMsg::Notify {
            replica: ReplicaId(rng.gen_range(0..32)),
            client: ClientId(rng.gen_range(0..64)),
            nseq: rng.gen(),
            payload: payload(rng, 64),
            sig: sig64(rng),
        },
        18 => PrimeMsg::Reply {
            replica: ReplicaId(rng.gen_range(0..32)),
            client: ClientId(rng.gen_range(0..64)),
            cseq: rng.gen(),
            result: payload(rng, 64),
            sig: sig64(rng),
        },
        19 => PrimeMsg::PoAckMulti {
            replica: ReplicaId(rng.gen_range(0..32)),
            entries: {
                let n = rng.gen_range(0..6);
                (0..n)
                    .map(|_| (ReplicaId(rng.gen_range(0..32)), rng.gen(), digest32(rng)))
                    .collect()
            },
            sig: sig64(rng),
        },
        20 => PrimeMsg::CommitMulti {
            replica: ReplicaId(rng.gen_range(0..32)),
            view: rng.gen(),
            entries: {
                let n = rng.gen_range(0..6);
                (0..n).map(|_| (rng.gen(), digest32(rng))).collect()
            },
            sig: sig64(rng),
        },
        _ => unreachable!("variant index out of range"),
    }
}

#[test]
fn every_variant_roundtrips() {
    for variant in 0..VARIANTS {
        for sample in 0..SAMPLES_PER_VARIANT {
            let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ (variant << 32) ^ sample);
            let msg = gen_msg(&mut rng, variant);
            let encoded = msg.encode();
            let decoded = PrimeMsg::decode(&encoded).unwrap_or_else(|e| {
                panic!("variant {variant} sample {sample} failed to decode: {e:?}")
            });
            assert_eq!(
                decoded, msg,
                "variant {variant} sample {sample} did not roundtrip"
            );
        }
    }
}

#[test]
fn batched_frames_roundtrip() {
    for variant in 0..VARIANTS {
        let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ 0x0BA7_C4ED ^ variant);
        let msg = gen_msg(&mut rng, variant);
        let attestation = BatchAttestation {
            leaf_index: rng.gen_range(0..8),
            leaf_count: rng.gen_range(8..16),
            path: (0..rng.gen_range(0..4))
                .map(|_| digest32(&mut rng))
                .collect(),
            root_sig: sig64(&mut rng),
        };
        let signer = ReplicaId(rng.gen_range(0..32));
        let encoded = msg.encode();
        let framed = encode_batched(signer, &attestation, &encoded);
        match decode_frame(&framed).expect("batched frame decodes") {
            Frame::Batched {
                signer: got_signer,
                attestation: got_attestation,
                msg: got_msg,
                msg_digest,
            } => {
                assert_eq!(got_signer, signer);
                assert_eq!(got_attestation, attestation);
                assert_eq!(got_msg, msg);
                assert_eq!(msg_digest, spire_crypto::digest(&encoded));
            }
            Frame::Plain(_) => panic!("variant {variant}: batched frame parsed as plain"),
        }
    }
}

#[test]
fn sealed_frames_roundtrip() {
    for variant in 0..VARIANTS {
        let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ 0x005E_A1ED ^ variant);
        let msg = gen_msg(&mut rng, variant);
        let sender = ReplicaId(rng.gen_range(0..32));
        let key: [u8; 32] = digest32(&mut rng);
        let inner = msg.encode();
        let sealed = seal_frame(sender, &key, &inner);
        let parsed = decode_sealed(&sealed)
            .expect("sealed frame parses")
            .expect("tagged as sealed");
        assert_eq!(parsed.sender, sender);
        assert!(parsed.verify(&key), "variant {variant}: MAC must verify");
        let mut wrong = key;
        wrong[0] ^= 1;
        assert!(
            !parsed.verify(&wrong),
            "variant {variant}: wrong key must fail"
        );
        match decode_frame(parsed.inner).expect("inner frame decodes") {
            Frame::Plain(got) => assert_eq!(got, msg),
            Frame::Batched { .. } => panic!("variant {variant}: inner parsed as batched"),
        }
        // A plain frame is never mistaken for a sealed envelope.
        assert!(decode_sealed(&inner).expect("parses").is_none() || inner[0] == 254);
    }
}

#[test]
fn multi_frame_containers_roundtrip() {
    // Random mixes of variants packed into one container (then sealed,
    // like the replica's link-batched flush) must split back into the
    // identical frames.
    for round in 0..VARIANTS {
        let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ 0x00F1_EE75 ^ round);
        let count = rng.gen_range(1..6);
        let msgs: Vec<PrimeMsg> = (0..count)
            .map(|_| {
                let variant = rng.gen_range(0..VARIANTS);
                gen_msg(&mut rng, variant)
            })
            .collect();
        let encoded: Vec<Bytes> = msgs.iter().map(|m| m.encode()).collect();
        let container = encode_multi(&encoded);
        let sender = ReplicaId(rng.gen_range(0..32));
        let key: [u8; 32] = digest32(&mut rng);
        let sealed = seal_frame(sender, &key, &container);
        let parsed = decode_sealed(&sealed)
            .expect("sealed container parses")
            .expect("tagged as sealed");
        assert!(parsed.verify(&key), "round {round}: MAC must verify");
        let inner = Bytes::copy_from_slice(parsed.inner);
        let frames = decode_multi(&inner)
            .expect("container parses")
            .expect("tagged as multi");
        assert_eq!(frames.len(), msgs.len());
        for (frame, msg) in frames.iter().zip(&msgs) {
            match decode_frame(frame).expect("sub-frame decodes") {
                Frame::Plain(got) => assert_eq!(&got, msg, "round {round}"),
                Frame::Batched { .. } => panic!("round {round}: sub-frame parsed as batched"),
            }
        }
        // Single plain frames are never mistaken for containers.
        assert!(decode_multi(&encoded[0]).expect("parses").is_none());
    }
}
