//! Property-based tests of Prime's data structures: codec roundtrips,
//! matrix cover-quorum math, and application determinism.

use bytes::Bytes;
use proptest::prelude::*;
use spire_prime::msg::{AruVector, Matrix, SummaryRow};
use spire_prime::{Application, ClientId, ClientOp, HashChainApp, PrimeMsg, ReplicaId};

fn arb_client_op() -> impl Strategy<Value = ClientOp> {
    (
        any::<u32>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..64),
        any::<[u8; 32]>(),
    )
        .prop_map(|(client, cseq, payload, sig_half)| {
            let mut sig = [0u8; 64];
            sig[..32].copy_from_slice(&sig_half);
            sig[32..].copy_from_slice(&sig_half);
            ClientOp {
                client: ClientId(client),
                cseq,
                payload: Bytes::from(payload),
                sig,
            }
        })
}

fn arb_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(
        (any::<u64>(), proptest::collection::vec(0u64..1000, n)),
        0..=n,
    )
    .prop_map(|rows| Matrix {
        rows: rows
            .into_iter()
            .enumerate()
            .map(|(i, (sseq, vector))| SummaryRow {
                replica: ReplicaId(i as u32),
                sseq,
                vector: AruVector(vector),
                sig: [0; 64],
            })
            .collect(),
    })
}

/// Reference implementation of the cover quorum: the largest `v` such that
/// at least `quorum` rows report `>= v` for the column.
fn covered_aru_naive(matrix: &Matrix, origin: usize, quorum: usize) -> u64 {
    if quorum == 0 || matrix.rows.len() < quorum {
        return 0;
    }
    let max = matrix
        .rows
        .iter()
        .map(|r| r.vector.0.get(origin).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);
    (0..=max)
        .rfind(|v| {
            matrix
                .rows
                .iter()
                .filter(|r| r.vector.0.get(origin).copied().unwrap_or(0) >= *v)
                .count()
                >= quorum
        })
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn client_op_inside_po_request_roundtrips(ops in proptest::collection::vec(arb_client_op(), 0..8)) {
        let msg = PrimeMsg::PoRequest {
            origin: ReplicaId(3),
            po_seq: 99,
            ops,
            sig: [5; 64],
        };
        prop_assert_eq!(PrimeMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = PrimeMsg::decode(&bytes);
    }

    #[test]
    fn covered_aru_matches_reference(matrix in arb_matrix(6), origin in 0usize..7, quorum in 0usize..8) {
        prop_assert_eq!(
            matrix.covered_aru(origin, quorum),
            covered_aru_naive(&matrix, origin, quorum)
        );
    }

    #[test]
    fn covered_aru_monotone_in_quorum(matrix in arb_matrix(6), origin in 0usize..6) {
        // A stricter quorum can only lower the covered value.
        let mut last = u64::MAX;
        for quorum in 1..=6usize {
            let v = matrix.covered_aru(origin, quorum);
            prop_assert!(v <= last);
            last = v;
        }
    }

    #[test]
    fn hash_chain_app_determinism(ops in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..32), 0..64)) {
        let mut a = HashChainApp::new();
        let mut b = HashChainApp::new();
        for op in &ops {
            let ra = a.execute(op);
            let rb = b.execute(op);
            prop_assert_eq!(ra, rb);
        }
        prop_assert_eq!(a.digest(), b.digest());
        // Snapshots restore to the identical state.
        let mut c = HashChainApp::new();
        c.restore(&a.snapshot());
        prop_assert_eq!(c.digest(), a.digest());
    }

    #[test]
    fn matrix_digest_is_content_addressed(m1 in arb_matrix(4), m2 in arb_matrix(4)) {
        if m1 == m2 {
            prop_assert_eq!(m1.digest(), m2.digest());
        } else {
            prop_assert_ne!(m1.digest(), m2.digest());
        }
    }
}

mod cseq_window {
    use proptest::prelude::*;
    use spire_prime::replica::CseqWindow;

    proptest! {
        #[test]
        fn marks_each_number_exactly_once(order in proptest::collection::vec(1u64..60, 1..120)) {
            let mut window = CseqWindow::default();
            let mut reference = std::collections::BTreeSet::new();
            for c in order {
                let fresh = reference.insert(c);
                prop_assert_eq!(window.try_mark(c), fresh, "cseq {}", c);
            }
            // Floor is the largest contiguous prefix.
            let mut floor = 0;
            while reference.contains(&(floor + 1)) {
                floor += 1;
            }
            prop_assert_eq!(window.floor(), floor);
        }

        #[test]
        fn snapshot_roundtrip(marks in proptest::collection::btree_set(1u64..100, 0..40)) {
            let mut window = CseqWindow::default();
            for c in &marks {
                window.try_mark(*c);
            }
            let rebuilt = CseqWindow::from_parts(window.floor(), window.sparse());
            prop_assert_eq!(&rebuilt, &window);
            // A rebuilt window rejects exactly the same numbers.
            let mut a = window.clone();
            let mut b = rebuilt;
            for c in 1..100u64 {
                prop_assert_eq!(a.try_mark(c), b.try_mark(c));
            }
        }
    }

    #[test]
    fn out_of_order_overtake_is_not_a_duplicate() {
        // The regression that motivated the windowed design: op 2 executes
        // before op 1 (network overtake); op 1 must still execute.
        let mut window = CseqWindow::default();
        assert!(window.try_mark(2));
        assert!(window.try_mark(1), "op 1 wrongly treated as duplicate");
        assert!(!window.try_mark(1));
        assert!(!window.try_mark(2));
        assert_eq!(window.floor(), 2);
    }
}

mod view_change_plan {
    use spire_prime::msg::{AruVector, Matrix, PreparedClaim, SummaryRow, ViewStateMsg};
    use spire_prime::replica::plan_new_view;
    use spire_prime::ReplicaId;

    fn state(replica: u32, last_committed: u64, prepared: Option<(u64, u64)>) -> ViewStateMsg {
        ViewStateMsg {
            replica: ReplicaId(replica),
            view: 5,
            last_committed,
            prepared: prepared
                .into_iter()
                .map(|(view, seq)| PreparedClaim {
                    view,
                    seq,
                    matrix: Matrix {
                        rows: vec![SummaryRow {
                            replica: ReplicaId(replica),
                            sseq: view, // marker to identify which claim won
                            vector: AruVector(vec![seq]),
                            sig: [0; 64],
                        }],
                    },
                })
                .collect(),
            sig: [0; 64],
        }
    }

    #[test]
    fn no_prepared_claims_means_no_reproposals() {
        let (base, plan) = plan_new_view(&[state(0, 7, None), state(1, 9, None)]);
        assert_eq!(base, 9);
        assert!(plan.is_empty());
    }

    #[test]
    fn prepared_above_base_is_reproposed() {
        let (base, plan) = plan_new_view(&[
            state(0, 10, Some((2, 12))),
            state(1, 10, None),
            state(2, 9, None),
        ]);
        assert_eq!(base, 10);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].0, 11);
        assert!(plan[0].1.rows.is_empty(), "hole filled with a no-op");
        assert_eq!(plan[1].0, 12);
        assert_eq!(plan[1].1.rows.len(), 1);
    }

    #[test]
    fn highest_view_claim_wins_per_sequence() {
        let (_, plan) = plan_new_view(&[
            state(0, 10, Some((3, 11))),
            state(1, 10, Some((4, 11))),
            state(2, 10, Some((2, 11))),
        ]);
        assert_eq!(plan.len(), 1);
        // The marker sseq equals the winning claim's view.
        assert_eq!(plan[0].1.rows[0].sseq, 4);
    }

    #[test]
    fn prepared_at_or_below_base_is_dropped() {
        // A claim already covered by someone's committed prefix must not be
        // re-proposed (it would re-execute).
        let (base, plan) = plan_new_view(&[
            state(0, 12, None),
            state(1, 10, Some((3, 12))),
            state(2, 10, Some((3, 11))),
        ]);
        assert_eq!(base, 12);
        assert!(plan.is_empty());
    }

    #[test]
    fn every_reported_claim_is_reproposed_not_just_the_highest() {
        // Pipelined ordering leaves several prepared sequences in flight at
        // once. A lower one may already have committed at a replica outside
        // the state quorum, so the plan must carry every reported claim —
        // reporting/planning only the top one is how the explorer's
        // conflicting-commit artifact broke an earlier revision.
        let mut s = state(0, 10, Some((3, 13)));
        let low = state(0, 10, Some((3, 11)));
        s.prepared.extend(low.prepared.clone());
        let (base, plan) = plan_new_view(&[s, state(1, 10, None), state(2, 10, None)]);
        assert_eq!(base, 10);
        assert_eq!(plan.len(), 3);
        assert_eq!((plan[0].0, plan[1].0, plan[2].0), (11, 12, 13));
        assert_eq!(plan[0].1.rows.len(), 1, "low claim carried");
        assert!(plan[1].1.rows.is_empty(), "hole filled with a no-op");
        assert_eq!(plan[2].1.rows.len(), 1, "high claim carried");
    }

    #[test]
    fn plan_is_deterministic_under_reordering() {
        let a = [
            state(0, 10, Some((3, 12))),
            state(1, 11, Some((2, 13))),
            state(2, 9, None),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(plan_new_view(&a), plan_new_view(&b));
    }
}
