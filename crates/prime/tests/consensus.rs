//! End-to-end tests of the Prime replication engine over direct simulation
//! links: ordering under normal operation, crash faults, Byzantine leaders
//! (delay, equivocation, mute), vote withholding, execution divergence,
//! proactive recovery with state transfer, and safety invariants throughout.

use bytes::Bytes;
use spire_crypto::keys::Signer;
use spire_crypto::{KeyMaterial, KeyStore, NodeId};
use spire_prime::client::ClientRouting;
use spire_prime::{
    ByzBehavior, ClientId, CounterApp, HashChainApp, Inspection, PrimeConfig, ProtocolMode,
    Replica, ReplicaId, TestClient,
};
use spire_sim::{LinkConfig, ProcessId, Span, World};
use std::sync::Arc;

struct Cluster {
    world: World,
    replica_pids: Vec<ProcessId>,
    inspection: Inspection,
    cfg: PrimeConfig,
    material: KeyMaterial,
    keystore: Arc<KeyStore>,
}

fn link() -> LinkConfig {
    LinkConfig {
        latency: Span::millis(2),
        jitter: Span::micros(500),
        loss: 0.0,
        corrupt: 0.0,
        dup: 0.0,
        bandwidth_bps: None,
        max_queue: Span::secs(10),
    }
}

fn build_cluster(
    seed: u64,
    mut cfg: PrimeConfig,
    mock_sigs: bool,
    behavior_of: impl Fn(u32) -> ByzBehavior,
) -> Cluster {
    cfg.progress_timeout = Span::secs(2);
    let mut world = World::new(seed);
    let material = KeyMaterial::new([3u8; 32]);
    let keystore = Arc::new(KeyStore::for_nodes(&material, 3000));
    let inspection = Inspection::new();
    let n = cfg.n;
    // Allocate replica pids first (processes added in order).
    let first = world.process_count() as u32;
    let replica_pids: Vec<ProcessId> = (0..n).map(|i| ProcessId(first + i)).collect();
    for i in 0..n {
        let signer = Signer::new(
            material.signing_key(NodeId(cfg.replica_key_base + i)),
            mock_sigs,
        );
        let net = spire_prime::DirectNet {
            replicas: replica_pids.clone(),
            clients: Default::default(),
        };
        let replica = Replica::new(
            cfg.clone(),
            ReplicaId(i),
            behavior_of(i),
            Arc::clone(&keystore),
            signer,
            Box::new(net),
            Box::new(HashChainApp::new()),
            false,
        )
        .with_inspection(inspection.clone());
        let pid = world.add_process(&format!("replica-{i}"), Box::new(replica));
        assert_eq!(pid, replica_pids[i as usize]);
    }
    for i in 0..n as usize {
        for j in (i + 1)..n as usize {
            world.add_link(replica_pids[i], replica_pids[j], link());
        }
    }
    Cluster {
        world,
        replica_pids,
        inspection,
        cfg,
        material,
        keystore,
    }
}

fn add_client(cluster: &mut Cluster, id: u32, interval: Span, count: u64) -> ProcessId {
    let signer = Signer::new(
        cluster
            .material
            .signing_key(NodeId(cluster.cfg.client_key_base + id)),
        false,
    );
    let client = TestClient::new(
        cluster.cfg.clone(),
        ClientId(id),
        signer,
        ClientRouting::Direct(cluster.replica_pids.clone()),
        interval,
        count,
        &format!("client{id}"),
    );
    let pid = cluster
        .world
        .add_process(&format!("client-{id}"), Box::new(client));
    for rpid in cluster.replica_pids.clone() {
        cluster.world.add_link(pid, rpid, link());
    }
    // Register the client with every replica's DirectNet... replicas were
    // built before the client existed, so reply routing uses this link via
    // the DirectNet clients map. Rebuild is impossible; instead replicas
    // learn client pids through this helper: DirectNet is cloned into the
    // replica at construction, so instead we pre-allocate client pids.
    pid
}

// NOTE: because DirectNet's client map is fixed at construction, tests
// pre-compute the client pid (processes are added in order) and pass it in
// behavior-independent cluster builders below.

fn build_cluster_with_clients(
    seed: u64,
    cfg: PrimeConfig,
    mock_sigs: bool,
    clients: &[(u32, Span, u64)],
    behavior_of: impl Fn(u32) -> ByzBehavior,
) -> Cluster {
    let mut cluster = build_cluster_with_clients_inner(seed, cfg, mock_sigs, clients, behavior_of);
    cluster.world.run_for(Span::millis(1)); // let on_start fire
    cluster
}

fn build_cluster_with_clients_inner(
    seed: u64,
    mut cfg: PrimeConfig,
    mock_sigs: bool,
    clients: &[(u32, Span, u64)],
    behavior_of: impl Fn(u32) -> ByzBehavior,
) -> Cluster {
    cfg.progress_timeout = Span::secs(2);
    let mut world = World::new(seed);
    let material = KeyMaterial::new([3u8; 32]);
    let keystore = Arc::new(KeyStore::for_nodes(&material, 3000));
    let inspection = Inspection::new();
    let n = cfg.n;
    let first = world.process_count() as u32;
    let replica_pids: Vec<ProcessId> = (0..n).map(|i| ProcessId(first + i)).collect();
    let client_pids: std::collections::BTreeMap<u32, ProcessId> = clients
        .iter()
        .enumerate()
        .map(|(idx, (id, _, _))| (*id, ProcessId(first + n + idx as u32)))
        .collect();
    for i in 0..n {
        let signer = Signer::new(
            material.signing_key(NodeId(cfg.replica_key_base + i)),
            mock_sigs,
        );
        let net = spire_prime::DirectNet {
            replicas: replica_pids.clone(),
            clients: client_pids.clone(),
        };
        let replica = Replica::new(
            cfg.clone(),
            ReplicaId(i),
            behavior_of(i),
            Arc::clone(&keystore),
            signer,
            Box::new(net),
            Box::new(HashChainApp::new()),
            false,
        )
        .with_inspection(inspection.clone());
        world.add_process(&format!("replica-{i}"), Box::new(replica));
    }
    for (id, interval, count) in clients {
        let signer = Signer::new(
            material.signing_key(NodeId(cfg.client_key_base + id)),
            mock_sigs,
        );
        let client = TestClient::new(
            cfg.clone(),
            ClientId(*id),
            signer,
            ClientRouting::Direct(replica_pids.clone()),
            *interval,
            *count,
            &format!("client{id}"),
        );
        let pid = world.add_process(&format!("client-{id}"), Box::new(client));
        assert_eq!(pid, client_pids[id]);
    }
    // Full mesh among replicas and clients.
    for i in 0..n as usize {
        for j in (i + 1)..n as usize {
            world.add_link(replica_pids[i], replica_pids[j], link());
        }
    }
    for pid in client_pids.values() {
        for rpid in &replica_pids {
            world.add_link(*pid, *rpid, link());
        }
    }
    Cluster {
        world,
        replica_pids,
        inspection,
        cfg,
        material,
        keystore,
    }
}

fn honest(_: u32) -> ByzBehavior {
    ByzBehavior::Honest
}

fn correct_ids(cfg: &PrimeConfig, behavior_of: impl Fn(u32) -> ByzBehavior) -> Vec<u32> {
    (0..cfg.n)
        .filter(|i| !behavior_of(*i).is_byzantine())
        .collect()
}

#[test]
fn normal_operation_orders_and_executes() {
    let cfg = PrimeConfig::new(1, 1);
    let mut cluster =
        build_cluster_with_clients(1, cfg.clone(), false, &[(0, Span::millis(50), 30)], honest);
    cluster.world.run_for(Span::secs(10));
    assert_eq!(cluster.world.metrics().counter("client0.accepted"), 30);
    let all: Vec<u32> = (0..cfg.n).collect();
    cluster.inspection.check_safety(&all).expect("safety");
    assert_eq!(cluster.inspection.min_executed(&all), 30);
    // Latency should be a handful of round trips (2 ms links).
    let lats = cluster.world.metrics().values("client0.latency_ms");
    let mean = lats.iter().sum::<f64>() / lats.len() as f64;
    assert!(mean < 150.0, "mean latency {mean} ms");
    // No view changes under normal operation.
    assert_eq!(cluster.world.metrics().counter("prime.view_changes"), 0);
}

#[test]
fn mock_signatures_behave_identically() {
    let cfg = PrimeConfig::new(1, 1);
    let mut cluster =
        build_cluster_with_clients(1, cfg.clone(), true, &[(0, Span::millis(50), 30)], honest);
    cluster.world.run_for(Span::secs(10));
    assert_eq!(cluster.world.metrics().counter("client0.accepted"), 30);
    let all: Vec<u32> = (0..cfg.n).collect();
    cluster.inspection.check_safety(&all).expect("safety");
}

#[test]
fn multiple_clients_multiple_batches() {
    let cfg = PrimeConfig::new(1, 1);
    let clients: Vec<(u32, Span, u64)> = (0..4)
        .map(|i| (i, Span::millis(20 + i as u64), 25u64))
        .collect();
    let mut cluster = build_cluster_with_clients(7, cfg.clone(), false, &clients, honest);
    cluster.world.run_for(Span::secs(15));
    for i in 0..4 {
        assert_eq!(
            cluster
                .world
                .metrics()
                .counter(&format!("client{i}.accepted")),
            25,
            "client {i}"
        );
    }
    let all: Vec<u32> = (0..cfg.n).collect();
    cluster.inspection.check_safety(&all).expect("safety");
    assert_eq!(cluster.inspection.min_executed(&all), 100);
}

#[test]
fn tolerates_f_crashed_replicas() {
    let cfg = PrimeConfig::new(1, 1);
    // f=1 crash + k=1 "recovering" (also down) = 2 down, 4 of 6 remain.
    let mut cluster =
        build_cluster_with_clients(2, cfg.clone(), false, &[(0, Span::millis(50), 40)], honest);
    let victim1 = cluster.replica_pids[3];
    let victim2 = cluster.replica_pids[4];
    cluster
        .world
        .schedule_control(spire_sim::Time(500_000), move |w| {
            w.crash(victim1);
            w.crash(victim2);
        });
    cluster.world.run_for(Span::secs(15));
    assert_eq!(cluster.world.metrics().counter("client0.accepted"), 40);
    cluster
        .inspection
        .check_safety(&[0, 1, 2, 5])
        .expect("safety among survivors");
}

#[test]
fn mute_leader_triggers_view_change_and_service_continues() {
    let cfg = PrimeConfig::new(1, 1);
    let behavior = |i: u32| {
        if i == 0 {
            ByzBehavior::Mute // leader of view 0
        } else {
            ByzBehavior::Honest
        }
    };
    let mut cluster = build_cluster_with_clients(
        3,
        cfg.clone(),
        false,
        &[(0, Span::millis(50), 30)],
        behavior,
    );
    cluster.world.run_for(Span::secs(20));
    assert!(cluster.world.metrics().counter("prime.view_changes") >= 1);
    assert_eq!(cluster.world.metrics().counter("client0.accepted"), 30);
    let correct = correct_ids(&cfg, behavior);
    cluster.inspection.check_safety(&correct).expect("safety");
}

#[test]
fn equivocating_leader_cannot_break_safety() {
    let cfg = PrimeConfig::new(1, 1);
    let behavior = |i: u32| {
        if i == 0 {
            ByzBehavior::Equivocate
        } else {
            ByzBehavior::Honest
        }
    };
    let mut cluster = build_cluster_with_clients(
        4,
        cfg.clone(),
        false,
        &[(0, Span::millis(50), 30)],
        behavior,
    );
    cluster.world.run_for(Span::secs(25));
    let correct = correct_ids(&cfg, behavior);
    cluster.inspection.check_safety(&correct).expect("safety");
    // The equivocating leader is eventually replaced and service resumes.
    assert!(cluster.world.metrics().counter("prime.view_changes") >= 1);
    assert_eq!(cluster.world.metrics().counter("client0.accepted"), 30);
}

#[test]
fn ack_withholding_replica_does_not_block_progress() {
    let cfg = PrimeConfig::new(1, 1);
    let behavior = |i: u32| {
        if i == 5 {
            ByzBehavior::AckWithhold
        } else {
            ByzBehavior::Honest
        }
    };
    let mut cluster = build_cluster_with_clients(
        5,
        cfg.clone(),
        false,
        &[(0, Span::millis(50), 30)],
        behavior,
    );
    cluster.world.run_for(Span::secs(15));
    assert_eq!(cluster.world.metrics().counter("client0.accepted"), 30);
}

#[test]
fn divergent_execution_is_masked_from_clients() {
    let cfg = PrimeConfig::new(1, 1);
    let behavior = |i: u32| {
        if i == 2 {
            ByzBehavior::DivergentExec
        } else {
            ByzBehavior::Honest
        }
    };
    let mut cluster = build_cluster_with_clients(
        6,
        cfg.clone(),
        false,
        &[(0, Span::millis(50), 25)],
        behavior,
    );
    cluster.world.run_for(Span::secs(15));
    // Clients still accept (f+1 matching correct replies exist)...
    assert_eq!(cluster.world.metrics().counter("client0.accepted"), 25);
    // ...and the correct replicas agree with each other.
    let correct = correct_ids(&cfg, behavior);
    cluster.inspection.check_safety(&correct).expect("safety");
    // The divergent replica really did diverge (the attack was exercised).
    let records = cluster.inspection.records();
    assert_ne!(records[&2].app_digest, records[&0].app_digest);
}

#[test]
fn delaying_leader_in_prime_mode_is_replaced() {
    let mut cfg = PrimeConfig::new(1, 1);
    cfg.mode = ProtocolMode::Prime;
    let behavior = |i: u32| {
        if i == 0 {
            ByzBehavior::LeaderDelay(Span::millis(900))
        } else {
            ByzBehavior::Honest
        }
    };
    let mut cluster = build_cluster_with_clients(
        8,
        cfg.clone(),
        false,
        &[(0, Span::millis(50), 60)],
        behavior,
    );
    cluster.world.run_for(Span::secs(30));
    // Prime's turnaround monitoring replaces the slow leader well before the
    // 2 s progress timeout would fire per proposal.
    assert!(
        cluster.world.metrics().counter("prime.view_changes") >= 1,
        "slow leader was never suspected"
    );
    assert_eq!(cluster.world.metrics().counter("client0.accepted"), 60);
    // After the view change, latency returns to normal: overall mean stays
    // far below the 900 ms injected delay.
    let lats = cluster.world.metrics().values("client0.latency_ms");
    let p50 = spire_sim::stats::percentile(&lats, 50.0);
    assert!(p50 < 450.0, "median latency {p50} ms under Prime");
}

#[test]
fn delaying_leader_in_pbft_mode_degrades_forever() {
    let mut cfg = PrimeConfig::new(1, 1);
    cfg.mode = ProtocolMode::PbftLike;
    let behavior = |i: u32| {
        if i == 0 {
            // Just below the 2 s progress timeout.
            ByzBehavior::LeaderDelay(Span::millis(900))
        } else {
            ByzBehavior::Honest
        }
    };
    let mut cluster = build_cluster_with_clients(
        9,
        cfg.clone(),
        false,
        &[(0, Span::millis(50), 60)],
        behavior,
    );
    cluster.world.run_for(Span::secs(60));
    // The PBFT-like baseline never suspects the slow-but-not-stopped leader.
    assert_eq!(
        cluster.world.metrics().counter("prime.view_changes"),
        0,
        "pbft mode should not detect the performance attack"
    );
    let lats = cluster.world.metrics().values("client0.latency_ms");
    assert!(!lats.is_empty());
    let p50 = spire_sim::stats::percentile(&lats, 50.0);
    assert!(
        p50 > 450.0,
        "median latency {p50} ms should stay degraded in pbft mode"
    );
}

#[test]
fn proactive_recovery_rejoins_via_state_transfer() {
    let mut cfg = PrimeConfig::new(1, 1);
    cfg.checkpoint_interval = 5;
    let mut cluster =
        build_cluster_with_clients(10, cfg.clone(), false, &[(0, Span::millis(25), 0)], honest);
    // Proactively recover replica 4 at t=4 s: restart with a fresh,
    // recovering state machine.
    let pid = cluster.replica_pids[4];
    let material = cluster.material.clone();
    let keystore = Arc::clone(&cluster.keystore);
    let inspection = cluster.inspection.clone();
    let replica_pids = cluster.replica_pids.clone();
    let client_pid = ProcessId(replica_pids.last().unwrap().0 + 1);
    let cfg2 = cfg.clone();
    cluster
        .world
        .schedule_control(spire_sim::Time(4_000_000), move |w| {
            let signer = Signer::new(
                material.signing_key(NodeId(cfg2.replica_key_base + 4)),
                false,
            );
            let mut clients = std::collections::BTreeMap::new();
            clients.insert(0u32, client_pid);
            let net = spire_prime::DirectNet {
                replicas: replica_pids.clone(),
                clients,
            };
            let replica = Replica::new(
                cfg2.clone(),
                ReplicaId(4),
                ByzBehavior::Honest,
                keystore,
                signer,
                Box::new(net),
                Box::new(HashChainApp::new()),
                true, // recovering
            )
            .with_inspection(inspection.clone());
            w.restart(pid, Box::new(replica));
        });
    cluster.world.run_for(Span::secs(20));
    // Recovery completed and the recovered replica is executing again.
    assert_eq!(
        cluster.world.metrics().counter("prime.recovery_completed"),
        1
    );
    let records = cluster.inspection.records();
    let max_exec = records.values().map(|r| r.last_executed).max().unwrap();
    assert!(
        records[&4].last_executed + 10 >= max_exec,
        "recovered replica lags: {} vs {max_exec}",
        records[&4].last_executed
    );
    // Service never stopped (k=1 budget covers the recovery).
    let accepted = cluster.world.metrics().counter("client0.accepted");
    let sent = cluster.world.metrics().counter("client0.sent");
    assert!(accepted * 100 >= sent * 95, "accepted {accepted} of {sent}");
}

#[test]
fn equivocating_po_origin_cannot_split_execution() {
    // Replica 5 equivocates at the pre-ordering layer: different batch
    // contents under the same (origin, po_seq). At most one digest can
    // certify (quorum intersection); correct replicas must stay identical
    // and service must continue (ops are also batched by honest origins).
    let cfg = PrimeConfig::new(1, 1);
    let behavior = |i: u32| {
        if i == 5 {
            ByzBehavior::EquivocatePo
        } else {
            ByzBehavior::Honest
        }
    };
    let mut cluster = build_cluster_with_clients(
        21,
        cfg.clone(),
        false,
        &[(0, Span::millis(30), 40)],
        behavior,
    );
    cluster.world.run_for(Span::secs(20));
    assert_eq!(cluster.world.metrics().counter("client0.accepted"), 40);
    let correct = correct_ids(&cfg, behavior);
    cluster.inspection.check_safety(&correct).expect("safety");
}

#[test]
fn f2_configuration_works() {
    let cfg = PrimeConfig::new(2, 1); // n = 9
    let behavior = |i: u32| {
        if i == 3 || i == 7 {
            ByzBehavior::Mute
        } else {
            ByzBehavior::Honest
        }
    };
    let mut cluster = build_cluster_with_clients(
        11,
        cfg.clone(),
        true,
        &[(0, Span::millis(50), 20)],
        behavior,
    );
    cluster.world.run_for(Span::secs(15));
    assert_eq!(cluster.world.metrics().counter("client0.accepted"), 20);
    let correct = correct_ids(&cfg, behavior);
    cluster.inspection.check_safety(&correct).expect("safety");
}

#[test]
fn deterministic_across_seeds_for_same_seed() {
    fn run(seed: u64) -> (u64, u64) {
        let cfg = PrimeConfig::new(1, 0);
        let mut cluster =
            build_cluster_with_clients(seed, cfg, false, &[(0, Span::millis(40), 15)], honest);
        cluster.world.run_for(Span::secs(8));
        (
            cluster.world.metrics().counter("client0.accepted"),
            cluster.world.metrics().counter("sim.delivered"),
        )
    }
    assert_eq!(run(42), run(42));
}

// keep the helper used (silence dead-code warnings in this test binary)
#[allow(dead_code)]
fn _unused(cluster: &mut Cluster) {
    let _ = add_client(cluster, 9, Span::secs(1), 1);
    let _ = build_cluster(0, PrimeConfig::new(1, 0), true, honest);
    let _ = Bytes::new();
    let _: Option<CounterApp> = None;
}
