//! Property-based tests of the cryptographic primitives.

use proptest::prelude::*;
use spire_crypto::ed25519::SigningKey;
use spire_crypto::hmac::{hmac_sha256, verify_hmac_sha256};
use spire_crypto::keys::{mock_sign64, verify64, KeyMaterial, KeyStore, NodeId, Signer};
use spire_crypto::merkle::MerkleTree;
use spire_crypto::sha2::{Sha256, Sha512};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                         split in 0usize..4096) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha512_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                         split in 0usize..4096) {
        let split = split.min(data.len());
        let mut h = Sha512::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize().to_vec(), Sha512::digest(&data).to_vec());
    }

    #[test]
    fn distinct_inputs_distinct_digests(a in proptest::collection::vec(any::<u8>(), 0..256),
                                        b in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assume!(a != b);
        prop_assert_ne!(Sha256::digest(&a), Sha256::digest(&b));
    }

    #[test]
    fn hmac_roundtrip_and_tamper(key in proptest::collection::vec(any::<u8>(), 0..128),
                                 msg in proptest::collection::vec(any::<u8>(), 0..512),
                                 flip in 0usize..512) {
        let tag = hmac_sha256(&key, &msg);
        prop_assert!(verify_hmac_sha256(&key, &msg, &tag));
        if !msg.is_empty() {
            let mut tampered = msg.clone();
            let idx = flip % tampered.len();
            tampered[idx] ^= 1;
            prop_assert!(!verify_hmac_sha256(&key, &tampered, &tag));
        }
    }

    #[test]
    fn ed25519_sign_verify_roundtrip(seed in any::<[u8; 32]>(),
                                     msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        prop_assert!(key.verifying_key().verify(&msg, &sig));
    }

    #[test]
    fn ed25519_rejects_tampered_message(seed in any::<[u8; 32]>(),
                                        msg in proptest::collection::vec(any::<u8>(), 1..256),
                                        flip in 0usize..256) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        let mut tampered = msg.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 0x40;
        prop_assert!(!key.verifying_key().verify(&tampered, &sig));
    }

    #[test]
    fn ed25519_cross_key_rejection(seed_a in any::<[u8; 32]>(), seed_b in any::<[u8; 32]>(),
                                   msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(seed_a != seed_b);
        let a = SigningKey::from_seed(&seed_a);
        let b = SigningKey::from_seed(&seed_b);
        let sig = a.sign(&msg);
        prop_assert!(!b.verifying_key().verify(&msg, &sig));
    }

    #[test]
    fn merkle_all_proofs_verify(leaves in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..32), 1..40)) {
        let tree = MerkleTree::build(leaves.iter().map(|l| l.as_slice()));
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(proof.verify(&tree.root(), leaf));
        }
    }

    #[test]
    fn merkle_proof_rejects_other_leaves(leaves in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..16), 2..20), idx in 0usize..20) {
        let tree = MerkleTree::build(leaves.iter().map(|l| l.as_slice()));
        let idx = idx % leaves.len();
        let other = (idx + 1) % leaves.len();
        prop_assume!(leaves[idx] != leaves[other]);
        let proof = tree.prove(idx).unwrap();
        prop_assert!(!proof.verify(&tree.root(), &leaves[other]));
    }

    #[test]
    fn signer_modes_bind_messages(seed in any::<u64>(),
                                  msg in proptest::collection::vec(any::<u8>(), 0..128),
                                  mock in any::<bool>()) {
        let material = KeyMaterial::new([9u8; 32]);
        let store = KeyStore::for_nodes(&material, 4);
        let node = NodeId((seed % 4) as u32);
        let signer = Signer::new(material.signing_key(node), mock);
        let sig = signer.sign64(&msg);
        prop_assert!(verify64(&store, node, &msg, &sig, mock));
        let mut other = msg.clone();
        other.push(0);
        prop_assert!(!verify64(&store, node, &other, &sig, mock));
    }
}

#[test]
fn mock_signature_is_deterministic() {
    let material = KeyMaterial::new([1u8; 32]);
    let pk = material.signing_key(NodeId(0)).verifying_key();
    assert_eq!(mock_sign64(&pk, b"x"), mock_sign64(&pk, b"x"));
    assert_ne!(mock_sign64(&pk, b"x"), mock_sign64(&pk, b"y"));
}

mod erasure_props {
    use proptest::prelude::*;
    use spire_crypto::erasure::{decode, encode};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn any_k_subset_reconstructs(data in proptest::collection::vec(any::<u8>(), 0..512),
                                     k in 1usize..5, extra in 0usize..4,
                                     pick in any::<u64>()) {
            let n = k + extra;
            let shares = encode(&data, k, n).unwrap();
            prop_assert_eq!(shares.len(), n);
            // Pseudo-randomly pick k distinct shares.
            let mut indices: Vec<usize> = (0..n).collect();
            let mut seed = pick;
            for i in (1..indices.len()).rev() {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                indices.swap(i, (seed % (i as u64 + 1)) as usize);
            }
            let subset: Vec<_> = indices[..k].iter().map(|i| shares[*i].clone()).collect();
            prop_assert_eq!(decode(&subset, k).unwrap(), data);
        }

        #[test]
        fn share_sizes_are_balanced(data in proptest::collection::vec(any::<u8>(), 0..512),
                                    k in 1usize..6) {
            let shares = encode(&data, k, k + 2).unwrap();
            let len = shares[0].data.len();
            prop_assert!(shares.iter().all(|s| s.data.len() == len));
            // Overhead is the 8-byte length frame plus <= k-1 padding.
            prop_assert!(len * k <= data.len() + 8 + k);
        }
    }
}

mod bignum_props {
    use proptest::prelude::*;
    use spire_crypto::bignum::{Montgomery, Ubig};

    fn big(v: u128) -> Ubig {
        Ubig::from_be_bytes(&v.to_be_bytes())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn add_sub_mul_match_u128(a in any::<u64>(), b in any::<u64>()) {
            let (ba, bb) = (big(a as u128), big(b as u128));
            prop_assert_eq!(ba.add(&bb), big(a as u128 + b as u128));
            prop_assert_eq!(ba.mul(&bb), big(a as u128 * b as u128));
            if a >= b {
                prop_assert_eq!(ba.sub(&bb), big((a - b) as u128));
            }
        }

        #[test]
        fn div_rem_reconstructs(a in any::<u128>(), m in 1u128..) {
            let (q, r) = big(a).div_rem(&big(m));
            prop_assert_eq!(q.mul(&big(m)).add(&r), big(a));
            prop_assert!(r.cmp_with(&big(m)) == std::cmp::Ordering::Less);
        }

        #[test]
        fn montgomery_pow_matches_naive_u64(a in any::<u64>(), e in 0u64..4096, m in any::<u32>()) {
            let m = (m as u64) | 1; // odd
            prop_assume!(m > 1);
            let mont = Montgomery::new(&Ubig::from_u64(m));
            let mut expected: u128 = 1;
            let base = (a % m) as u128;
            for _ in 0..e {
                expected = expected * base % m as u128;
            }
            prop_assert_eq!(
                mont.pow(&Ubig::from_u64(a), &Ubig::from_u64(e)),
                big(expected)
            );
        }
    }
}
