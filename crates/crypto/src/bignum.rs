//! Minimal arbitrary-precision unsigned integers for the RSA module.
//!
//! Little-endian `u64` limbs, normalized (no trailing zero limbs). Only the
//! operations RSA needs are provided; modular exponentiation avoids general
//! division entirely by using Montgomery arithmetic (see [`Montgomery`]),
//! with `R^2 mod n` computed by shift-and-subtract doubling.

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Ubig {
    /// Little-endian limbs, normalized.
    limbs: Vec<u64>,
}

impl Ubig {
    /// Zero.
    pub fn zero() -> Ubig {
        Ubig { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Ubig {
        Ubig::from_u64(1)
    }

    /// From a machine word.
    pub fn from_u64(v: u64) -> Ubig {
        let mut n = Ubig { limbs: vec![v] };
        n.normalize();
        n
    }

    /// From big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Ubig {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut word = [0u8; 8];
            word[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(word));
        }
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// To big-endian bytes, left-padded with zeros to `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut idx = len;
        for limb in &self.limbs {
            let bytes = limb.to_be_bytes();
            for b in bytes.iter().rev() {
                if idx == 0 {
                    assert_eq!(*b, 0, "value does not fit in {len} bytes");
                    continue;
                }
                idx -= 1;
                out[idx] = *b;
            }
        }
        out
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True if zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().map(|l| l & 1 == 1).unwrap_or(false)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (LSB = 0).
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 64)
            .map(|l| (l >> (i % 64)) & 1 == 1)
            .unwrap_or(false)
    }

    /// Comparison.
    pub fn cmp_with(&self, other: &Ubig) -> std::cmp::Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            if a != b {
                return a.cmp(b);
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Addition.
    pub fn add(&self, other: &Ubig) -> Ubig {
        let mut limbs = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            limbs.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            limbs.push(carry);
        }
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// Subtraction (`self - other`).
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    pub fn sub(&self, other: &Ubig) -> Ubig {
        assert!(
            self.cmp_with(other) != std::cmp::Ordering::Less,
            "bignum subtraction underflow"
        );
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            limbs.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// Multiplication (schoolbook).
    pub fn mul(&self, other: &Ubig) -> Ubig {
        if self.is_zero() || other.is_zero() {
            return Ubig::zero();
        }
        let mut limbs = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, b) in other.limbs.iter().enumerate() {
                let v = (*a as u128) * (*b as u128) + (limbs[i + j] as u128) + carry;
                limbs[i + j] = v as u64;
                carry = v >> 64;
            }
            let mut k = i + other.limbs.len();
            let mut c = carry;
            while c > 0 {
                let v = limbs[k] as u128 + c;
                limbs[k] = v as u64;
                c = v >> 64;
                k += 1;
            }
        }
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// Left shift by one bit.
    pub fn shl1(&self) -> Ubig {
        let mut limbs = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for l in &self.limbs {
            limbs.push((l << 1) | carry);
            carry = l >> 63;
        }
        if carry > 0 {
            limbs.push(carry);
        }
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// Right shift by one bit.
    pub fn shr1(&self) -> Ubig {
        let mut limbs = self.limbs.clone();
        let mut carry = 0u64;
        for l in limbs.iter_mut().rev() {
            let new_carry = *l & 1;
            *l = (*l >> 1) | (carry << 63);
            carry = new_carry;
        }
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// `self mod m` by shift-and-subtract (setup paths only).
    pub fn rem(&self, m: &Ubig) -> Ubig {
        self.div_rem(m).1
    }

    /// Quotient and remainder by shift-and-subtract (setup paths only).
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, m: &Ubig) -> (Ubig, Ubig) {
        assert!(!m.is_zero(), "division by zero");
        if self.cmp_with(m) == std::cmp::Ordering::Less {
            return (Ubig::zero(), self.clone());
        }
        let shift = self.bits() - m.bits();
        let mut d = m.clone();
        for _ in 0..shift {
            d = d.shl1();
        }
        let mut r = self.clone();
        let mut q = Ubig::zero();
        for _ in 0..=shift {
            q = q.shl1();
            if r.cmp_with(&d) != std::cmp::Ordering::Less {
                r = r.sub(&d);
                q = q.add(&Ubig::one());
            }
            d = d.shr1();
        }
        (q, r)
    }
}

/// Montgomery arithmetic context for an odd modulus.
pub struct Montgomery {
    n: Ubig,
    n_limbs: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R^2 mod n` where `R = 2^(64 * limbs)`.
    r2: Ubig,
    limbs: usize,
}

impl Montgomery {
    /// Creates a context for odd modulus `n > 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or `< 2`.
    pub fn new(n: &Ubig) -> Montgomery {
        assert!(n.is_odd() && n.bits() > 1, "modulus must be odd and > 1");
        let limbs = n.limbs.len();
        // n' = -n^{-1} mod 2^64 via Newton's iteration.
        let n0 = n.limbs[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        // R^2 mod n by doubling R-bits times starting from R mod n.
        // R mod n: start from 1, double 64*limbs times.
        let mut r = Ubig::one();
        for _ in 0..(64 * limbs) {
            r = r.shl1();
            if r.cmp_with(n) != std::cmp::Ordering::Less {
                r = r.sub(n);
            }
        }
        // r = R mod n; square it by doubling again R-bits times.
        let mut r2 = r;
        for _ in 0..(64 * limbs) {
            r2 = r2.shl1();
            if r2.cmp_with(n) != std::cmp::Ordering::Less {
                r2 = r2.sub(n);
            }
        }
        let mut n_limbs = n.limbs.clone();
        n_limbs.resize(limbs, 0);
        Montgomery {
            n: n.clone(),
            n_limbs,
            n_prime,
            r2,
            limbs,
        }
    }

    /// Montgomery product: `a * b * R^{-1} mod n` (CIOS).
    #[allow(clippy::needless_range_loop)] // limb indices mirror the CIOS paper
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let s = self.limbs;
        let mut t = vec![0u64; s + 2];
        for i in 0..s {
            // t += a[i] * b
            let mut carry = 0u128;
            for j in 0..s {
                let v = (a[i] as u128) * (b[j] as u128) + (t[j] as u128) + carry;
                t[j] = v as u64;
                carry = v >> 64;
            }
            let v = (t[s] as u128) + carry;
            t[s] = v as u64;
            t[s + 1] = (v >> 64) as u64;
            // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let v = (m as u128) * (self.n_limbs[0] as u128) + (t[0] as u128);
            let mut carry = v >> 64;
            for j in 1..s {
                let v = (m as u128) * (self.n_limbs[j] as u128) + (t[j] as u128) + carry;
                t[j - 1] = v as u64;
                carry = v >> 64;
            }
            let v = (t[s] as u128) + carry;
            t[s - 1] = v as u64;
            t[s] = t[s + 1] + ((v >> 64) as u64);
            t[s + 1] = 0;
        }
        // Conditional subtraction.
        let mut out = t[..s].to_vec();
        let overflow = t[s] > 0;
        let ge = overflow || {
            let candidate = Ubig {
                limbs: {
                    let mut l = out.clone();
                    while l.last() == Some(&0) {
                        l.pop();
                    }
                    l
                },
            };
            candidate.cmp_with(&self.n) != std::cmp::Ordering::Less
        };
        if ge {
            // out = out (+ 2^64s if overflow) - n
            let mut borrow = 0u64;
            for j in 0..s {
                let (d1, b1) = out[j].overflowing_sub(self.n_limbs[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            debug_assert!(overflow || borrow == 0);
        }
        out
    }

    fn to_mont(&self, a: &Ubig) -> Vec<u64> {
        let mut limbs = a.rem(&self.n).limbs;
        limbs.resize(self.limbs, 0);
        let mut r2 = self.r2.limbs.clone();
        r2.resize(self.limbs, 0);
        self.mont_mul(&limbs, &r2)
    }

    #[allow(clippy::wrong_self_convention)] // converts `a`, not `self`
    fn from_mont(&self, a: &[u64]) -> Ubig {
        let mut one = vec![0u64; self.limbs];
        one[0] = 1;
        let limbs = self.mont_mul(a, &one);
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// Modular exponentiation: `base^exp mod n`.
    pub fn pow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        let base_m = self.to_mont(base);
        // result = 1 in Montgomery form = R mod n = to_mont(1)
        let mut result = self.to_mont(&Ubig::one());
        let bits = exp.bits();
        for i in (0..bits).rev() {
            result = self.mont_mul(&result, &result);
            if exp.bit(i) {
                result = self.mont_mul(&result, &base_m);
            }
        }
        self.from_mont(&result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> Ubig {
        Ubig::from_be_bytes(&v.to_be_bytes())
    }

    #[test]
    fn roundtrip_bytes() {
        let n = Ubig::from_be_bytes(&[0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11]);
        assert_eq!(
            n.to_be_bytes_padded(9),
            vec![0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11]
        );
        assert_eq!(n.to_be_bytes_padded(12)[..3], [0, 0, 0]);
    }

    #[test]
    fn arithmetic_small() {
        let a = big(0xffff_ffff_ffff_ffff_ffff);
        let b = big(0x1_0000);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.mul(&b), big(0xffff_ffff_ffff_ffff_ffff * 0x1_0000));
        assert_eq!(big(100).rem(&big(7)), big(2));
        assert_eq!(big(6).rem(&big(7)), big(6));
    }

    #[test]
    fn bits_and_shifts() {
        let a = big(0b1011);
        assert_eq!(a.bits(), 4);
        assert!(a.bit(0) && a.bit(1) && !a.bit(2) && a.bit(3));
        assert_eq!(a.shl1(), big(0b10110));
        assert_eq!(a.shr1(), big(0b101));
    }

    #[test]
    fn montgomery_pow_matches_naive() {
        // Check a^e mod n against u128 arithmetic for odd moduli.
        fn naive(a: u64, e: u64, n: u64) -> u64 {
            let mut result: u128 = 1;
            let mut base = (a % n) as u128;
            let mut e = e;
            while e > 0 {
                if e & 1 == 1 {
                    result = result * base % n as u128;
                }
                base = base * base % n as u128;
                e >>= 1;
            }
            result as u64
        }
        for (a, e, n) in [
            (2u64, 10u64, 1_000_003u64),
            (7, 65537, 0xffff_fffb),
            (123456789, 987654321, 0x7fff_ffff_ffff_ffe7),
            (5, 0, 97),
            (0, 5, 97),
        ] {
            let mont = Montgomery::new(&Ubig::from_u64(n));
            let got = mont.pow(&Ubig::from_u64(a), &Ubig::from_u64(e));
            assert_eq!(got, Ubig::from_u64(naive(a, e, n)), "{a}^{e} mod {n}");
        }
    }

    #[test]
    fn montgomery_multi_limb_fermat() {
        // Fermat's little theorem with a known 128-bit-scale prime:
        // p = 2^89 - 1 (a Mersenne prime): a^(p-1) = 1 mod p.
        let p = {
            let one = Ubig::one();
            let mut v = Ubig::one();
            for _ in 0..89 {
                v = v.shl1();
            }
            v.sub(&one)
        };
        let mont = Montgomery::new(&p);
        let a = Ubig::from_u64(123456789);
        let exp = p.sub(&Ubig::one());
        assert_eq!(mont.pow(&a, &exp), Ubig::one());
    }

    #[test]
    fn rem_matches_definition() {
        let a = big(u128::MAX - 12345);
        let m = big(0x1234_5678_9abc_def1);
        let r = a.rem(&m);
        // a = q*m + r with r < m: verify r < m and (a - r) divisible by m via
        // reconstruction: find q by repeated... use u128 arithmetic directly.
        let a128 = u128::MAX - 12345;
        let m128 = 0x1234_5678_9abc_def1u128;
        assert_eq!(r, big(a128 % m128));
    }
}
