//! HMAC-SHA256 (RFC 2104), used for Spines link authentication.

use crate::sha2::Sha256;

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Examples
///
/// ```
/// use spire_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"link-key", b"hello");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Verifies an HMAC-SHA256 tag in constant time.
pub fn verify_hmac_sha256(key: &[u8], message: &[u8], tag: &[u8; 32]) -> bool {
    constant_time_eq(&hmac_sha256(key, message), tag)
}

/// Constant-time byte-slice equality (length must match).
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Incremental HMAC-SHA256 computation.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = Sha256::digest(key);
            key_block[..32].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha2::to_hex;

    // RFC 4231 test cases for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        let key = vec![0xaau8; 131];
        let short = hmac_sha256(&Sha256::digest(&key), b"msg");
        let long = hmac_sha256(&key, b"msg");
        assert_eq!(short, long);
    }

    #[test]
    fn tamper_detection() {
        let tag = hmac_sha256(b"k", b"payload");
        assert!(verify_hmac_sha256(b"k", b"payload", &tag));
        assert!(!verify_hmac_sha256(b"k", b"payloae", &tag));
        assert!(!verify_hmac_sha256(b"j", b"payload", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"k", b"payload", &bad));
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"part one ");
        mac.update(b"part two");
        assert_eq!(mac.finalize(), hmac_sha256(b"key", b"part one part two"));
    }

    #[test]
    fn constant_time_eq_lengths() {
        assert!(!constant_time_eq(b"abc", b"abcd"));
        assert!(constant_time_eq(b"", b""));
    }
}
