//! Cryptographic primitives for the Spire reproduction, implemented from
//! scratch on top of the standard library only.
//!
//! The original Spire system (Babay et al., DSN 2018) authenticates all
//! replica-to-replica and proxy-to-replica traffic with RSA signatures via
//! OpenSSL and authenticates Spines overlay links with HMACs. This crate
//! provides the equivalent primitives:
//!
//! * [`sha2`] — SHA-256 / SHA-512 (FIPS 180-4), with round constants
//!   *computed* from their definitions rather than transcribed.
//! * [`hmac`] — HMAC-SHA256 for overlay link authentication.
//! * [`ed25519`] — Ed25519 signatures (RFC 8032) replacing RSA.
//! * [`merkle`] — Merkle trees for state-transfer integrity and signature
//!   amortization over message batches.
//! * [`batch`] — amortized batch signing: one signature per Merkle root of
//!   outgoing message digests, plus per-message inclusion attestations and
//!   bounded verification caches.
//! * [`erasure`] — GF(256) Reed-Solomon erasure codes, as Prime/Spire use
//!   for bandwidth-efficient reconciliation and state transfer.
//! * [`rsa`] (with [`bignum`]) — RSA PKCS#1 v1.5 signatures, the primitive
//!   the original system actually deployed (for fidelity benchmarks).
//! * [`keys`] — deterministic key provisioning and the public-key directory.
//!
//! # Examples
//!
//! Sign and verify a protocol message:
//!
//! ```
//! use spire_crypto::keys::{KeyMaterial, KeyStore, NodeId};
//!
//! let material = KeyMaterial::new([0u8; 32]);
//! let store = KeyStore::for_nodes(&material, 6);
//! let signer = material.signing_key(NodeId(2));
//! let sig = signer.sign(b"PO-REQUEST 17");
//! assert!(store.verify(NodeId(2), b"PO-REQUEST 17", &sig));
//! ```

pub mod batch;
pub mod bignum;
pub mod ed25519;
pub mod erasure;
pub mod hmac;
pub mod keys;
pub mod merkle;
pub mod rsa;
pub mod sha2;

pub use batch::{BatchAttestation, BatchSigner, DigestCache, SignedBatch};
pub use ed25519::{Signature, SigningKey, VerifyingKey};
pub use keys::{KeyMaterial, KeyStore, NodeId};
pub use merkle::Digest;

/// Convenience: SHA-256 digest of `data`.
pub fn digest(data: &[u8]) -> Digest {
    sha2::Sha256::digest(data)
}

/// Convenience: SHA-256 over the concatenation of several byte slices.
pub fn digest_parts(parts: &[&[u8]]) -> Digest {
    let mut h = sha2::Sha256::new();
    for part in parts {
        h.update(part);
    }
    h.finalize()
}
