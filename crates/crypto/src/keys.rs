//! Key management for a Spire deployment.
//!
//! Every protocol participant (replica, proxy, HMI, Spines daemon) holds an
//! Ed25519 identity key; every Spines link additionally shares a symmetric
//! HMAC key. In the real system these are provisioned offline by the
//! operator; here a deterministic [`KeyMaterial`] generator plays that role
//! so simulations are reproducible.

use crate::ed25519::{SigningKey, VerifyingKey};
use crate::sha2::Sha256;
use std::collections::BTreeMap;

/// Logical identity of a protocol participant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Deterministic key provisioning for a whole deployment.
///
/// Derives all keys from a master seed, mimicking an offline provisioning
/// ceremony. A given `(seed, node)` pair always yields the same keys, which
/// keeps simulation runs reproducible.
#[derive(Clone, Debug)]
pub struct KeyMaterial {
    master_seed: [u8; 32],
}

impl KeyMaterial {
    /// Creates key material from a master seed.
    pub fn new(master_seed: [u8; 32]) -> KeyMaterial {
        KeyMaterial { master_seed }
    }

    /// Derives the signing key for `node` (epoch 0).
    pub fn signing_key(&self, node: NodeId) -> SigningKey {
        self.signing_key_epoch(node, 0)
    }

    /// Derives the signing key for `node` at a given key epoch.
    ///
    /// Proactive recovery refreshes a replica's session key by bumping the
    /// epoch, so keys stolen during a compromise become useless after the
    /// replica is rejuvenated.
    pub fn signing_key_epoch(&self, node: NodeId, epoch: u64) -> SigningKey {
        let mut h = Sha256::new();
        h.update(b"spire-signing-key");
        h.update(&self.master_seed);
        h.update(&node.0.to_le_bytes());
        h.update(&epoch.to_le_bytes());
        SigningKey::from_seed(&h.finalize())
    }

    /// Derives the symmetric HMAC key for the link between two nodes
    /// (order-independent).
    pub fn link_key(&self, a: NodeId, b: NodeId) -> [u8; 32] {
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        let mut h = Sha256::new();
        h.update(b"spire-link-key");
        h.update(&self.master_seed);
        h.update(&lo.0.to_le_bytes());
        h.update(&hi.0.to_le_bytes());
        h.finalize()
    }
}

/// Public-key directory distributed to every participant.
#[derive(Clone, Debug, Default)]
pub struct KeyStore {
    keys: BTreeMap<NodeId, VerifyingKey>,
}

impl KeyStore {
    /// Creates an empty key store.
    pub fn new() -> KeyStore {
        KeyStore::default()
    }

    /// Builds the directory for nodes `0..n` from shared key material.
    pub fn for_nodes(material: &KeyMaterial, n: u32) -> KeyStore {
        let mut store = KeyStore::new();
        for i in 0..n {
            let node = NodeId(i);
            store.insert(node, material.signing_key(node).verifying_key());
        }
        store
    }

    /// Registers (or replaces) a node's public key.
    pub fn insert(&mut self, node: NodeId, key: VerifyingKey) {
        self.keys.insert(node, key);
    }

    /// Looks up a node's public key.
    pub fn get(&self, node: NodeId) -> Option<&VerifyingKey> {
        self.keys.get(&node)
    }

    /// Verifies a signature attributed to `node`.
    pub fn verify(&self, node: NodeId, message: &[u8], sig: &crate::ed25519::Signature) -> bool {
        match self.keys.get(&node) {
            Some(key) => key.verify(message, sig),
            None => false,
        }
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Computes a simulation-only "mock signature": `SHA-256(pk || msg)`
/// repeated to 64 bytes.
///
/// Mock signatures have the same interface and message-binding behaviour as
/// real ones but **no unforgeability** — any process that knows the public
/// key can produce them. They exist so that macro-scale experiments (hours
/// of simulated traffic) do not spend wall-clock time on Ed25519 while the
/// protocol logic exercised stays identical. All adversarial *tests* use
/// real signatures.
pub fn mock_sign64(pk: &VerifyingKey, msg: &[u8]) -> [u8; 64] {
    let h = crate::digest_parts(&[b"mock-sig", &pk.to_bytes(), msg]);
    let mut out = [0u8; 64];
    out[..32].copy_from_slice(&h);
    out[32..].copy_from_slice(&h);
    out
}

/// Verifies a 64-byte signature for `node`, in either real or mock mode.
pub fn verify64(store: &KeyStore, node: NodeId, msg: &[u8], sig: &[u8; 64], mock: bool) -> bool {
    match store.get(node) {
        Some(pk) => {
            if mock {
                crate::hmac::constant_time_eq(&mock_sign64(pk, msg), sig)
            } else {
                pk.verify(msg, &crate::ed25519::Signature::from_bytes(*sig))
            }
        }
        None => false,
    }
}

/// A signing handle that produces real or mock signatures.
#[derive(Clone)]
pub struct Signer {
    key: SigningKey,
    mock: bool,
}

impl std::fmt::Debug for Signer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signer(mock={})", self.mock)
    }
}

impl Signer {
    /// Wraps a signing key; `mock` selects the scheme (see [`mock_sign64`]).
    pub fn new(key: SigningKey, mock: bool) -> Signer {
        Signer { key, mock }
    }

    /// Signs a message, returning 64 signature bytes.
    pub fn sign64(&self, msg: &[u8]) -> [u8; 64] {
        if self.mock {
            mock_sign64(&self.key.verifying_key(), msg)
        } else {
            self.key.sign(msg).to_bytes()
        }
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Whether this signer produces mock signatures.
    pub fn is_mock(&self) -> bool {
        self.mock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let m1 = KeyMaterial::new([1u8; 32]);
        let m2 = KeyMaterial::new([1u8; 32]);
        assert_eq!(
            m1.signing_key(NodeId(3)).verifying_key(),
            m2.signing_key(NodeId(3)).verifying_key()
        );
        assert_eq!(
            m1.link_key(NodeId(1), NodeId(2)),
            m2.link_key(NodeId(1), NodeId(2))
        );
    }

    #[test]
    fn distinct_nodes_distinct_keys() {
        let m = KeyMaterial::new([2u8; 32]);
        assert_ne!(
            m.signing_key(NodeId(0)).verifying_key(),
            m.signing_key(NodeId(1)).verifying_key()
        );
    }

    #[test]
    fn epoch_refresh_changes_key() {
        let m = KeyMaterial::new([3u8; 32]);
        assert_ne!(
            m.signing_key_epoch(NodeId(0), 0).verifying_key(),
            m.signing_key_epoch(NodeId(0), 1).verifying_key()
        );
    }

    #[test]
    fn link_key_is_symmetric() {
        let m = KeyMaterial::new([4u8; 32]);
        assert_eq!(
            m.link_key(NodeId(5), NodeId(9)),
            m.link_key(NodeId(9), NodeId(5))
        );
        assert_ne!(
            m.link_key(NodeId(5), NodeId(9)),
            m.link_key(NodeId(5), NodeId(8))
        );
    }

    #[test]
    fn signer_modes_roundtrip() {
        let m = KeyMaterial::new([6u8; 32]);
        let store = KeyStore::for_nodes(&m, 4);
        for mock in [false, true] {
            let signer = Signer::new(m.signing_key(NodeId(1)), mock);
            let sig = signer.sign64(b"msg");
            assert!(verify64(&store, NodeId(1), b"msg", &sig, mock));
            assert!(!verify64(&store, NodeId(1), b"other", &sig, mock));
            assert!(!verify64(&store, NodeId(2), b"msg", &sig, mock));
            assert!(!verify64(&store, NodeId(99), b"msg", &sig, mock));
            let mut bad = sig;
            bad[5] ^= 1;
            assert!(!verify64(&store, NodeId(1), b"msg", &bad, mock));
        }
        // Modes are not interchangeable.
        let signer = Signer::new(m.signing_key(NodeId(1)), true);
        let sig = signer.sign64(b"msg");
        assert!(!verify64(&store, NodeId(1), b"msg", &sig, false));
    }

    #[test]
    fn keystore_verify() {
        let m = KeyMaterial::new([5u8; 32]);
        let store = KeyStore::for_nodes(&m, 4);
        assert_eq!(store.len(), 4);
        let sk = m.signing_key(NodeId(2));
        let sig = sk.sign(b"hello");
        assert!(store.verify(NodeId(2), b"hello", &sig));
        assert!(!store.verify(NodeId(3), b"hello", &sig));
        assert!(!store.verify(NodeId(99), b"hello", &sig));
    }
}
