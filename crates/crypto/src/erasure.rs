//! Systematic Reed–Solomon erasure coding over GF(2^8).
//!
//! Prime's reconciliation and Spire's state transfer use maximum-distance-
//! separable erasure codes so that a recovering replica can rebuild large
//! state from *any* `k` of `n` responder shares instead of downloading the
//! full state from one (possibly slow or malicious) peer. This module
//! implements that substrate from scratch: GF(256) arithmetic with the
//! AES polynomial `x^8 + x^4 + x^3 + x + 1` (0x11b), systematic encoding
//! via polynomial evaluation, and Lagrange-interpolation decoding.

/// Number of field elements.
const FIELD: usize = 256;
/// The AES reduction polynomial.
const POLY: u16 = 0x11b;

/// Precomputed exp/log tables for GF(256) with generator 3.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static CELL: OnceLock<Tables> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(FIELD - 1) {
            *e = x as u8;
            log[x as usize] = i as u8;
            // Multiply by the generator 3 = x + 1: shift + add.
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in (FIELD - 1)..512 {
            exp[i] = exp[i - (FIELD - 1)];
        }
        Tables { exp, log }
    })
}

/// Multiplication in GF(256).
pub fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    let idx = t.log[a as usize] as usize + t.log[b as usize] as usize;
    t.exp[idx]
}

/// Multiplicative inverse in GF(256).
///
/// # Panics
///
/// Panics on zero (no inverse).
pub fn gf_inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse");
    let t = tables();
    t.exp[(FIELD - 1) - t.log[a as usize] as usize]
}

/// Division in GF(256).
pub fn gf_div(a: u8, b: u8) -> u8 {
    gf_mul(a, gf_inv(b))
}

/// One share of an erasure-coded blob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Share {
    /// Share index (the field evaluation point is `index`).
    pub index: u8,
    /// Share payload (same length for all shares of a blob).
    pub data: Vec<u8>,
}

/// Errors from erasure decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErasureError {
    /// Fewer than `k` distinct shares supplied.
    NotEnoughShares,
    /// Shares have inconsistent lengths.
    LengthMismatch,
    /// Parameters out of range (`k = 0` or `n > 255` or `k > n`).
    BadParameters,
    /// Duplicate share indices supplied.
    DuplicateShare,
}

impl std::fmt::Display for ErasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErasureError::NotEnoughShares => write!(f, "not enough shares to reconstruct"),
            ErasureError::LengthMismatch => write!(f, "share lengths differ"),
            ErasureError::BadParameters => write!(f, "invalid erasure parameters"),
            ErasureError::DuplicateShare => write!(f, "duplicate share index"),
        }
    }
}

impl std::error::Error for ErasureError {}

/// Splits `data` into `n` shares such that any `k` reconstruct it.
///
/// Systematic: shares `0..k` carry the padded data columns verbatim (cheap
/// fast path), shares `k..n` carry Reed–Solomon parity. Each byte column is
/// treated as the evaluations of a degree-`k-1` polynomial: data share `i`
/// is the evaluation at point `i`, parity shares at points `k..n`.
///
/// # Errors
///
/// Returns [`ErasureError::BadParameters`] if `k == 0`, `k > n`, or
/// `n > 255`.
pub fn encode(data: &[u8], k: usize, n: usize) -> Result<Vec<Share>, ErasureError> {
    if k == 0 || k > n || n > 255 {
        return Err(ErasureError::BadParameters);
    }
    // Prefix with the true length, then pad to a multiple of k.
    let mut framed = Vec::with_capacity(8 + data.len());
    framed.extend_from_slice(&(data.len() as u64).to_le_bytes());
    framed.extend_from_slice(data);
    let share_len = framed.len().div_ceil(k);
    framed.resize(share_len * k, 0);

    // Column-major data shares: byte j of share i (i < k) is framed[j*k + i].
    let mut shares: Vec<Share> = (0..n)
        .map(|i| Share {
            index: i as u8,
            data: vec![0u8; share_len],
        })
        .collect();
    for j in 0..share_len {
        for i in 0..k {
            shares[i].data[j] = framed[j * k + i];
        }
    }
    // Parity shares: evaluate the interpolating polynomial of points
    // (0, d0), ..., (k-1, d_{k-1}) at x = k..n-1, via Lagrange basis
    // coefficients precomputed per evaluation point.
    for x in k..n {
        let coefficients = lagrange_coefficients_at(k, x as u8);
        for j in 0..share_len {
            let mut acc = 0u8;
            for (i, c) in coefficients.iter().enumerate() {
                acc ^= gf_mul(*c, shares[i].data[j]);
            }
            shares[x].data[j] = acc;
        }
    }
    Ok(shares)
}

/// The Lagrange basis coefficients `l_i(x)` for nodes `0..k` at point `x`.
fn lagrange_coefficients_at(k: usize, x: u8) -> Vec<u8> {
    (0..k)
        .map(|i| {
            let xi = i as u8;
            let mut num = 1u8;
            let mut den = 1u8;
            for m in 0..k {
                if m == i {
                    continue;
                }
                let xm = m as u8;
                num = gf_mul(num, x ^ xm); // (x - x_m): subtraction is XOR
                den = gf_mul(den, xi ^ xm);
            }
            gf_div(num, den)
        })
        .collect()
}

/// Reconstructs the original data from any `k` distinct shares.
///
/// # Errors
///
/// See [`ErasureError`].
pub fn decode(shares: &[Share], k: usize) -> Result<Vec<u8>, ErasureError> {
    if k == 0 || k > 255 {
        return Err(ErasureError::BadParameters);
    }
    if shares.len() < k {
        return Err(ErasureError::NotEnoughShares);
    }
    let share_len = shares[0].data.len();
    if shares.iter().any(|s| s.data.len() != share_len) {
        return Err(ErasureError::LengthMismatch);
    }
    let chosen = &shares[..k];
    {
        let mut seen = [false; 256];
        for s in chosen {
            if seen[s.index as usize] {
                return Err(ErasureError::DuplicateShare);
            }
            seen[s.index as usize] = true;
        }
    }
    // Interpolate the data points 0..k from the chosen shares.
    // For each target point t in 0..k, coefficient vector over chosen nodes.
    let mut framed = vec![0u8; share_len * k];
    let nodes: Vec<u8> = chosen.iter().map(|s| s.index).collect();
    for (t, target) in (0..k).enumerate() {
        // Fast path: the systematic share for this point is present.
        if let Some(s) = chosen.iter().find(|s| s.index == target as u8) {
            for j in 0..share_len {
                framed[j * k + t] = s.data[j];
            }
            continue;
        }
        let coefficients: Vec<u8> = (0..k)
            .map(|i| {
                let xi = nodes[i];
                let mut num = 1u8;
                let mut den = 1u8;
                for (m, xm) in nodes.iter().enumerate() {
                    if m == i {
                        continue;
                    }
                    num = gf_mul(num, (target as u8) ^ xm);
                    den = gf_mul(den, xi ^ xm);
                }
                gf_div(num, den)
            })
            .collect();
        for j in 0..share_len {
            let mut acc = 0u8;
            for (i, c) in coefficients.iter().enumerate() {
                acc ^= gf_mul(*c, chosen[i].data[j]);
            }
            framed[j * k + t] = acc;
        }
    }
    // Strip the length frame.
    if framed.len() < 8 {
        return Err(ErasureError::LengthMismatch);
    }
    let len = u64::from_le_bytes(framed[..8].try_into().unwrap()) as usize;
    if len > framed.len() - 8 {
        return Err(ErasureError::LengthMismatch);
    }
    Ok(framed[8..8 + len].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_field_axioms_spot_checks() {
        // Known AES field facts: 0x53 * 0xCA = 0x01.
        assert_eq!(gf_mul(0x53, 0xca), 0x01);
        assert_eq!(gf_inv(0x53), 0xca);
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 0), 0);
        }
    }

    #[test]
    fn gf_mul_is_commutative_and_distributive() {
        for a in [0u8, 1, 2, 7, 0x53, 0xff] {
            for b in [0u8, 1, 3, 0x80, 0xca] {
                assert_eq!(gf_mul(a, b), gf_mul(b, a));
                for c in [0u8, 5, 0xaa] {
                    assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
                }
            }
        }
    }

    #[test]
    fn roundtrip_systematic_shares() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let shares = encode(&data, 4, 6).unwrap();
        assert_eq!(shares.len(), 6);
        // Any k = 4 systematic shares reconstruct.
        assert_eq!(decode(&shares[..4], 4).unwrap(), data);
    }

    #[test]
    fn roundtrip_with_parity_shares() {
        let data = b"power grid state snapshot".to_vec();
        let shares = encode(&data, 3, 6).unwrap();
        // Drop all systematic shares; use parity only.
        let parity = vec![shares[3].clone(), shares[4].clone(), shares[5].clone()];
        assert_eq!(decode(&parity, 3).unwrap(), data);
        // Mixed subset.
        let mixed = vec![shares[1].clone(), shares[5].clone(), shares[2].clone()];
        assert_eq!(decode(&mixed, 3).unwrap(), data);
    }

    #[test]
    fn every_k_subset_reconstructs() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 7 % 256) as u8).collect();
        let (k, n) = (3usize, 6usize);
        let shares = encode(&data, k, n).unwrap();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let subset = vec![shares[a].clone(), shares[b].clone(), shares[c].clone()];
                    assert_eq!(decode(&subset, k).unwrap(), data, "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn too_few_shares_fails() {
        let shares = encode(b"x", 3, 5).unwrap();
        assert_eq!(decode(&shares[..2], 3), Err(ErasureError::NotEnoughShares));
    }

    #[test]
    fn duplicate_share_rejected() {
        let shares = encode(b"hello", 2, 4).unwrap();
        let dup = vec![shares[1].clone(), shares[1].clone()];
        assert_eq!(decode(&dup, 2), Err(ErasureError::DuplicateShare));
    }

    #[test]
    fn bad_parameters_rejected() {
        assert_eq!(encode(b"x", 0, 3), Err(ErasureError::BadParameters));
        assert_eq!(encode(b"x", 4, 3), Err(ErasureError::BadParameters));
        assert_eq!(encode(b"x", 3, 300), Err(ErasureError::BadParameters));
    }

    #[test]
    fn empty_data_roundtrips() {
        let shares = encode(&[], 2, 4).unwrap();
        assert_eq!(decode(&shares[1..3], 2).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn k_equals_one_is_replication() {
        let data = b"replica".to_vec();
        let shares = encode(&data, 1, 3).unwrap();
        for s in &shares {
            assert_eq!(decode(std::slice::from_ref(s), 1).unwrap(), data);
        }
    }

    #[test]
    fn k_equals_n_has_no_redundancy_but_works() {
        let data: Vec<u8> = (0..100).collect();
        let shares = encode(&data, 5, 5).unwrap();
        assert_eq!(decode(&shares, 5).unwrap(), data);
    }
}
