//! Amortized authentication: one signature per batch of outgoing messages.
//!
//! Prime (and therefore Spire) meets the grid's latency bound only because
//! replicas do not sign every protocol message individually. Instead, a
//! sender accumulates the digests of the messages it wants to send during
//! one event-handling step, builds a Merkle tree over them, and signs the
//! *root* once. Each message then ships with a small inclusion proof
//! ([`BatchAttestation`]): the signed root plus `log2(batch)` sibling
//! digests. Receivers recompute the root from the message digest and the
//! path, and verify the one root signature — so a batch of 16 messages
//! costs one sign instead of sixteen.
//!
//! Verifier-side, the root signature check itself is amortized further with
//! a [`DigestCache`]: all messages of one batch share the same signed root,
//! so after the first check the remaining proofs cost only hashing.
//!
//! # Examples
//!
//! ```
//! use spire_crypto::batch::BatchSigner;
//! use spire_crypto::keys::{KeyMaterial, KeyStore, NodeId, Signer};
//!
//! let material = KeyMaterial::new([0u8; 32]);
//! let store = KeyStore::for_nodes(&material, 4);
//! let signer = Signer::new(material.signing_key(NodeId(1)), false);
//!
//! let mut batch = BatchSigner::new();
//! let i_a = batch.push(spire_crypto::digest(b"msg-a"));
//! let i_b = batch.push(spire_crypto::digest(b"msg-b"));
//! let signed = batch.flush(&signer).unwrap();
//! let att = signed.attestation(i_b);
//! assert!(att.verify(&store, NodeId(1), &spire_crypto::digest(b"msg-b"), false));
//! assert!(!att.verify(&store, NodeId(1), &spire_crypto::digest(b"msg-a"), false));
//! # let _ = i_a;
//! ```

use crate::keys::{verify64, KeyStore, NodeId, Signer};
use crate::merkle::{self, Digest, MerkleTree};
use std::collections::{HashSet, VecDeque};

/// Domain-separation prefix for batch-root signatures, so a signed root can
/// never be confused with the signing bytes of any protocol message.
pub const ROOT_DOMAIN: &[u8; 16] = b"spire-batch-root";

/// The canonical bytes a batch-root signature covers.
pub fn root_signing_bytes(root: &Digest) -> [u8; 48] {
    let mut out = [0u8; 48];
    out[..16].copy_from_slice(ROOT_DOMAIN);
    out[16..].copy_from_slice(root);
    out
}

/// Accumulates outgoing message digests for one amortized signature.
///
/// Push the digest of each message queued during an event-handling step,
/// then [`flush`](BatchSigner::flush) once to sign the Merkle root and mint
/// per-message [`BatchAttestation`]s.
#[derive(Debug, Default)]
pub struct BatchSigner {
    leaves: Vec<Digest>,
}

impl BatchSigner {
    /// Creates an empty batch.
    pub fn new() -> BatchSigner {
        BatchSigner::default()
    }

    /// Adds a message digest to the pending batch, returning its leaf index.
    pub fn push(&mut self, msg_digest: Digest) -> usize {
        self.leaves.push(msg_digest);
        self.leaves.len() - 1
    }

    /// Number of pending digests.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True if no digests are pending.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Signs the Merkle root over all pending digests with one signature
    /// and resets the batch. Returns `None` if the batch is empty.
    pub fn flush(&mut self, signer: &Signer) -> Option<SignedBatch> {
        if self.leaves.is_empty() {
            return None;
        }
        let tree = MerkleTree::build(self.leaves.iter().map(|d| d.as_slice()));
        let root_sig = signer.sign64(&root_signing_bytes(&tree.root()));
        self.leaves.clear();
        Some(SignedBatch { tree, root_sig })
    }
}

/// A flushed batch: the Merkle tree over message digests plus the one root
/// signature. Mint per-message attestations with
/// [`attestation`](SignedBatch::attestation).
#[derive(Clone, Debug)]
pub struct SignedBatch {
    tree: MerkleTree,
    root_sig: [u8; 64],
}

impl SignedBatch {
    /// Number of messages covered by the signature.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// A signed batch always covers at least one message.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The signed root.
    pub fn root(&self) -> Digest {
        self.tree.root()
    }

    /// Builds the attestation for the message at `leaf_index`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_index` is out of range.
    pub fn attestation(&self, leaf_index: usize) -> BatchAttestation {
        let proof = self.tree.prove(leaf_index).expect("leaf index in range");
        BatchAttestation {
            leaf_index: leaf_index as u32,
            leaf_count: self.tree.len() as u32,
            path: proof.path_digests(),
            root_sig: self.root_sig,
        }
    }
}

/// What one batched message carries instead of its own signature: the
/// shared root signature plus an inclusion path tying the message digest to
/// the signed root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchAttestation {
    /// Position of the message digest among the batch leaves.
    pub leaf_index: u32,
    /// Total leaves in the batch (fixes the tree shape).
    pub leaf_count: u32,
    /// Sibling digests bottom-up; positions recomputed from index/count.
    pub path: Vec<Digest>,
    /// Signature over [`root_signing_bytes`] of the Merkle root.
    pub root_sig: [u8; 64],
}

impl BatchAttestation {
    /// Recomputes the root this attestation binds `msg_digest` to, or
    /// `None` if the path is structurally invalid (wrong length or index).
    pub fn compute_root(&self, msg_digest: &Digest) -> Option<Digest> {
        merkle::compute_root(
            self.leaf_index as usize,
            self.leaf_count as usize,
            &merkle::leaf_hash(msg_digest),
            &self.path,
        )
    }

    /// Verifies that `signer` signed a batch containing `msg_digest` at the
    /// claimed position.
    pub fn verify(
        &self,
        store: &KeyStore,
        signer: NodeId,
        msg_digest: &Digest,
        mock: bool,
    ) -> bool {
        match self.compute_root(msg_digest) {
            Some(root) => verify64(
                store,
                signer,
                &root_signing_bytes(&root),
                &self.root_sig,
                mock,
            ),
            None => false,
        }
    }
}

/// A bounded set of digests with FIFO eviction, used to cache "already
/// verified" decisions.
///
/// Safety under Byzantine senders: entries are inserted only *after* a
/// successful signature verification, and the key is a SHA-256 digest over
/// the full signed content (signature included), so a forged message cannot
/// alias a cached one without a hash collision. The bound caps memory; on
/// overflow the oldest entry is evicted and its message is simply
/// re-verified on next sight.
#[derive(Debug)]
pub struct DigestCache {
    cap: usize,
    set: HashSet<Digest>,
    order: VecDeque<Digest>,
}

impl DigestCache {
    /// Creates a cache retaining at most `cap` digests (`cap == 0` disables
    /// caching entirely).
    pub fn new(cap: usize) -> DigestCache {
        DigestCache {
            cap,
            set: HashSet::with_capacity(cap.min(4096)),
            order: VecDeque::with_capacity(cap.min(4096)),
        }
    }

    /// True if `digest` was previously inserted and not yet evicted.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.set.contains(digest)
    }

    /// Records a verified digest. Returns false if it was already present.
    pub fn insert(&mut self, digest: Digest) -> bool {
        if self.cap == 0 || !self.set.insert(digest) {
            return false;
        }
        self.order.push_back(digest);
        while self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }

    /// Number of cached digests.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyMaterial;

    fn setup() -> (KeyStore, Signer, Signer) {
        let material = KeyMaterial::new([9u8; 32]);
        let store = KeyStore::for_nodes(&material, 6);
        let s1 = Signer::new(material.signing_key(NodeId(1)), false);
        let s2 = Signer::new(material.signing_key(NodeId(2)), false);
        (store, s1, s2)
    }

    fn digests(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| crate::digest(format!("msg-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn batch_roundtrip_all_sizes() {
        let (store, s1, _) = setup();
        for n in 1..=17 {
            let ds = digests(n);
            let mut batch = BatchSigner::new();
            for d in &ds {
                batch.push(*d);
            }
            let signed = batch.flush(&s1).expect("non-empty");
            assert!(batch.is_empty(), "flush resets");
            assert_eq!(signed.len(), n);
            for (i, d) in ds.iter().enumerate() {
                let att = signed.attestation(i);
                assert!(att.verify(&store, NodeId(1), d, false), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn empty_flush_is_none() {
        let (_, s1, _) = setup();
        assert!(BatchSigner::new().flush(&s1).is_none());
    }

    #[test]
    fn mock_mode_roundtrip() {
        let material = KeyMaterial::new([9u8; 32]);
        let store = KeyStore::for_nodes(&material, 6);
        let signer = Signer::new(material.signing_key(NodeId(1)), true);
        let d = crate::digest(b"m");
        let mut batch = BatchSigner::new();
        batch.push(d);
        let att = batch.flush(&signer).unwrap().attestation(0);
        assert!(att.verify(&store, NodeId(1), &d, true));
        // Mock attestations do not pass real verification.
        assert!(!att.verify(&store, NodeId(1), &d, false));
    }

    /// Satellite coverage: flipped leaf, truncated path, wrong index, and a
    /// signature from the wrong replica must all reject.
    #[test]
    fn tampered_attestations_reject() {
        let (store, s1, s2) = setup();
        let ds = digests(8);
        let mut batch = BatchSigner::new();
        for d in &ds {
            batch.push(*d);
        }
        let signed = batch.flush(&s1).unwrap();
        let att = signed.attestation(3);
        assert!(att.verify(&store, NodeId(1), &ds[3], false));

        // Flipped leaf: digest of a message not in the batch (or a bitflip).
        let mut flipped = ds[3];
        flipped[0] ^= 1;
        assert!(!att.verify(&store, NodeId(1), &flipped, false));
        assert!(!att.verify(&store, NodeId(1), &ds[4], false));

        // Truncated path.
        let mut short = att.clone();
        short.path.pop();
        assert!(!short.verify(&store, NodeId(1), &ds[3], false));

        // Wrong index: sibling order flips, so the recomputed root differs.
        let mut wrong_idx = att.clone();
        wrong_idx.leaf_index = 2;
        assert!(!wrong_idx.verify(&store, NodeId(1), &ds[3], false));
        let mut oob = att.clone();
        oob.leaf_index = 8;
        assert!(!oob.verify(&store, NodeId(1), &ds[3], false));
        let mut wrong_count = att.clone();
        wrong_count.leaf_count = 16;
        assert!(!wrong_count.verify(&store, NodeId(1), &ds[3], false));

        // Signature attributed to (or forged by) the wrong replica.
        assert!(!att.verify(&store, NodeId(2), &ds[3], false));
        let mut batch2 = BatchSigner::new();
        for d in &ds {
            batch2.push(*d);
        }
        let att2 = batch2.flush(&s2).unwrap().attestation(3);
        assert!(!att2.verify(&store, NodeId(1), &ds[3], false));

        // Corrupted root signature.
        let mut bad_sig = att.clone();
        bad_sig.root_sig[10] ^= 1;
        assert!(!bad_sig.verify(&store, NodeId(1), &ds[3], false));
    }

    #[test]
    fn root_domain_separates_from_messages() {
        // A signed batch root must not verify as a plain 48-byte message
        // without the domain prefix, and vice versa.
        let (store, s1, _) = setup();
        let d = crate::digest(b"m");
        let mut batch = BatchSigner::new();
        batch.push(d);
        let signed = batch.flush(&s1).unwrap();
        let att = signed.attestation(0);
        assert!(!verify64(
            &store,
            NodeId(1),
            &signed.root(),
            &att.root_sig,
            false
        ));
    }

    #[test]
    fn digest_cache_bounds_and_evicts_fifo() {
        let mut cache = DigestCache::new(3);
        let ds = digests(5);
        assert!(cache.insert(ds[0]));
        assert!(!cache.insert(ds[0]), "duplicate insert is a no-op");
        assert!(cache.insert(ds[1]));
        assert!(cache.insert(ds[2]));
        assert_eq!(cache.len(), 3);
        assert!(cache.insert(ds[3])); // evicts ds[0]
        assert_eq!(cache.len(), 3);
        assert!(!cache.contains(&ds[0]));
        assert!(cache.contains(&ds[1]));
        assert!(cache.contains(&ds[3]));
    }

    #[test]
    fn zero_capacity_cache_disables_caching() {
        let mut cache = DigestCache::new(0);
        let d = crate::digest(b"x");
        assert!(!cache.insert(d));
        assert!(!cache.contains(&d));
        assert!(cache.is_empty());
    }
}
