//! Merkle trees over SHA-256, used for state-transfer integrity checks and
//! for amortizing signatures over message batches (as Prime does).

use crate::sha2::Sha256;

/// A 32-byte hash value.
pub type Digest = [u8; 32];

/// Hashes a leaf with domain separation.
pub fn leaf_hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

/// Hashes an interior node with domain separation.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// A Merkle tree built over a list of byte-string leaves.
///
/// Odd nodes at each level are promoted unchanged (Bitcoin-style duplication
/// is avoided because it permits ambiguous proofs).
///
/// # Examples
///
/// ```
/// use spire_crypto::merkle::MerkleTree;
/// let tree = MerkleTree::build([b"a".as_slice(), b"b".as_slice(), b"c".as_slice()]);
/// let proof = tree.prove(2).unwrap();
/// assert!(proof.verify(&tree.root(), b"c"));
/// ```
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, last level = [root].
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree over the given leaves.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty.
    pub fn build<'a, I>(leaves: I) -> MerkleTree
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let level0: Vec<Digest> = leaves.into_iter().map(leaf_hash).collect();
        assert!(!level0.is_empty(), "merkle tree needs at least one leaf");
        let mut levels = vec![level0];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(node_hash(&pair[0], &pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True if the tree has exactly one leaf.
    pub fn is_empty(&self) -> bool {
        false // a tree always has >= 1 leaf; method provided for API symmetry
    }

    /// Builds an inclusion proof for leaf `index`.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                path.push(ProofNode {
                    digest: level[sibling],
                    is_left: sibling < idx,
                });
            }
            idx /= 2;
        }
        Some(MerkleProof { index, path })
    }
}

/// One step of a Merkle inclusion proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ProofNode {
    digest: Digest,
    /// True if the sibling is the left child.
    is_left: bool,
}

/// An inclusion proof tying a leaf to a root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    index: usize,
    path: Vec<ProofNode>,
}

impl MerkleProof {
    /// Verifies that `leaf_data` is included under `root`.
    pub fn verify(&self, root: &Digest, leaf_data: &[u8]) -> bool {
        let mut acc = leaf_hash(leaf_data);
        for node in &self.path {
            acc = if node.is_left {
                node_hash(&node.digest, &acc)
            } else {
                node_hash(&acc, &node.digest)
            };
        }
        &acc == root
    }

    /// The index of the proven leaf.
    pub fn leaf_index(&self) -> usize {
        self.index
    }

    /// The sibling digests along the path, bottom-up (for wire encoding;
    /// positions are recomputed from `(index, leaf_count)` by
    /// [`compute_root`], so the flags need not be shipped).
    pub fn path_digests(&self) -> Vec<Digest> {
        self.path.iter().map(|node| node.digest).collect()
    }
}

/// Recomputes the root implied by an inclusion path, deriving the tree
/// structure from `(index, leaf_count)` alone.
///
/// This is the canonical verifier for proofs received over the wire: the
/// sender ships only the sibling digests, and the expected path length and
/// left/right positions are recomputed here from the claimed index and leaf
/// count. A truncated or extended path, or an index outside `0..leaf_count`,
/// yields `None` rather than a forgeable root.
pub fn compute_root(
    index: usize,
    leaf_count: usize,
    leaf_digest: &Digest,
    path: &[Digest],
) -> Option<Digest> {
    if leaf_count == 0 || index >= leaf_count {
        return None;
    }
    let mut acc = *leaf_digest;
    let mut idx = index;
    let mut width = leaf_count;
    let mut steps = path.iter();
    while width > 1 {
        let sibling = idx ^ 1;
        if sibling < width {
            let sib = steps.next()?;
            acc = if sibling < idx {
                node_hash(sib, &acc)
            } else {
                node_hash(&acc, sib)
            };
        }
        // Odd nodes are promoted unchanged (no duplication), matching
        // `MerkleTree::build`.
        idx /= 2;
        width = width.div_ceil(2);
    }
    if steps.next().is_some() {
        return None;
    }
    Some(acc)
}

/// Verifies that `leaf_data` is the `index`-th of `leaf_count` leaves under
/// `root`, given the sibling digests bottom-up.
pub fn verify_inclusion(
    root: &Digest,
    index: usize,
    leaf_count: usize,
    leaf_data: &[u8],
    path: &[Digest],
) -> bool {
    compute_root(index, leaf_count, &leaf_hash(leaf_data), path).as_ref() == Some(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::build([b"only".as_slice()]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17 {
            let data = leaves(n);
            let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).expect("index in range");
                assert!(proof.verify(&tree.root(), leaf), "n={n} i={i}");
                assert_eq!(proof.leaf_index(), i);
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf() {
        let data = leaves(8);
        let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(&tree.root(), b"leaf-4"));
    }

    #[test]
    fn proof_fails_for_wrong_root() {
        let data = leaves(5);
        let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
        let proof = tree.prove(0).unwrap();
        let mut bad_root = tree.root();
        bad_root[0] ^= 1;
        assert!(!proof.verify(&bad_root, b"leaf-0"));
    }

    #[test]
    fn out_of_range_index() {
        let tree = MerkleTree::build([b"x".as_slice()]);
        assert!(tree.prove(1).is_none());
    }

    #[test]
    fn different_leaf_sets_different_roots() {
        let a = MerkleTree::build([b"a".as_slice(), b"b".as_slice()]);
        let b = MerkleTree::build([b"a".as_slice(), b"c".as_slice()]);
        assert_ne!(a.root(), b.root());
        // Order matters.
        let c = MerkleTree::build([b"b".as_slice(), b"a".as_slice()]);
        assert_ne!(a.root(), c.root());
    }

    #[test]
    fn compute_root_matches_tree_for_all_sizes() {
        for n in 1..=17 {
            let data = leaves(n);
            let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
            for (i, leaf) in data.iter().enumerate() {
                let path = tree.prove(i).unwrap().path_digests();
                assert!(
                    verify_inclusion(&tree.root(), i, n, leaf, &path),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn compute_root_rejects_structural_tampering() {
        let data = leaves(11);
        let tree = MerkleTree::build(data.iter().map(|v| v.as_slice()));
        let root = tree.root();
        let path = tree.prove(6).unwrap().path_digests();
        // Baseline accepts.
        assert!(verify_inclusion(&root, 6, 11, &data[6], &path));
        // Wrong index: structurally valid indices bind to different roots,
        // out-of-range indices are rejected outright.
        assert!(!verify_inclusion(&root, 5, 11, &data[6], &path));
        assert!(!verify_inclusion(&root, 11, 11, &data[6], &path));
        // A lying leaf count that changes the tree shape is rejected. (A
        // count lie that preserves the shape — e.g. 12 here — recomputes
        // the same root and is harmless: the signature binds the root.)
        assert!(!verify_inclusion(&root, 6, 7, &data[6], &path));
        assert!(!verify_inclusion(&root, 6, 32, &data[6], &path));
        // Truncated and padded paths.
        assert!(!verify_inclusion(
            &root,
            6,
            11,
            &data[6],
            &path[..path.len() - 1]
        ));
        let mut padded = path.clone();
        padded.push([0; 32]);
        assert!(!verify_inclusion(&root, 6, 11, &data[6], &padded));
        // Empty tree.
        assert_eq!(compute_root(0, 0, &leaf_hash(b"x"), &[]), None);
    }

    #[test]
    fn domain_separation_prevents_leaf_node_confusion() {
        // The hash of two leaves as a node differs from hashing their
        // concatenation as a leaf.
        let l = leaf_hash(b"a");
        let r = leaf_hash(b"b");
        let node = node_hash(&l, &r);
        let mut concat = Vec::new();
        concat.extend_from_slice(&l);
        concat.extend_from_slice(&r);
        assert_ne!(node, leaf_hash(&concat));
    }
}
