//! RSA signatures (PKCS#1 v1.5 with SHA-256), from scratch.
//!
//! The original Spire authenticates Prime messages with RSA via OpenSSL;
//! this module provides the same primitive for fidelity experiments and
//! micro-benchmarks (the simulation deployments default to Ed25519 or mock
//! signatures, which are much cheaper). Key generation uses Miller–Rabin
//! with a caller-provided deterministic RNG so test keys are reproducible.
//!
//! Not constant time; research use only (see the crate-level note).

use crate::bignum::{Montgomery, Ubig};
use crate::sha2::Sha256;
use rand::Rng;

/// `DigestInfo` DER prefix for SHA-256 (RFC 8017 §9.2 note 1).
const SHA256_DER_PREFIX: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// Small primes for trial division before Miller–Rabin.
fn small_primes() -> &'static [u64] {
    &[
        3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
        97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
        191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
    ]
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
pub fn is_probable_prime(n: &Ubig, rounds: u32, rng: &mut impl Rng) -> bool {
    if n.bits() < 2 {
        return false;
    }
    if !n.is_odd() {
        return n == &Ubig::from_u64(2);
    }
    for p in small_primes() {
        let p_big = Ubig::from_u64(*p);
        if n == &p_big {
            return true;
        }
        if n.rem(&p_big).is_zero() {
            return false;
        }
    }
    // n - 1 = d * 2^r with d odd.
    let n_minus_1 = n.sub(&Ubig::one());
    let mut d = n_minus_1.clone();
    let mut r = 0u32;
    while !d.is_odd() {
        d = d.shr1();
        r += 1;
    }
    let mont = Montgomery::new(n);
    let byte_len = n.bits().div_ceil(8);
    'witness: for _ in 0..rounds {
        // Random base in [2, n-2]: sample bytes and reduce (bias is
        // irrelevant for primality testing).
        let mut bytes = vec![0u8; byte_len];
        rng.fill(&mut bytes[..]);
        let a = Ubig::from_be_bytes(&bytes).rem(n);
        if a.bits() < 2 {
            continue;
        }
        let mut x = mont.pow(&a, &d);
        if x == Ubig::one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..r.saturating_sub(1) {
            x = mont.pow(&x, &Ubig::from_u64(2));
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
pub fn generate_prime(bits: usize, rng: &mut impl Rng) -> Ubig {
    assert!(bits >= 16, "prime too small");
    loop {
        let byte_len = bits.div_ceil(8);
        let mut bytes = vec![0u8; byte_len];
        rng.fill(&mut bytes[..]);
        // Force exact bit length and oddness.
        let top_bit = (bits - 1) % 8;
        bytes[0] &= (1u16 << (top_bit + 1)).wrapping_sub(1) as u8;
        bytes[0] |= 1 << top_bit;
        let last = byte_len - 1;
        bytes[last] |= 1;
        let candidate = Ubig::from_be_bytes(&bytes);
        if is_probable_prime(&candidate, 12, rng) {
            return candidate;
        }
    }
}

/// Extended Euclid: returns `e^{-1} mod m`, if `gcd(e, m) = 1`.
fn mod_inverse(e: &Ubig, m: &Ubig) -> Option<Ubig> {
    // Signed coefficients tracked as (magnitude, negative?) pairs.
    let mut old_r = m.clone();
    let mut r = e.rem(m);
    if r.is_zero() {
        return None;
    }
    let mut old_t: (Ubig, bool) = (Ubig::zero(), false);
    let mut t: (Ubig, bool) = (Ubig::one(), false);
    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        old_r = std::mem::replace(&mut r, rem);
        // new_t = old_t - q * t  (signed)
        let qt = q.mul(&t.0);
        let new_t = signed_sub(&old_t, &(qt, t.1));
        old_t = std::mem::replace(&mut t, new_t);
    }
    if old_r != Ubig::one() {
        return None; // not coprime
    }
    // Normalize old_t into [0, m).
    let magnitude = old_t.0.rem(m);
    Some(if old_t.1 && !magnitude.is_zero() {
        m.sub(&magnitude)
    } else {
        magnitude
    })
}

/// `a - b` over signed magnitudes.
fn signed_sub(a: &(Ubig, bool), b: &(Ubig, bool)) -> (Ubig, bool) {
    match (a.1, b.1) {
        // a - b with equal signs: magnitude subtraction.
        (false, false) | (true, true) => {
            if a.0.cmp_with(&b.0) != std::cmp::Ordering::Less {
                (a.0.sub(&b.0), a.1)
            } else {
                (b.0.sub(&a.0), !a.1)
            }
        }
        // a - (-b) = a + b ; (-a) - b = -(a + b)
        (false, true) => (a.0.add(&b.0), false),
        (true, false) => (a.0.add(&b.0), true),
    }
}

/// An RSA public key.
#[derive(Clone, Debug)]
pub struct RsaPublicKey {
    n: Ubig,
    e: Ubig,
    modulus_len: usize,
}

/// An RSA private key.
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: Ubig,
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RsaPrivateKey({} bits)", self.public.n.bits())
    }
}

impl RsaPublicKey {
    /// Verifies a PKCS#1 v1.5 SHA-256 signature.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        if signature.len() != self.modulus_len {
            return false;
        }
        let s = Ubig::from_be_bytes(signature);
        if s.cmp_with(&self.n) != std::cmp::Ordering::Less {
            return false;
        }
        let mont = Montgomery::new(&self.n);
        let em = mont.pow(&s, &self.e).to_be_bytes_padded(self.modulus_len);
        em == emsa_pkcs1_v15(message, self.modulus_len)
    }

    /// The modulus size in bytes (= signature size).
    pub fn modulus_len(&self) -> usize {
        self.modulus_len
    }
}

impl RsaPrivateKey {
    /// Generates a keypair with an n-bit modulus (e = 65537).
    ///
    /// # Panics
    ///
    /// Panics if `modulus_bits < 128` (too small even for tests).
    pub fn generate(modulus_bits: usize, rng: &mut impl Rng) -> RsaPrivateKey {
        assert!(modulus_bits >= 128, "modulus too small");
        let e = Ubig::from_u64(65537);
        loop {
            let p = generate_prime(modulus_bits / 2, rng);
            let q = generate_prime(modulus_bits - modulus_bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bits() != modulus_bits {
                continue;
            }
            let phi = p.sub(&Ubig::one()).mul(&q.sub(&Ubig::one()));
            let Some(d) = mod_inverse(&e, &phi) else {
                continue;
            };
            debug_assert_eq!(e.mul(&d).rem(&phi), Ubig::one());
            let modulus_len = modulus_bits.div_ceil(8);
            return RsaPrivateKey {
                public: RsaPublicKey { n, e, modulus_len },
                d,
            };
        }
    }

    /// The public half.
    pub fn public_key(&self) -> RsaPublicKey {
        self.public.clone()
    }

    /// Signs a message (PKCS#1 v1.5 with SHA-256).
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let em = emsa_pkcs1_v15(message, self.public.modulus_len);
        let m = Ubig::from_be_bytes(&em);
        let mont = Montgomery::new(&self.public.n);
        mont.pow(&m, &self.d)
            .to_be_bytes_padded(self.public.modulus_len)
    }
}

/// EMSA-PKCS1-v1_5 encoding of SHA-256(message).
fn emsa_pkcs1_v15(message: &[u8], em_len: usize) -> Vec<u8> {
    let digest = Sha256::digest(message);
    let t_len = SHA256_DER_PREFIX.len() + digest.len();
    assert!(em_len >= t_len + 11, "modulus too small for PKCS#1 v1.5");
    let mut em = Vec::with_capacity(em_len);
    em.push(0x00);
    em.push(0x01);
    em.resize(em_len - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(&SHA256_DER_PREFIX);
    em.extend_from_slice(&digest);
    em
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn miller_rabin_classifies_known_numbers() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 97, 101, 65537, 1_000_003] {
            assert!(
                is_probable_prime(&Ubig::from_u64(p), 16, &mut rng),
                "{p} is prime"
            );
        }
        for c in [1u64, 4, 100, 65536, 1_000_001, 561, 6601, 41041] {
            // (561, 6601, 41041 are Carmichael numbers)
            assert!(
                !is_probable_prime(&Ubig::from_u64(c), 16, &mut rng),
                "{c} is composite"
            );
        }
    }

    #[test]
    fn generated_primes_have_exact_bit_length() {
        let mut rng = StdRng::seed_from_u64(2);
        for bits in [64usize, 96, 128] {
            let p = generate_prime(bits, &mut rng);
            assert_eq!(p.bits(), bits);
            assert!(p.is_odd());
        }
    }

    #[test]
    fn mod_inverse_small_cases() {
        // 3 * 7 = 21 = 1 mod 20... check against known inverses (odd moduli).
        let inv = mod_inverse(&Ubig::from_u64(3), &Ubig::from_u64(25)).unwrap();
        assert_eq!(
            Ubig::from_u64(3).mul(&inv).rem(&Ubig::from_u64(25)),
            Ubig::one()
        );
        let inv = mod_inverse(&Ubig::from_u64(65537), &Ubig::from_u64(0x7fff_ffff)).unwrap();
        assert_eq!(
            Ubig::from_u64(65537)
                .mul(&inv)
                .rem(&Ubig::from_u64(0x7fff_ffff)),
            Ubig::one()
        );
    }

    #[test]
    fn rsa_sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        // 512-bit keys keep the test fast; the scheme is parameterized.
        let key = RsaPrivateKey::generate(512, &mut rng);
        let public = key.public_key();
        let msg = b"breaker 14 open";
        let sig = key.sign(msg);
        assert_eq!(sig.len(), public.modulus_len());
        assert!(public.verify(msg, &sig));
    }

    #[test]
    fn rsa_rejects_tampering() {
        let mut rng = StdRng::seed_from_u64(4);
        let key = RsaPrivateKey::generate(512, &mut rng);
        let public = key.public_key();
        let sig = key.sign(b"message");
        assert!(!public.verify(b"other message", &sig));
        let mut bad = sig.clone();
        bad[10] ^= 1;
        assert!(!public.verify(b"message", &bad));
        assert!(!public.verify(b"message", &sig[1..]));
    }

    #[test]
    fn rsa_cross_key_rejection() {
        let mut rng = StdRng::seed_from_u64(5);
        let key1 = RsaPrivateKey::generate(512, &mut rng);
        let key2 = RsaPrivateKey::generate(512, &mut rng);
        let sig = key1.sign(b"m");
        assert!(!key2.public_key().verify(b"m", &sig));
    }

    #[test]
    fn keygen_is_deterministic_from_seed() {
        let k1 = RsaPrivateKey::generate(512, &mut StdRng::seed_from_u64(7));
        let k2 = RsaPrivateKey::generate(512, &mut StdRng::seed_from_u64(7));
        assert_eq!(k1.sign(b"x"), k2.sign(b"x"));
    }
}
