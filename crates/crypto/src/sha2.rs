//! SHA-256 and SHA-512, implemented from scratch (FIPS 180-4).
//!
//! The round constants and initial hash values are *computed* at first use
//! from the fractional parts of the square/cube roots of the first primes,
//! exactly as the standard defines them, rather than being transcribed as
//! magic tables. This removes an entire class of transcription errors; the
//! implementation is validated against the well-known digest test vectors
//! in this module's tests.

use std::sync::OnceLock;

/// Returns the first `n` prime numbers.
fn first_primes(n: usize) -> Vec<u64> {
    let mut primes = Vec::with_capacity(n);
    let mut candidate: u64 = 2;
    while primes.len() < n {
        if primes.iter().all(|p| !candidate.is_multiple_of(*p)) {
            primes.push(candidate);
        }
        candidate += 1;
    }
    primes
}

/// 128x128 -> 256-bit multiplication, returning `(hi, lo)`.
fn mul_128(a: u128, b: u128) -> (u128, u128) {
    const M64: u128 = (1u128 << 64) - 1;
    let (a0, a1) = (a & M64, a >> 64);
    let (b0, b1) = (b & M64, b >> 64);
    let ll = a0 * b0;
    let lh = a0 * b1;
    let hl = a1 * b0;
    let hh = a1 * b1;
    let mid = (ll >> 64) + (lh & M64) + (hl & M64);
    let lo = (ll & M64) | (mid << 64);
    let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

/// Minimal 256-bit unsigned integer used only for constant generation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct U256 {
    hi: u128,
    lo: u128,
}

impl U256 {
    /// `self * m`, truncated to 256 bits (callers guarantee no overflow).
    fn mul_u128(self, m: u128) -> Self {
        let (lo_hi, lo_lo) = mul_128(self.lo, m);
        let (_, hi_lo) = mul_128(self.hi, m);
        U256 {
            hi: lo_hi.wrapping_add(hi_lo),
            lo: lo_lo,
        }
    }
}

/// `floor(sqrt(p) * 2^64)`: binary search for the largest `x` with
/// `x^2 <= p << 128`.
fn sqrt_frac_bits(p: u64) -> u128 {
    // p * 2^128 => hi = p, lo = 0
    let target = U256 {
        hi: p as u128,
        lo: 0,
    };
    let (mut lo, mut hi) = (0u128, 1u128 << 70);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        let sq = {
            let (h, l) = mul_128(mid, mid);
            U256 { hi: h, lo: l }
        };
        if sq <= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// `floor(cbrt(p) * 2^64)`: binary search for the largest `x` with
/// `x^3 <= p << 192`.
fn cbrt_frac_bits(p: u64) -> u128 {
    let target = U256 {
        hi: (p as u128) << 64, // p * 2^192
        lo: 0,
    };
    let (mut lo, mut hi) = (0u128, 1u128 << 70);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        let sq = {
            let (h, l) = mul_128(mid, mid);
            U256 { hi: h, lo: l }
        };
        let cube = sq.mul_u128(mid);
        if cube <= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn sha256_h() -> &'static [u32; 8] {
    static H: OnceLock<[u32; 8]> = OnceLock::new();
    H.get_or_init(|| {
        let primes = first_primes(8);
        let mut h = [0u32; 8];
        for (i, p) in primes.iter().enumerate() {
            let bits = sqrt_frac_bits(*p) as u64; // low 64 bits = fractional part
            h[i] = (bits >> 32) as u32;
        }
        h
    })
}

fn sha256_k() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let primes = first_primes(64);
        let mut k = [0u32; 64];
        for (i, p) in primes.iter().enumerate() {
            let bits = cbrt_frac_bits(*p) as u64;
            k[i] = (bits >> 32) as u32;
        }
        k
    })
}

fn sha512_h() -> &'static [u64; 8] {
    static H: OnceLock<[u64; 8]> = OnceLock::new();
    H.get_or_init(|| {
        let primes = first_primes(8);
        let mut h = [0u64; 8];
        for (i, p) in primes.iter().enumerate() {
            h[i] = sqrt_frac_bits(*p) as u64;
        }
        h
    })
}

fn sha512_k() -> &'static [u64; 80] {
    static K: OnceLock<[u64; 80]> = OnceLock::new();
    K.get_or_init(|| {
        let primes = first_primes(80);
        let mut k = [0u64; 80];
        for (i, p) in primes.iter().enumerate() {
            k[i] = cbrt_frac_bits(*p) as u64;
        }
        k
    })
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use spire_crypto::sha2::Sha256;
/// let digest = Sha256::digest(b"abc");
/// assert_eq!(digest[0], 0xba);
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: *sha256_h(),
            buffer: [0u8; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the 32-byte digest.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(rest.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while rest.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&rest[..64]);
            self.compress(&block);
            rest = &rest[64..];
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Finishes the computation, returning the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.length.wrapping_mul(8);
        self.update_padding();
        let mut last = [0u8; 64];
        last[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
        // update_padding guarantees buffered <= 56 here.
        last[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&last);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self) {
        // Append the 0x80 terminator; if fewer than 8 bytes remain in the
        // block for the length field, flush a full zero-padded block first.
        let mut pad = [0u8; 64];
        pad[0] = 0x80;
        let used = self.buffered;
        if used >= 56 {
            self.buffer[used..].copy_from_slice(&pad[..64 - used]);
            let block = self.buffer;
            self.compress(&block);
            self.buffer = [0u8; 64];
            self.buffered = 0;
        } else {
            self.buffer[used..56].copy_from_slice(&pad[..56 - used]);
            self.buffered = 56;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let k = sha256_k();
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Incremental SHA-512 hasher.
///
/// # Examples
///
/// ```
/// use spire_crypto::sha2::Sha512;
/// let digest = Sha512::digest(b"abc");
/// assert_eq!(digest.len(), 64);
/// ```
#[derive(Clone, Debug)]
pub struct Sha512 {
    state: [u64; 8],
    buffer: [u8; 128],
    buffered: usize,
    length: u128,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha512 {
            state: *sha512_h(),
            buffer: [0u8; 128],
            buffered: 0,
            length: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the 64-byte digest.
    pub fn digest(data: &[u8]) -> [u8; 64] {
        let mut h = Sha512::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u128);
        let mut rest = data;
        if self.buffered > 0 {
            let need = 128 - self.buffered;
            let take = need.min(rest.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == 128 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while rest.len() >= 128 {
            let mut block = [0u8; 128];
            block.copy_from_slice(&rest[..128]);
            self.compress(&block);
            rest = &rest[128..];
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Finishes the computation, returning the 64-byte digest.
    pub fn finalize(mut self) -> [u8; 64] {
        let bit_len = self.length.wrapping_mul(8);
        let used = self.buffered;
        let mut pad = [0u8; 128];
        pad[0] = 0x80;
        if used >= 112 {
            self.buffer[used..].copy_from_slice(&pad[..128 - used]);
            let block = self.buffer;
            self.compress(&block);
            self.buffer = [0u8; 128];
            self.buffered = 0;
        } else {
            self.buffer[used..112].copy_from_slice(&pad[..112 - used]);
            self.buffered = 112;
        }
        let mut last = [0u8; 128];
        last[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
        last[112..128].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&last);
        let mut out = [0u8; 64];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 128]) {
        let k = sha512_k();
        let mut w = [0u64; 80];
        for i in 0..16 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&block[i * 8..i * 8 + 8]);
            w[i] = u64::from_be_bytes(word);
        }
        for i in 16..80 {
            let s0 = w[i - 15].rotate_right(1) ^ w[i - 15].rotate_right(8) ^ (w[i - 15] >> 7);
            let s1 = w[i - 2].rotate_right(19) ^ w[i - 2].rotate_right(61) ^ (w[i - 2] >> 6);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..80 {
            let s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Parses a hexadecimal string into bytes.
///
/// # Panics
///
/// Panics if the string has odd length or contains non-hex characters; it is
/// intended for test vectors and fixed constants.
pub fn from_hex(s: &str) -> Vec<u8> {
    assert!(
        s.len().is_multiple_of(2),
        "hex string must have even length"
    );
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).expect("invalid hex"))
        .collect()
}

/// Formats bytes as a lowercase hexadecimal string.
pub fn to_hex(bytes: &[u8]) -> String {
    hex(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_fips() {
        // Spot checks against the universally known FIPS 180-4 constants.
        assert_eq!(sha256_h()[0], 0x6a09e667);
        assert_eq!(sha256_k()[0], 0x428a2f98);
        assert_eq!(sha512_h()[0], 0x6a09e667f3bcc908);
    }

    #[test]
    fn sha256_empty() {
        assert_eq!(
            to_hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            to_hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_blocks() {
        assert_eq!(
            to_hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha512_abc() {
        assert_eq!(
            to_hex(&Sha512::digest(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
        );
    }

    #[test]
    fn sha512_empty() {
        assert_eq!(
            to_hex(&Sha512::digest(b"")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let one_shot = Sha256::digest(&data);
        for chunk in [1usize, 3, 17, 63, 64, 65, 100] {
            let mut h = Sha256::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), one_shot, "chunk size {chunk}");
        }
    }

    #[test]
    fn incremental_sha512_matches_one_shot() {
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 241) as u8).collect();
        let one_shot = Sha512::digest(&data);
        for chunk in [1usize, 7, 127, 128, 129, 500] {
            let mut h = Sha512::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), one_shot, "chunk size {chunk}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths straddling the padding boundaries must all hash without
        // panicking and produce distinct digests.
        let mut seen = std::collections::HashSet::new();
        for len in 0..=130usize {
            let data = vec![0xabu8; len];
            assert!(seen.insert(Sha256::digest(&data)), "collision at {len}");
        }
    }
}
