//! Arithmetic in the field GF(2^255 - 19), using five 51-bit limbs.
//!
//! This is the classic "radix 2^51" representation. Operations keep limbs
//! loosely reduced (below 2^52) and only fully reduce when serializing.
//! The implementation favours clarity over constant-time behaviour: this
//! reproduction uses signatures for Byzantine-fault-tolerance research in a
//! simulator, not for protecting live secrets against side channels.

const MASK51: u64 = (1 << 51) - 1;

/// An element of GF(2^255 - 19).
#[derive(Clone, Copy, Debug)]
pub struct Fe(pub(crate) [u64; 5]);

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0; 5]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Builds a field element from a small integer.
    pub fn from_u64(x: u64) -> Fe {
        Fe([x & MASK51, x >> 51, 0, 0, 0])
    }

    /// Deserializes 32 little-endian bytes (the top bit is ignored, per
    /// RFC 8032 conventions for point encodings).
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |i: usize| -> u64 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[i..i + 8]);
            u64::from_le_bytes(word)
        };
        let l0 = load(0) & MASK51;
        let l1 = (load(6) >> 3) & MASK51;
        let l2 = (load(12) >> 6) & MASK51;
        let l3 = (load(19) >> 1) & MASK51;
        let l4 = (load(24) >> 12) & ((1 << 51) - 1) & MASK51;
        // Clear the encoded sign bit by masking to 255 bits: limb 4 carries
        // bits 204..=254, so keep 51 bits but drop bit 255 which `load(24)>>12`
        // already excludes (bit 255 is byte 31 bit 7 = overall bit 255; load
        // at offset 24 covers bits 192..=255, >>12 gives bits 204..=243 plus
        // the top bits; masking to 51 bits keeps bits 204..=254).
        Fe([l0, l1, l2, l3, l4])
    }

    /// Serializes to 32 little-endian bytes, fully reduced mod p.
    pub fn to_bytes(self) -> [u8; 32] {
        let limbs = self.reduce_weak().0;
        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut limb_idx = 0usize;
        for byte in out.iter_mut() {
            if acc_bits < 8 && limb_idx < 5 {
                acc |= (limbs[limb_idx] as u128) << acc_bits;
                acc_bits += 51;
                limb_idx += 1;
            }
            *byte = (acc & 0xff) as u8;
            acc >>= 8;
            acc_bits = acc_bits.saturating_sub(8);
        }
        out
    }

    /// Weak carry propagation, producing limbs below 2^51 (value fully
    /// reduced modulo p by conditional subtraction).
    fn reduce_weak(self) -> Fe {
        let mut h = self.carry();
        h = h.carry();
        // Now limbs < 2^51 + tiny epsilon; subtract p up to twice.
        for _ in 0..2 {
            if h.is_geq_p() {
                h = h.sub_p();
            }
        }
        h
    }

    fn carry(self) -> Fe {
        let mut l = self.0;
        let mut c: u64;
        c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;
        c = l[1] >> 51;
        l[1] &= MASK51;
        l[2] += c;
        c = l[2] >> 51;
        l[2] &= MASK51;
        l[3] += c;
        c = l[3] >> 51;
        l[3] &= MASK51;
        l[4] += c;
        c = l[4] >> 51;
        l[4] &= MASK51;
        l[0] += c * 19;
        Fe(l)
    }

    fn is_geq_p(&self) -> bool {
        // p = 2^255 - 19 in 51-bit limbs.
        let p = [MASK51 - 18, MASK51, MASK51, MASK51, MASK51];
        for i in (0..5).rev() {
            if self.0[i] > p[i] {
                return true;
            }
            if self.0[i] < p[i] {
                return false;
            }
        }
        true // equal to p
    }

    fn sub_p(self) -> Fe {
        // self >= p is guaranteed by the caller; compute self - p via
        // borrow-free addition of 2^255 - p complement... simplest: add 19
        // and drop bit 255.
        let mut l = self.0;
        l[0] += 19;
        let mut c;
        c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;
        c = l[1] >> 51;
        l[1] &= MASK51;
        l[2] += c;
        c = l[2] >> 51;
        l[2] &= MASK51;
        l[3] += c;
        c = l[3] >> 51;
        l[3] &= MASK51;
        l[4] += c;
        l[4] &= MASK51; // drop bit 255 (the subtraction of 2^255)
        Fe(l)
    }

    /// Field addition.
    pub fn add(self, other: Fe) -> Fe {
        let mut l = [0u64; 5];
        for (o, (a, b)) in l.iter_mut().zip(self.0.into_iter().zip(other.0)) {
            *o = a + b;
        }
        Fe(l).carry()
    }

    /// Field subtraction.
    pub fn sub(self, other: Fe) -> Fe {
        // Add 2p (in loose limb form) before subtracting to keep limbs
        // non-negative: 2p = (2^52 - 38, 2^52 - 2, ...).
        const TWO_P: [u64; 5] = [
            2 * ((1 << 51) - 19),
            2 * ((1 << 51) - 1),
            2 * ((1 << 51) - 1),
            2 * ((1 << 51) - 1),
            2 * ((1 << 51) - 1),
        ];
        let mut l = [0u64; 5];
        for i in 0..5 {
            l[i] = self.0[i] + TWO_P[i] - other.0[i];
        }
        Fe(l).carry()
    }

    /// Field negation.
    pub fn neg(self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Field multiplication.
    pub fn mul(self, other: Fe) -> Fe {
        let a = self.0;
        let b = other.0;
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };
        let r0 =
            m(a[0], b[0]) + 19 * (m(a[1], b[4]) + m(a[2], b[3]) + m(a[3], b[2]) + m(a[4], b[1]));
        let r1 =
            m(a[0], b[1]) + m(a[1], b[0]) + 19 * (m(a[2], b[4]) + m(a[3], b[3]) + m(a[4], b[2]));
        let r2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + 19 * (m(a[3], b[4]) + m(a[4], b[3]));
        let r3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + 19 * m(a[4], b[4]);
        let r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);
        Fe::carry_wide([r0, r1, r2, r3, r4])
    }

    /// Field squaring.
    pub fn square(self) -> Fe {
        self.mul(self)
    }

    fn carry_wide(mut r: [u128; 5]) -> Fe {
        let mut c: u128;
        c = r[0] >> 51;
        r[0] &= MASK51 as u128;
        r[1] += c;
        c = r[1] >> 51;
        r[1] &= MASK51 as u128;
        r[2] += c;
        c = r[2] >> 51;
        r[2] &= MASK51 as u128;
        r[3] += c;
        c = r[3] >> 51;
        r[3] &= MASK51 as u128;
        r[4] += c;
        c = r[4] >> 51;
        r[4] &= MASK51 as u128;
        r[0] += c * 19;
        c = r[0] >> 51;
        r[0] &= MASK51 as u128;
        r[1] += c;
        Fe([
            r[0] as u64,
            r[1] as u64,
            r[2] as u64,
            r[3] as u64,
            r[4] as u64,
        ])
    }

    /// Raises `self` to the power given by a 256-bit little-endian exponent.
    pub fn pow(self, exponent_le: &[u8; 32]) -> Fe {
        let mut result = Fe::ONE;
        // Square-and-multiply from the most significant bit.
        for byte_idx in (0..32).rev() {
            for bit_idx in (0..8).rev() {
                result = result.square();
                if (exponent_le[byte_idx] >> bit_idx) & 1 == 1 {
                    result = result.mul(self);
                }
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat's little theorem (`self^(p-2)`).
    ///
    /// Returns `Fe::ZERO` for zero input.
    pub fn invert(self) -> Fe {
        self.pow(&P_MINUS_2)
    }

    /// True if the element reduces to zero.
    pub fn is_zero(self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// True if the fully reduced element is odd (used for the sign bit).
    pub fn is_odd(self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }
}

impl PartialEq for Fe {
    fn eq(&self, other: &Self) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

impl Eq for Fe {}

/// p - 2 = 2^255 - 21 as little-endian bytes.
pub const P_MINUS_2: [u8; 32] = {
    let mut b = [0xffu8; 32];
    b[0] = 0xeb; // 0xed - 2
    b[31] = 0x7f;
    b
};

/// (p + 3) / 8 = 2^252 - 2 as little-endian bytes (sqrt exponent).
pub const SQRT_EXP: [u8; 32] = {
    // 2^252 - 2 = 0x0fff...ffe
    let mut b = [0xffu8; 32];
    b[0] = 0xfe;
    b[31] = 0x0f;
    b
};

/// (p - 1) / 4 = 2^253 - 5 as little-endian bytes (for sqrt(-1)).
pub const SQRT_M1_EXP: [u8; 32] = {
    // 2^253 - 5 = 0x1fff...ffb
    let mut b = [0xffu8; 32];
    b[0] = 0xfb;
    b[31] = 0x1f;
    b
};

/// Returns sqrt(-1) mod p, computed as 2^((p-1)/4).
pub fn sqrt_m1() -> Fe {
    use std::sync::OnceLock;
    static CELL: OnceLock<Fe> = OnceLock::new();
    *CELL.get_or_init(|| Fe::from_u64(2).pow(&SQRT_M1_EXP))
}

/// Computes the square root of `a` if one exists.
pub fn sqrt(a: Fe) -> Option<Fe> {
    let candidate = a.pow(&SQRT_EXP);
    if candidate.square() == a {
        return Some(candidate);
    }
    let candidate = candidate.mul(sqrt_m1());
    if candidate.square() == a {
        return Some(candidate);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(n: u64) -> Fe {
        Fe::from_u64(n)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = fe(123456789);
        let b = fe(987654321);
        assert_eq!(a.add(b).sub(b), a);
        assert_eq!(a.sub(b).add(b), a);
    }

    #[test]
    fn mul_matches_small_ints() {
        assert_eq!(fe(6).mul(fe(7)), fe(42));
        assert_eq!(fe(1 << 30).mul(fe(1 << 30)), {
            // 2^60 fits across two limbs.
            Fe::from_u64(1 << 60)
        });
    }

    #[test]
    fn inverse() {
        let a = fe(123456789123456789);
        assert_eq!(a.mul(a.invert()), Fe::ONE);
        assert_eq!(Fe::ZERO.invert(), Fe::ZERO);
    }

    #[test]
    fn pow_small() {
        let mut exp = [0u8; 32];
        exp[0] = 5;
        assert_eq!(fe(3).pow(&exp), fe(243));
    }

    #[test]
    fn neg_and_zero() {
        let a = fe(42);
        assert_eq!(a.add(a.neg()), Fe::ZERO);
        assert!(Fe::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn serialization_roundtrip() {
        let a = fe(0xdeadbeefcafebabe);
        let b = Fe::from_bytes(&a.to_bytes());
        assert_eq!(a, b);
    }

    #[test]
    fn p_reduces_to_zero() {
        // p itself must serialize as zero.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let p = Fe::from_bytes(&p_bytes);
        assert!(p.is_zero());
    }

    #[test]
    fn sqrt_of_square() {
        for n in [2u64, 3, 5, 123456789] {
            let a = fe(n);
            let sq = a.square();
            let root = sqrt(sq).expect("square must have a root");
            assert!(root == a || root == a.neg());
        }
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = sqrt_m1();
        assert_eq!(i.square(), Fe::ONE.neg());
    }

    #[test]
    fn nonresidue_has_no_root() {
        // 2 is a known quadratic non-residue mod 2^255-19? Actually 2 is a
        // residue iff p = ±1 mod 8; p = 2^255-19 ≡ 5 mod 8, so 2 is a
        // non-residue.
        assert!(sqrt(fe(2)).is_none());
    }
}
